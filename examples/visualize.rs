//! Renders a placement as SVG (cells colored by cluster) and prints the
//! post-placement timing report — the artifacts a designer looks at first.
//!
//! Writes `/tmp/clustered_placement.svg`.
//!
//! ```text
//! cargo run --release -p cp-bench --example visualize
//! ```

use cp_core::cluster::{ppa_aware_clustering, ClusteringOptions};
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::Floorplan;
use cp_place::{legalize, placement_svg, GlobalPlacer, PlacementProblem, PlacerOptions};
use cp_timing::timing_report_text;
use cp_timing::wire::WireModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Jpeg)
        .scale(1.0 / 64.0)
        .seed(3)
        .generate_with_constraints();
    let clustering = ppa_aware_clustering(
        &netlist,
        &constraints,
        &ClusteringOptions {
            avg_cluster_size: 60,
            ..Default::default()
        },
    )?;
    let fp = Floorplan::for_netlist(&netlist, 0.6, 1.0);
    let problem = PlacementProblem::from_netlist(&netlist, &fp);
    let mut result = GlobalPlacer::new(PlacerOptions::default()).place(&problem)?;
    legalize(&problem, &fp, &mut result.positions)?;

    let svg = placement_svg(
        &problem,
        &fp,
        &result.positions,
        Some(&clustering.assignment),
    );
    std::fs::write("/tmp/clustered_placement.svg", &svg)?;
    println!(
        "wrote /tmp/clustered_placement.svg ({} cells, {} clusters, {} bytes)",
        netlist.cell_count(),
        clustering.cluster_count,
        svg.len()
    );

    let mut positions = result.positions.clone();
    positions.extend_from_slice(&fp.port_positions);
    let report = timing_report_text(&netlist, &constraints, &WireModel::Placed(&positions), 2)?;
    println!("\n{report}");
    Ok(())
}
