//! Clustered placement on an obstructed floorplan.
//!
//! The paper's larger testcases (BlackParrot, MegaBoom, MemPool Group)
//! carry macro preplacements in their `.def` (footnote 1 of the paper).
//! This example runs the default and clustered flows on a floorplan with
//! preplaced macro blockages and verifies no cell lands on a macro.
//!
//! ```text
//! cargo run --release -p cp-bench --example macro_floorplan
//! ```

use cp_core::flow::{run_default_flow, run_flow, FlowOptions, Tool};
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};

fn main() -> Result<(), cp_core::FlowError> {
    let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::BlackParrot)
        .scale(1.0 / 256.0)
        .seed(29)
        .generate_with_constraints();
    println!(
        "design `{}`: {} cells, {} nets",
        netlist.name(),
        netlist.cell_count(),
        netlist.net_count()
    );

    let options = FlowOptions {
        tool: Tool::OpenRoadLike,
        clustering: ClusteringOptions {
            avg_cluster_size: 80,
            ..Default::default()
        },
        // Four preplaced macros occupying 25% of the core.
        macro_blockages: (4, 0.25),
        ..Default::default()
    };

    println!("\nflat flow on the obstructed floorplan…");
    let flat = run_default_flow(&netlist, &constraints, &options)?;
    println!("clustered flow on the obstructed floorplan…");
    let ours = run_flow(&netlist, &constraints, &options)?;

    println!("\n                      default        ours");
    println!("HPWL (µm)          {:>10.0} {:>10.0}", flat.hpwl, ours.hpwl);
    println!(
        "rWL (µm)           {:>10.0} {:>10.0}",
        flat.ppa.rwl, ours.ppa.rwl
    );
    println!(
        "TNS (ns)           {:>10.2} {:>10.2}",
        flat.ppa.tns / 1000.0,
        ours.ppa.tns / 1000.0
    );
    println!(
        "placement CPU (s)  {:>10.2} {:>10.2}  ({} clusters)",
        flat.placement_runtime,
        ours.placement_runtime + ours.clustering_runtime,
        ours.cluster_count
    );
    println!("\nmacro blockages derate routing capacity to 40% under each block.");
    Ok(())
}
