//! Hierarchy-based clustering walkthrough (Algorithm 2 / Figure 2).
//!
//! Shows the dendrogram levels of a design's logical hierarchy, the
//! weighted-average Rent exponent of each cut (Eq. 1), and the selected
//! clustering.
//!
//! ```text
//! cargo run --release -p cp-bench --example hierarchy_clustering
//! ```

use cp_core::cluster::dendrogram::cluster_by_hierarchy;
use cp_core::cluster::rent::rent_stats;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};

fn main() {
    let netlist = GeneratorConfig::from_profile(DesignProfile::Ariane)
        .scale(1.0 / 64.0)
        .seed(3)
        .generate();
    println!(
        "design `{}`: {} cells, hierarchy of {} modules, depth {}",
        netlist.name(),
        netlist.cell_count(),
        netlist.hierarchy().len(),
        netlist.hierarchy().max_depth()
    );

    let result = cluster_by_hierarchy(&netlist);
    println!("\nlevel   R_avg (Eq. 1)");
    for &(level, rent) in &result.candidates {
        let marker = if level == result.level {
            "  <== selected"
        } else {
            ""
        };
        println!("{level:>5}   {rent:.4}{marker}");
    }
    println!(
        "\nchosen clustering: {} clusters at level {}, R_avg = {:.4}",
        result.cluster_count, result.level, result.rent
    );

    // Cluster size distribution and Rent detail for the chosen cut.
    let hg = netlist.to_hypergraph();
    let stats = rent_stats(&hg, &result.assignment, result.cluster_count);
    let mut sizes: Vec<usize> = stats.iter().map(|s| s.size).collect();
    sizes.sort_unstable();
    println!(
        "cluster sizes: min {}, median {}, max {}",
        sizes.first().copied().unwrap_or(0),
        sizes.get(sizes.len() / 2).copied().unwrap_or(0),
        sizes.last().copied().unwrap_or(0)
    );
    let most_external = stats
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.exponent
                .partial_cmp(&b.1.exponent)
                .expect("finite exponents")
        })
        .expect("clusters exist");
    println!(
        "most external cluster: #{} with {} cells, {} external edges, R_c = {:.3}",
        most_external.0,
        most_external.1.size,
        most_external.1.external_edges,
        most_external.1.exponent
    );
}
