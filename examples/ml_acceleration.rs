//! ML-accelerated V-P&R walkthrough (Figure 4 / Section 4.4).
//!
//! Generates a labeled dataset by perturbing clustering hyperparameters,
//! trains the Total-Cost GNN, reports MAE/R², and compares the exact
//! 20-run V-P&R sweep against one batch of GNN inference.
//!
//! ```text
//! cargo run --release -p cp-bench --example ml_acceleration
//! ```

use cp_core::cluster::{ppa_aware_clustering, ClusteringOptions};
use cp_core::flow::cluster_members;
use cp_core::vpr::ml::{generate_dataset, DatasetConfig, MlShapeSelector};
use cp_core::vpr::{best_shape, extract_subnetlist, VprOptions};
use cp_gnn::train::TrainOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use std::time::Instant;

fn main() -> Result<(), cp_core::FlowError> {
    let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 32.0)
        .seed(9)
        .generate_with_constraints();

    println!("generating labeled (cluster, shape) → Total Cost dataset…");
    let dataset = generate_dataset(
        &netlist,
        &constraints,
        &DatasetConfig {
            configs: 3,
            min_cells: 40,
            max_clusters_per_config: 5,
            base: ClusteringOptions {
                avg_cluster_size: 100,
                ..Default::default()
            },
            vpr: VprOptions::default(),
            seed: 23,
        },
    )?;
    let split = dataset.len() * 4 / 5;
    let (train_set, test_set) = dataset.split_at(split);
    println!(
        "dataset: {} train / {} test samples",
        train_set.len(),
        test_set.len()
    );

    let (selector, stats) = MlShapeSelector::train(
        train_set,
        &TrainOptions {
            epochs: 50,
            ..Default::default()
        },
        13,
    );
    let (test_mae, test_r2) = selector.evaluate(test_set);
    println!(
        "trained: train MAE {:.3} / R2 {:.3}; test MAE {:.3} / R2 {:.3}",
        stats.train_mae, stats.train_r2, test_mae, test_r2
    );

    // Acceleration measurement on a fresh cluster.
    let clustering = ppa_aware_clustering(
        &netlist,
        &constraints,
        &ClusteringOptions {
            avg_cluster_size: 150,
            seed: 99,
            ..Default::default()
        },
    )?;
    let cluster = cluster_members(&clustering.assignment, clustering.cluster_count)
        .into_iter()
        .max_by_key(|m| m.len())
        .expect("clusters exist");
    let sub = extract_subnetlist(&netlist, &cluster)?;
    let t0 = Instant::now();
    let (exact, _) = best_shape(&sub, &VprOptions::default())?;
    let t_exact = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ml = selector.select_shape(&sub);
    let t_ml = t1.elapsed().as_secs_f64();
    println!(
        "\n{}-cell cluster: exact sweep {:.3}s → (AR {:.2}, util {:.2}); ML {:.3}s → (AR {:.2}, util {:.2})",
        sub.cell_count(),
        t_exact,
        exact.aspect_ratio,
        exact.utilization,
        t_ml,
        ml.aspect_ratio,
        ml.utilization
    );
    println!(
        "speedup: {:.1}x (paper reports ~30x)",
        t_exact / t_ml.max(1e-9)
    );
    Ok(())
}
