//! Virtualized P&R walkthrough (Figure 3).
//!
//! Takes the largest cluster of a PPA-aware clustering, induces its
//! sub-netlist, and sweeps the paper's 20 (aspect ratio, utilization)
//! candidates through place + global route, printing the HPWL cost
//! (Eq. 4), congestion cost (Eq. 5) and Total Cost of each.
//!
//! ```text
//! cargo run --release -p cp-bench --example vpr_shapes
//! ```

use cp_core::cluster::{ppa_aware_clustering, ClusteringOptions};
use cp_core::flow::cluster_members;
use cp_core::vpr::{best_shape, extract_subnetlist, VprOptions};
use cp_netlist::generator::{DesignProfile, GeneratorConfig};

fn main() -> Result<(), cp_core::FlowError> {
    let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 32.0)
        .seed(5)
        .generate_with_constraints();
    let clustering = ppa_aware_clustering(
        &netlist,
        &constraints,
        &ClusteringOptions {
            avg_cluster_size: 120,
            ..Default::default()
        },
    )?;
    let members = cluster_members(&clustering.assignment, clustering.cluster_count);
    let cluster = members
        .into_iter()
        .max_by_key(|m| m.len())
        .expect("clusters exist");
    let sub = extract_subnetlist(&netlist, &cluster)?;
    println!(
        "largest cluster: {} cells, {} boundary ports, {} nets",
        sub.cell_count(),
        sub.port_count(),
        sub.net_count()
    );

    let (best, costs) = best_shape(&sub, &VprOptions::default())?;
    println!("\n  AR    util   Cost_HPWL  Cost_Cong   Total");
    for c in &costs {
        let marker = if c.shape == best { "  <== best" } else { "" };
        println!(
            "{:>5.2} {:>6.2}   {:>9.4} {:>9.4} {:>9.4}{marker}",
            c.shape.aspect_ratio, c.shape.utilization, c.hpwl_cost, c.congestion_cost, c.total
        );
    }
    let uniform = costs
        .iter()
        .find(|c| c.shape == cp_netlist::ClusterShape::UNIFORM)
        .expect("uniform candidate");
    let best_cost = costs
        .iter()
        .find(|c| c.shape == best)
        .expect("best candidate");
    println!(
        "\nV-P&R improves Total Cost by {:.1}% over the Uniform shape",
        (1.0 - best_cost.total / uniform.total) * 100.0
    );
    Ok(())
}
