//! The Innovus-like seeded placement recipe (Algorithm 1, lines 16–20).
//!
//! Demonstrates the three-step seeded placement: cluster placement, cells
//! dropped at cluster centers, and incremental placement with region
//! constraints around V-P&R-shaped clusters; then compares post-route PPA
//! against the flat flow.
//!
//! ```text
//! cargo run --release -p cp-bench --example innovus_regions
//! ```

use cp_core::flow::{run_default_flow, run_flow, FlowOptions, ShapeMode, Tool};
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};

fn main() -> Result<(), cp_core::FlowError> {
    let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Ariane)
        .scale(1.0 / 64.0)
        .seed(17)
        .generate_with_constraints();
    println!(
        "design `{}`: {} cells, {} nets",
        netlist.name(),
        netlist.cell_count(),
        netlist.net_count()
    );

    let options = FlowOptions {
        tool: Tool::InnovusLike,
        shape_mode: ShapeMode::Vpr,
        clustering: ClusteringOptions {
            avg_cluster_size: 100,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    };
    println!("\nflat (default) flow…");
    let flat = run_default_flow(&netlist, &constraints, &options)?;
    println!("clustered flow with region constraints…");
    let ours = run_flow(&netlist, &constraints, &options)?;

    println!("\n                      default        ours");
    println!("HPWL (µm)          {:>10.0} {:>10.0}", flat.hpwl, ours.hpwl);
    println!(
        "rWL (µm)           {:>10.0} {:>10.0}",
        flat.ppa.rwl, ours.ppa.rwl
    );
    println!(
        "WNS (ps)           {:>10.0} {:>10.0}",
        flat.ppa.wns, ours.ppa.wns
    );
    println!(
        "TNS (ns)           {:>10.2} {:>10.2}",
        flat.ppa.tns / 1000.0,
        ours.ppa.tns / 1000.0
    );
    println!(
        "power (W)          {:>10.4} {:>10.4}",
        flat.ppa.power, ours.ppa.power
    );
    println!(
        "clock skew (ps)    {:>10.1} {:>10.1}",
        flat.ppa.skew, ours.ppa.skew
    );
    println!(
        "\nclusters: {} (shaped with exact V-P&R)",
        ours.cluster_count
    );
    Ok(())
}
