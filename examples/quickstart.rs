//! Quickstart: generate a design, run the default flat flow and the
//! PPA-aware clustered flow, and compare turnaround time and PPA.
//!
//! ```text
//! cargo run --release -p cp-bench --example quickstart
//! ```

use cp_core::flow::{run_default_flow, run_flow, FlowOptions, ShapeMode, Tool};
use cp_netlist::generator::{DesignProfile, GeneratorConfig};

fn main() -> Result<(), cp_core::FlowError> {
    // A scaled-down `jpeg` benchmark (Table 1 profile at 1/64 of the
    // paper's instance count — crank the scale up on a bigger machine).
    let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Jpeg)
        .scale(1.0 / 64.0)
        .seed(7)
        .generate_with_constraints();
    let stats = netlist.stats();
    println!(
        "design `{}`: {} cells, {} nets, {} flops, hierarchy depth {}",
        netlist.name(),
        stats.cells,
        stats.nets,
        stats.flops,
        stats.hier_depth
    );

    let options = FlowOptions::fast()
        .tool(Tool::OpenRoadLike)
        .shape_mode(ShapeMode::Vpr);

    println!("\nrunning the default (flat) flow…");
    let flat = run_default_flow(&netlist, &constraints, &options)?;

    println!("running the clustered flow (Algorithm 1)…");
    let ours = run_flow(&netlist, &constraints, &options)?;

    println!("\n                         default      ours");
    println!(
        "post-place HPWL (µm)   {:>9.0} {:>9.0}  ({:+.1}%)",
        flat.hpwl,
        ours.hpwl,
        (ours.hpwl / flat.hpwl - 1.0) * 100.0
    );
    println!(
        "placement CPU (s)      {:>9.2} {:>9.2}  (clustering {:.2}s, {} clusters)",
        flat.placement_runtime,
        ours.placement_runtime + ours.clustering_runtime,
        ours.clustering_runtime,
        ours.cluster_count
    );
    println!(
        "routed WL (µm)         {:>9.0} {:>9.0}",
        flat.ppa.rwl, ours.ppa.rwl
    );
    println!(
        "WNS (ps)               {:>9.0} {:>9.0}",
        flat.ppa.wns, ours.ppa.wns
    );
    println!(
        "TNS (ns)               {:>9.2} {:>9.2}",
        flat.ppa.tns / 1000.0,
        ours.ppa.tns / 1000.0
    );
    println!(
        "power (W)              {:>9.4} {:>9.4}",
        flat.ppa.power, ours.ppa.power
    );
    Ok(())
}
