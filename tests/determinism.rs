//! Whole-pipeline determinism: identical seeds must reproduce identical
//! netlists, clusterings, placements and PPA reports across runs.

use cp_core::baselines::leiden_assignment;
use cp_core::cluster::{ppa_aware_clustering, ClusteringOptions};
use cp_core::flow::{run_flow, FlowOptions};
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::verilog;

fn opts() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 50,
            path_count: 1000,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    }
}

#[test]
fn generator_is_bit_identical() {
    let make = || {
        GeneratorConfig::from_profile(DesignProfile::Ariane)
            .scale(1.0 / 256.0)
            .seed(5)
            .generate()
    };
    let (a, b) = (make(), make());
    assert_eq!(verilog::write(&a), verilog::write(&b));
}

#[test]
fn clustering_is_reproducible() {
    let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(6)
        .generate_with_constraints();
    let o = ClusteringOptions {
        avg_cluster_size: 40,
        ..Default::default()
    };
    assert_eq!(
        ppa_aware_clustering(&n, &c, &o)
            .expect("clustering runs")
            .assignment,
        ppa_aware_clustering(&n, &c, &o)
            .expect("clustering runs")
            .assignment
    );
}

#[test]
fn community_baselines_are_reproducible() {
    let n = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(6)
        .generate();
    assert_eq!(leiden_assignment(&n, 9).0, leiden_assignment(&n, 9).0);
}

#[test]
fn full_flow_ppa_is_reproducible() {
    let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(8)
        .generate_with_constraints();
    let a = run_flow(&n, &c, &opts()).expect("flow runs");
    let b = run_flow(&n, &c, &opts()).expect("flow runs");
    assert_eq!(a.hpwl, b.hpwl);
    assert_eq!(a.cluster_count, b.cluster_count);
    assert_eq!(a.ppa, b.ppa);
}

#[test]
fn different_seeds_change_the_design() {
    let a = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(1)
        .generate();
    let b = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(2)
        .generate();
    assert_ne!(verilog::write(&a), verilog::write(&b));
}
