//! Cross-crate integration tests: the full Algorithm 1 pipeline against
//! the flat baseline, on a scaled `jpeg` profile.

use cp_core::baselines::{run_blob_flow, run_leiden_flow, run_mfc_flow};
use cp_core::flow::{run_default_flow, run_flow, FlowOptions, ShapeMode, Tool};
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::netlist::Netlist;
use cp_netlist::Constraints;

fn setup() -> (Netlist, Constraints) {
    GeneratorConfig::from_profile(DesignProfile::Jpeg)
        .scale(1.0 / 128.0)
        .seed(71)
        .generate_with_constraints()
}

fn options() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 60,
            path_count: 2000,
            ..Default::default()
        },
        vpr_min_instances: 50,
        ..Default::default()
    }
}

#[test]
fn clustered_flow_matches_flat_quality() {
    let (n, c) = setup();
    let opts = options();
    let flat = run_default_flow(&n, &c, &opts).expect("flat flow runs");
    let ours = run_flow(&n, &c, &opts).expect("clustered flow runs");
    // Table 2's claim shape: similar HPWL.
    let ratio = ours.hpwl / flat.hpwl;
    assert!(
        (0.75..=1.30).contains(&ratio),
        "HPWL ratio {ratio} (flat {}, ours {})",
        flat.hpwl,
        ours.hpwl
    );
    // Both produce complete PPA reports.
    for r in [&flat, &ours] {
        assert!(r.ppa.rwl > 0.0);
        assert!(r.ppa.power > 0.0);
        assert!(r.ppa.tns <= 0.0);
        assert!(r.ppa.wns.is_finite());
    }
}

#[test]
fn seeded_placement_is_faster_than_flat() {
    let (n, c) = setup();
    let opts = options();
    let flat = run_default_flow(&n, &c, &opts).expect("flat flow runs");
    let ours = run_flow(&n, &c, &opts).expect("clustered flow runs");
    // The paper's headline: clustering + seeded placement beats flat
    // placement runtime. Allow slack for timer noise at this small scale.
    let ours_cpu = ours.clustering_runtime + ours.placement_runtime;
    assert!(
        ours_cpu < flat.placement_runtime * 1.6,
        "seeded {ours_cpu:.2}s vs flat {:.2}s",
        flat.placement_runtime
    );
}

#[test]
fn innovus_mode_runs_with_all_shape_modes() {
    let (n, c) = setup();
    for mode in [ShapeMode::Uniform, ShapeMode::Random(5), ShapeMode::Vpr] {
        let opts = options().tool(Tool::InnovusLike).shape_mode(mode);
        let r = run_flow(&n, &c, &opts).expect("clustered flow runs");
        assert!(r.cluster_count > 1);
        assert!(r.ppa.rwl > 0.0);
    }
}

#[test]
fn baseline_flows_are_comparable() {
    let (n, c) = setup();
    let opts = options();
    let flat = run_default_flow(&n, &c, &opts).expect("flat flow runs");
    for (name, r) in [
        (
            "blob",
            run_blob_flow(&n, &c, &opts).expect("blob flow runs"),
        ),
        (
            "leiden",
            run_leiden_flow(&n, &c, &opts).expect("leiden flow runs"),
        ),
        ("mfc", run_mfc_flow(&n, &c, &opts).expect("mfc flow runs")),
    ] {
        let ratio = r.hpwl / flat.hpwl;
        assert!(
            (0.6..=1.8).contains(&ratio),
            "{name} HPWL ratio {ratio} out of band"
        );
    }
}

#[test]
fn ppa_aware_clustering_is_no_worse_than_mfc_on_tns() {
    // Table 5's direction: PPA-aware clustering should not lose badly to
    // the pure-connectivity MFC on timing. (Exact orderings vary with the
    // synthetic design; the band is deliberately loose.)
    let (n, c) = setup();
    let opts = options();
    let ours = run_flow(&n, &c, &opts).expect("clustered flow runs");
    let mfc = run_mfc_flow(&n, &c, &opts).expect("mfc flow runs");
    let ours_tns = ours.ppa.tns.abs();
    let mfc_tns = mfc.ppa.tns.abs();
    assert!(
        ours_tns <= mfc_tns * 2.0 + 1000.0,
        "ours TNS {ours_tns} vs MFC {mfc_tns}"
    );
}

#[test]
fn flow_report_runtimes_are_recorded() {
    let (n, c) = setup();
    let r = run_flow(&n, &c, &options()).expect("clustered flow runs");
    assert!(r.clustering_runtime > 0.0);
    assert!(r.placement_runtime > 0.0);
}
