//! Resilience contract of the flow, without the `fault-injection`
//! feature: cancellation surfaces as a typed error (never a panic or a
//! partially-mutated report), checkpoints written at stage boundaries
//! resume to bitwise-identical results at any thread count, and
//! deadline/budget interrupts carry their diagnosis.

use std::path::PathBuf;

use cp_core::flow::{run_flow, FlowOptions, FlowReport, ShapeMode};
use cp_core::{
    run_flow_resilient, stages, Checkpoint, ClusteringOptions, FlowError, RecoveryEvent,
    ResilienceOptions, RunControl,
};
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::{Constraints, Netlist};
use std::time::Duration;

fn opts() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 50,
            path_count: 1000,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    }
    .shape_mode(ShapeMode::Vpr)
}

fn bench() -> (Netlist, Constraints) {
    GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(7)
        .generate_with_constraints()
}

fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cp-resilience-tests");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir.join(format!("{}-{tag}.json", std::process::id()))
}

fn resilient(
    n: &Netlist,
    c: &Constraints,
    res: &ResilienceOptions,
) -> Result<FlowReport, FlowError> {
    run_flow_resilient(n, c, &opts(), res)
}

#[test]
fn resilient_run_is_passive_and_thread_count_invariant() {
    let (n, c) = bench();
    let reference = run_flow(&n, &c, &opts()).expect("plain flow runs");
    for threads in [1usize, 4] {
        let report = cp_parallel::with_threads(threads, || {
            resilient(&n, &c, &ResilienceOptions::default()).expect("resilient flow runs")
        });
        assert!(
            report.deterministic_eq(&reference),
            "unlimited resilient run must match the plain flow at {threads} threads"
        );
    }
}

#[test]
fn resume_is_bitwise_identical_at_stage_boundaries() {
    let (n, c) = bench();
    let reference = run_flow(&n, &c, &opts()).expect("plain flow runs");

    // Total counted checks of a clean run: boundary checks + placer
    // outer iterations. Cancelling on the k-th check for k across this
    // range interrupts at every kind of boundary the flow has.
    let control = RunControl::unlimited();
    let clean = ResilienceOptions {
        control: control.clone(),
        ..Default::default()
    };
    resilient(&n, &c, &clean).expect("clean resilient run");
    let total = control.checks();
    assert!(total > 6, "flow should count more than the 6 stage checks");

    let mut stages_seen = Vec::new();
    for k in [2, 3, 4, total - 2, total - 1, total] {
        let path = ckpt_path(&format!("boundary-{k}"));
        let _ = std::fs::remove_file(&path);
        let interrupted = ResilienceOptions {
            control: RunControl::unlimited().cancel_after_checks(k),
            checkpoint: Some(path.clone()),
            resume_from: None,
            ledger: None,
        };
        let err = resilient(&n, &c, &interrupted).expect_err("run must be cancelled");
        let flow = err
            .interrupted()
            .expect("cancellation is a typed interrupt");
        assert_eq!(flow.checkpoint.as_deref(), Some(path.as_path()));
        let ckpt = Checkpoint::load(&path).expect("interrupted run leaves a loadable checkpoint");
        if !stages_seen.contains(&ckpt.stage) {
            stages_seen.push(ckpt.stage);
        }

        // Resume across thread counts: both must reproduce the
        // reference bit for bit and record the resume.
        for threads in [1usize, 4] {
            let resume = ResilienceOptions {
                control: RunControl::unlimited(),
                checkpoint: None,
                resume_from: Some(path.clone()),
                ledger: None,
            };
            let resumed = cp_parallel::with_threads(threads, || {
                resilient(&n, &c, &resume).expect("resume completes")
            });
            assert!(
                resumed.deterministic_eq(&reference),
                "resume from `{}` (cancel at check {k}, {threads} threads) must be \
                 bitwise-identical to the clean run",
                ckpt.stage
            );
            assert!(
                resumed
                    .diagnostics
                    .events
                    .iter()
                    .any(|e| matches!(e, RecoveryEvent::Resumed { stage } if *stage == ckpt.stage)),
                "resumed run must record where it picked up"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    assert!(
        stages_seen.contains(&stages::CLUSTERING)
            && stages_seen.contains(&stages::SHAPING)
            && stages_seen.contains(&stages::FLAT_PLACEMENT),
        "boundary sweep should checkpoint early, middle and late stages, saw {stages_seen:?}"
    );
    assert!(
        stages_seen.len() >= 3,
        "expected at least 3 distinct checkpoint stages, saw {stages_seen:?}"
    );
}

#[test]
fn cancellation_is_always_typed_and_never_partial() {
    let (n, c) = bench();
    for k in [1u64, 2, 3, 5, 8] {
        let res = ResilienceOptions {
            control: RunControl::unlimited().cancel_after_checks(k),
            ..Default::default()
        };
        match resilient(&n, &c, &res) {
            Ok(_) => panic!("cancel at check {k} must not complete"),
            Err(FlowError::Cancelled(flow)) => {
                assert!(
                    stages::ALL.contains(&flow.stage),
                    "interrupt stage `{}` must be a pipeline stage",
                    flow.stage
                );
                assert!(flow.checkpoint.is_none(), "no checkpoint was configured");
                // The partial diagnostics carry only events from stages
                // that ran to completion — rendering them must not panic.
                let _ = format!(
                    "{} / {:?} / {:?}",
                    flow.interrupt, flow.best, flow.diagnostics
                );
            }
            Err(other) => panic!("cancel at check {k} surfaced as {other}"),
        }
    }
}

#[test]
fn expired_deadline_is_a_typed_interrupt() {
    let (n, c) = bench();
    let res = ResilienceOptions {
        control: RunControl::unlimited().with_deadline(Duration::ZERO),
        ..Default::default()
    };
    match resilient(&n, &c, &res) {
        Err(FlowError::DeadlineExceeded(flow)) => {
            assert_eq!(
                flow.stage,
                stages::CLUSTERING,
                "nothing ran before the check"
            );
        }
        other => panic!("expected a deadline interrupt, got {other:?}"),
    }
}

#[test]
fn tripped_memory_budget_reports_heap_and_budget() {
    let (n, c) = bench();
    let res = ResilienceOptions {
        // Deterministic fake probe: 2 bytes live against a 1-byte budget
        // trips on the first counted check, no allocator feature needed.
        control: RunControl::unlimited()
            .with_memory_budget(1)
            .with_heap_probe(|| 2),
        ..Default::default()
    };
    match resilient(&n, &c, &res) {
        Err(FlowError::BudgetExceeded(flow)) => {
            assert_eq!(flow.interrupt.heap_bytes, 2);
            assert_eq!(flow.interrupt.budget_bytes, 1);
        }
        other => panic!("expected a budget interrupt, got {other:?}"),
    }
}
