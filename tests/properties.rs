//! Property-based tests (proptest) over the core data structures and
//! algorithms: invariants that must hold for *any* input, not just the
//! crafted unit-test cases.

use cp_core::cluster::rent::weighted_average_rent;
use cp_graph::community::{compact_labels, louvain, modularity, CommunityOptions};
use cp_graph::{connectivity, metrics, traversal, Graph, Hypergraph};
use cp_netlist::floorplan::Rect;
use cp_place::hpwl::raw_hpwl;
use cp_place::problem::{Object, PlacementProblem};
use cp_place::spreading::{density_overflow, spread};
use cp_route::{route_nets, RouterOptions};
use proptest::prelude::*;

/// A random undirected graph as an edge list over `n` vertices.
fn arb_graph(max_n: usize, max_e: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32, 0.1f64..4.0), 0..max_e);
        edges.prop_map(move |e| (n, e))
    })
}

/// A random hypergraph.
fn arb_hypergraph(max_n: usize) -> impl Strategy<Value = Hypergraph> {
    (3..max_n).prop_flat_map(move |n| {
        prop::collection::vec(
            (prop::collection::vec(0..n as u32, 1..6), 0.1f64..4.0),
            1..24,
        )
        .prop_map(move |edges| Hypergraph::new(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_distances_satisfy_triangle_inequality((n, edges) in arb_graph(24, 48)) {
        let g = Graph::from_edges(n, &edges);
        let d0 = traversal::bfs_distances(&g, 0);
        for (u, v, _) in g.edges() {
            let (du, dv) = (d0[u as usize], d0[v as usize]);
            if du != traversal::UNREACHABLE && dv != traversal::UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "adjacent nodes differ by >1 hop");
            }
        }
    }

    #[test]
    fn connected_components_partition((n, edges) in arb_graph(24, 48)) {
        let g = Graph::from_edges(n, &edges);
        let (labels, count) = traversal::connected_components(&g);
        prop_assert_eq!(labels.len(), n);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        // Adjacent vertices always share a component.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
    }

    #[test]
    fn modularity_is_bounded((n, edges) in arb_graph(20, 40)) {
        let g = Graph::from_edges(n, &edges);
        let (labels, q) = louvain(&g, &CommunityOptions::default());
        prop_assert_eq!(labels.len(), n);
        prop_assert!((-1.0..=1.0).contains(&q), "modularity {} out of range", q);
        // Louvain's result is at least as good as all-singletons.
        let singles: Vec<u32> = (0..n as u32).collect();
        prop_assert!(q >= modularity(&g, &singles) - 1e-9);
    }

    #[test]
    fn compact_labels_is_idempotent(labels in prop::collection::vec(0u32..50, 1..64)) {
        let mut a = labels.clone();
        let k1 = compact_labels(&mut a);
        let mut b = a.clone();
        let k2 = compact_labels(&mut b);
        prop_assert_eq!(k1, k2);
        prop_assert_eq!(a, b);
        prop_assert!(k1 <= labels.len());
    }

    #[test]
    fn min_cut_never_exceeds_min_weighted_degree((n, edges) in arb_graph(12, 30)) {
        let g = Graph::from_edges(n, &edges);
        if traversal::is_connected(&g) {
            let cut = connectivity::min_cut(&g);
            let min_deg = (0..n as u32)
                .map(|v| g.weighted_degree(v) + g.edge_weight(v, v).unwrap_or(0.0))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(cut <= min_deg + 1e-9, "cut {} > min degree {}", cut, min_deg);
        }
    }

    #[test]
    fn greedy_coloring_is_proper((n, edges) in arb_graph(24, 60)) {
        let g = Graph::from_edges(n, &edges);
        let (colors, k) = metrics::greedy_coloring(&g);
        prop_assert!(k <= n);
        for (u, v, _) in g.edges() {
            if u != v {
                prop_assert_ne!(colors[u as usize], colors[v as usize]);
            }
        }
    }

    #[test]
    fn clique_expansion_preserves_reachability(hg in arb_hypergraph(16)) {
        let g = hg.clique_expansion();
        prop_assert_eq!(g.node_count(), hg.vertex_count());
        // Vertices sharing a hyperedge are adjacent in the expansion.
        for e in 0..hg.edge_count() as u32 {
            let verts = hg.edge(e);
            for w in verts.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn rent_exponent_is_finite(hg in arb_hypergraph(16)) {
        let n = hg.vertex_count();
        let labels: Vec<u32> = (0..n as u32).map(|v| v % 3).collect();
        let r = weighted_average_rent(&hg, &labels, 3);
        prop_assert!(r.is_finite());
    }

    #[test]
    fn spreading_stays_in_core_and_lowers_overflow(
        positions in prop::collection::vec((0.0f64..20.0, 0.0f64..20.0), 8..64)
    ) {
        let n = positions.len();
        let problem = PlacementProblem {
            movable: vec![Object { width: 1.0, height: 1.0 }; n],
            fixed: vec![],
            hypergraph: Hypergraph::new(n, vec![]),
            net_weights: vec![],
            core: Rect::new(0.0, 0.0, 100.0, 100.0),
            region: vec![None; n],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.5,
        };
        let out = spread(&problem, &positions);
        for &(x, y) in &out {
            prop_assert!(problem.core.contains(x, y));
        }
        let before = density_overflow(&problem, &positions);
        let after = density_overflow(&problem, &out);
        prop_assert!(after <= before + 1e-9, "overflow rose: {} -> {}", before, after);
    }

    #[test]
    fn hpwl_is_translation_invariant(
        positions in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 4..32),
        dx in -10.0f64..10.0,
        dy in -10.0f64..10.0,
    ) {
        let n = positions.len();
        let mut edges = Vec::new();
        for i in 0..(n as u32).saturating_sub(1) {
            edges.push((vec![i, i + 1], 1.0));
        }
        let problem = PlacementProblem {
            movable: vec![Object { width: 1.0, height: 1.0 }; n],
            fixed: vec![],
            hypergraph: Hypergraph::new(n, edges),
            net_weights: vec![1.0; n.saturating_sub(1)],
            core: Rect::new(-100.0, -100.0, 300.0, 300.0),
            region: vec![None; n],
            seed_positions: None,
            blockages: Vec::new(),
            density_target: 0.5,
        };
        let base = raw_hpwl(&problem, &positions);
        let moved: Vec<(f64, f64)> = positions.iter().map(|&(x, y)| (x + dx, y + dy)).collect();
        let shifted = raw_hpwl(&problem, &moved);
        prop_assert!((base - shifted).abs() < 1e-6 * (1.0 + base));
    }

    #[test]
    fn router_wirelength_lower_bounded_by_grid_hpwl(
        pins in prop::collection::vec((0.0f64..99.0, 0.0f64..99.0), 2..8)
    ) {
        let nets = vec![pins.clone()];
        let r = route_nets(
            &nets,
            Rect::new(0.0, 0.0, 100.0, 100.0),
            &RouterOptions {
                gcell_size: 10.0,
                ..Default::default()
            },
        )
        .expect("finite pins route");
        // Grid-quantized HPWL of the pins is a lower bound on routed WL.
        let gc = |v: f64| (v / 10.0) as i64;
        let (mut lx, mut ly, mut hx, mut hy) = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
        for &(x, y) in &pins {
            lx = lx.min(gc(x));
            ly = ly.min(gc(y));
            hx = hx.max(gc(x));
            hy = hy.max(gc(y));
        }
        let grid_hpwl = ((hx - lx) + (hy - ly)) as f64 * 10.0;
        prop_assert!(r.wirelength >= grid_hpwl - 1e-9,
            "routed {} below grid HPWL {}", r.wirelength, grid_hpwl);
    }
}

// ---------------------------------------------------------------------------
// Netlist / timing / flow properties over randomized generated designs.
// ---------------------------------------------------------------------------

use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::{verilog, Floorplan, Library};
use cp_place::detailed::{refine, DetailedOptions};
use cp_place::{legalize, GlobalPlacer, PlacerOptions};
use cp_timing::activity::propagate_activity;
use cp_timing::sta::Sta;
use cp_timing::wire::WireModel;

fn profile_from_index(i: u8) -> DesignProfile {
    DesignProfile::ALL[i as usize % DesignProfile::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_netlists_roundtrip_through_the_interchange_format(
        pi in 0u8..6, seed in 0u64..1000
    ) {
        let n = GeneratorConfig::from_profile(profile_from_index(pi))
            .scale(1.0 / 512.0)
            .seed(seed)
            .generate();
        let text = verilog::write(&n);
        let back = verilog::parse(&text, Library::nangate45ish()).expect("roundtrip parses");
        prop_assert_eq!(verilog::write(&back), text);
    }

    #[test]
    fn slack_improves_with_a_longer_clock_period(seed in 0u64..1000) {
        let (n, mut c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(1.0 / 256.0)
            .seed(seed)
            .generate_with_constraints();
        let tight = Sta::new(&n, &c).expect("acyclic netlist").run(&WireModel::Estimate);
        c.clock_period *= 2.0;
        let relaxed = Sta::new(&n, &c).expect("acyclic netlist").run(&WireModel::Estimate);
        prop_assert!(relaxed.wns >= tight.wns - 1e-9);
        prop_assert!(relaxed.tns >= tight.tns - 1e-9);
    }

    #[test]
    fn activity_is_always_bounded(pi in 0u8..6, seed in 0u64..1000) {
        let (n, c) = GeneratorConfig::from_profile(profile_from_index(pi))
            .scale(1.0 / 512.0)
            .seed(seed)
            .generate_with_constraints();
        let act = propagate_activity(&n, &c);
        for (&p, &d) in act.probability.iter().zip(&act.density) {
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=4.0).contains(&d));
        }
    }

    #[test]
    fn legalize_then_refine_preserves_legality(seed in 0u64..500) {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(1.0 / 256.0)
            .seed(seed)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.55, 1.0);
        let p = PlacementProblem::from_netlist(&n, &fp);
        let mut r = GlobalPlacer::new(PlacerOptions {
            max_iterations: 6,
            cg_iterations: 20,
            ..Default::default()
        })
        .place(&p)
        .expect("global placement runs");
        legalize(&p, &fp, &mut r.positions).expect("legalization runs");
        refine(&p, &fp, &mut r.positions, &DetailedOptions::default());
        // Legal rows, in core, no overlaps.
        let mut by_row: std::collections::HashMap<i64, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for (i, &(x, y)) in r.positions.iter().enumerate() {
            let off = (y - fp.core.lly) / fp.row_height;
            prop_assert!((off - off.round()).abs() < 1e-6);
            prop_assert!(x >= fp.core.llx - 1e-6);
            prop_assert!(x + p.movable[i].width <= fp.core.urx + 1e-6);
            by_row
                .entry(off.round() as i64)
                .or_default()
                .push((x, x + p.movable[i].width));
        }
        for (_, mut spans) in by_row {
            spans.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0 + 1e-6, "overlap {:?}", w);
            }
        }
    }

    #[test]
    fn subnetlist_extraction_is_total(seed in 0u64..500, take in 10usize..60) {
        let n = GeneratorConfig::from_profile(DesignProfile::Jpeg)
            .scale(1.0 / 512.0)
            .seed(seed)
            .generate();
        let take = take.min(n.cell_count());
        let cells: Vec<cp_netlist::CellId> =
            (0..take as u32).map(cp_netlist::CellId).collect();
        let sub = cp_core::vpr::extract_subnetlist(&n, &cells).expect("valid sub-netlist");
        prop_assert_eq!(sub.cell_count(), take);
        // Every sub-net's pins stay within the sub-netlist.
        for net in sub.nets() {
            prop_assert!(net.pin_count() >= 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Degenerate inputs: every flow entry point must surface a typed error —
// never a panic — and injected numerical faults must be recovered with a
// diagnostics trail (robustness properties).
// ---------------------------------------------------------------------------

use cp_core::flow::{run_default_flow, run_flow, FlowOptions};
use cp_core::{FlowError, RecoveryEvent};
use cp_netlist::netlist::NetlistBuilder;
use cp_netlist::{Constraints, HierTree, ValidationError};

#[test]
fn empty_netlist_is_a_typed_error() {
    let n = NetlistBuilder::new("empty", Library::nangate45ish())
        .finish()
        .expect("an empty builder still builds");
    let c = Constraints::default();
    for r in [
        run_default_flow(&n, &c, &FlowOptions::fast()),
        run_flow(&n, &c, &FlowOptions::fast()),
    ] {
        let err = r.expect_err("no cells to place");
        assert!(matches!(
            err,
            FlowError::Validation(ValidationError::EmptyNetlist)
        ));
    }
}

#[test]
fn single_cell_netlist_is_a_typed_error() {
    let lib = Library::nangate45ish();
    let inv = lib.find("INV_X1").expect("library cell");
    let mut b = NetlistBuilder::new("lonely", lib);
    b.add_cell("u0", inv, HierTree::ROOT);
    let n = b.finish().expect("one floating cell is structurally fine");
    let err = run_flow(&n, &Constraints::default(), &FlowOptions::fast())
        .expect_err("a netless cell gives the placer nothing to optimize");
    assert!(matches!(
        err,
        FlowError::Validation(ValidationError::NoNets)
    ));
}

#[test]
fn all_fixed_problem_places_without_panicking() {
    // Every cell pre-placed (zero movables) is a legal if pointless input:
    // the placer must return an empty, converged result rather than divide
    // by the movable count.
    let problem = PlacementProblem {
        movable: vec![],
        fixed: vec![(1.0, 1.0), (9.0, 9.0)],
        hypergraph: Hypergraph::new(0, vec![]),
        net_weights: vec![],
        core: Rect::new(0.0, 0.0, 10.0, 10.0),
        region: vec![],
        seed_positions: None,
        blockages: Vec::new(),
        density_target: 0.5,
    };
    let r = GlobalPlacer::new(PlacerOptions::default())
        .place(&problem)
        .expect("an all-fixed problem is trivially solved");
    assert!(r.positions.is_empty());
    assert_eq!(r.hpwl, 0.0);
    assert!(!r.diverged);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn out_of_range_utilization_is_a_typed_error(
        seed in 0u64..100,
        excess in 0.0001f64..10.0,
    ) {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(1.0 / 512.0)
            .seed(seed)
            .generate_with_constraints();
        for util in [1.0 + excess, -excess, 0.0] {
            let opts = FlowOptions {
                utilization: util,
                ..FlowOptions::fast()
            };
            let err = run_default_flow(&n, &c, &opts).expect_err("utilization outside (0, 1]");
            prop_assert!(matches!(
                err,
                FlowError::Validation(ValidationError::UtilizationOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn zero_area_floorplan_is_a_typed_error(
        seed in 0u64..100,
        bad in 0.0001f64..4.0,
    ) {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(1.0 / 512.0)
            .seed(seed)
            .generate_with_constraints();
        // A zero, negative or non-finite aspect ratio all collapse the core
        // to a degenerate (zero-area) floorplan.
        for aspect in [0.0, -bad, f64::NAN] {
            let opts = FlowOptions {
                aspect_ratio: aspect,
                ..FlowOptions::fast()
            };
            let err = run_default_flow(&n, &c, &opts).expect_err("core must have positive area");
            prop_assert!(matches!(
                err,
                FlowError::Validation(ValidationError::AspectRatioOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn injected_nan_is_reverted_and_reported(seed in 0u64..50, fault in 1usize..6) {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(1.0 / 256.0)
            .seed(seed)
            .generate_with_constraints();
        let mut opts = FlowOptions::fast();
        opts.placer.fault_nan_at_iteration = Some(fault);
        let report = run_default_flow(&n, &c, &opts).expect("divergence must be recovered");
        prop_assert!(report.hpwl.is_finite() && report.hpwl > 0.0);
        prop_assert!(!report.diagnostics.is_clean());
        prop_assert!(report
            .diagnostics
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::PlacerReverted { .. })));
    }
}
