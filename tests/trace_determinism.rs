//! Tracing must never change results: the flow's outputs are bitwise
//! identical with tracing off, spans-only and full telemetry, at one
//! thread and at four. The trace level is process-global state, so every
//! test here serializes on one mutex before touching it and restores
//! `Off` when done.

use cp_core::flow::{run_flow, FlowOptions, FlowReport, ShapeMode};
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::{Constraints, Netlist};
use cp_place::hpwl::raw_hpwl;
use cp_place::problem::PlacementProblem;
use cp_place::{GlobalPlacer, PlacerOptions};
use cp_trace::Level;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the process-global trace level.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at the given trace level, restoring `Off` afterwards (also on
/// panic, so a failing assertion doesn't poison the next test's level).
fn at_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            cp_trace::set_level(Level::Off);
        }
    }
    let _reset = Reset;
    cp_trace::set_level(level);
    f()
}

fn small_design() -> (Netlist, Constraints) {
    GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(7)
        .generate_with_constraints()
}

fn opts() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 50,
            path_count: 1000,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    }
}

fn assert_same_outputs(a: &FlowReport, b: &FlowReport) {
    assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
    assert_eq!(a.ppa, b.ppa);
    assert_eq!(a.cluster_count, b.cluster_count);
    assert_eq!(a.diagnostics, b.diagnostics);
    assert_eq!(a.shaping, b.shaping);
}

#[test]
fn tracing_leaves_flow_outputs_bitwise_identical() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts().shape_mode(ShapeMode::Vpr);
    let off = at_level(Level::Off, || run_flow(&n, &c, &o).expect("flow runs"));
    assert!(off.trace.is_none(), "no trace when tracing is off");
    for (threads, level) in [
        (1, Level::Spans),
        (4, Level::Spans),
        (1, Level::Full),
        (4, Level::Full),
    ] {
        let traced = at_level(level, || {
            cp_parallel::with_threads(threads, || run_flow(&n, &c, &o).expect("flow runs"))
        });
        assert_same_outputs(&off, &traced);
        let trace = traced
            .trace
            .as_ref()
            .expect("trace present when tracing is on");
        // The stage spans are the flow's stages, in pipeline order, and
        // the timings are derived from them (direct root children that
        // aren't stages — e.g. netlist.validate — are filtered out).
        let stage_names: Vec<&str> = trace
            .stage_seconds()
            .iter()
            .map(|&(s, _)| s)
            .filter(|s| cp_core::stages::ALL.contains(s))
            .collect();
        assert_eq!(
            stage_names,
            [
                "clustering",
                "shaping",
                "cluster placement",
                "flat placement",
                "legalize+refine",
                "ppa"
            ]
        );
        for (name, s) in &traced.timings.stages {
            assert_eq!(
                trace
                    .stage_seconds()
                    .iter()
                    .find(|(n2, _)| n2 == name)
                    .map(|&(_, s2)| s2),
                Some(*s)
            );
        }
        assert!(
            trace.spans_named("vpr.cluster").count() > 0,
            "per-cluster shape-search spans recorded"
        );
        if level == Level::Full {
            assert!(
                trace.series.iter().any(|r| r.name == "place.outer"),
                "placer convergence series recorded at Full"
            );
        }
    }
}

#[test]
fn trace_off_runs_match_across_thread_counts() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts().shape_mode(ShapeMode::Hybrid {
        selector: None,
        top_k: 4,
    });
    let seq = at_level(Level::Full, || {
        cp_parallel::with_threads(1, || run_flow(&n, &c, &o).expect("flow runs"))
    });
    let par = at_level(Level::Full, || {
        cp_parallel::with_threads(4, || run_flow(&n, &c, &o).expect("flow runs"))
    });
    assert_same_outputs(&seq, &par);
    // The traced outputs also match the untraced ones.
    let off = at_level(Level::Off, || run_flow(&n, &c, &o).expect("flow runs"));
    assert_same_outputs(&off, &seq);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Placement — the numerically hottest instrumented path (CG solves,
    /// spreading, series emission) — is bitwise invariant to the trace
    /// level and the thread budget on random problem seeds.
    #[test]
    fn placement_bits_ignore_trace_level(seed in 0u64..500) {
        let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (n, _) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(1.0 / 256.0)
            .seed(seed)
            .generate_with_constraints();
        let fp = cp_netlist::Floorplan::try_for_netlist(&n, 0.6, 1.0).expect("floorplan");
        let problem = PlacementProblem::from_netlist(&n, &fp);
        let placer = PlacerOptions {
            max_iterations: 8,
            cg_iterations: 20,
            ..Default::default()
        };
        let base = at_level(Level::Off, || {
            GlobalPlacer::new(placer).place(&problem).expect("places")
        });
        let base_hpwl = raw_hpwl(&problem, &base.positions);
        for (threads, level) in [(1usize, Level::Full), (4, Level::Full), (4, Level::Spans)] {
            let traced = at_level(level, || {
                cp_parallel::with_threads(threads, || {
                    GlobalPlacer::new(placer).place(&problem).expect("places")
                })
            });
            for (a, b) in base.positions.iter().zip(&traced.positions) {
                prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            let hpwl = raw_hpwl(&problem, &traced.positions);
            prop_assert_eq!(base_hpwl.to_bits(), hpwl.to_bits());
        }
        // Drain anything the traced placements buffered so later tests
        // start from a clean capture state.
        cp_trace::clear();
    }
}
