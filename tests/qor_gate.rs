//! QoR gate end-to-end: the pinned gate flow is bitwise-deterministic
//! across thread counts, the committed baseline matches a fresh run, the
//! `tracetool gate` binary passes on a clean report and exits nonzero on
//! a doctored one, and the analysis layer's self-time/flamegraph output
//! reconciles with the report's stage accounting on a real trace.
//!
//! The trace level is process-global state, so every test here
//! serializes on one mutex (see `tests/trace_determinism.rs`).

use cp_bench::qor_gate::{self, Baseline};
use cp_trace::json::parse;
use cp_trace::{Analysis, TraceReport};
use std::process::Command;
use std::sync::Mutex;

/// Serializes tests that flip the process-global trace level.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn gate_trace() -> TraceReport {
    let report = qor_gate::run_gate_flow().expect("gate flow runs");
    report.trace.expect("gate flow is fully traced")
}

#[test]
fn gate_flow_is_thread_invariant_and_matches_committed_baseline() {
    let _guard = LEVEL_LOCK.lock().expect("level lock");
    let t1 = cp_parallel::with_threads(1, gate_trace);
    let t4 = cp_parallel::with_threads(4, gate_trace);
    let a1 = Analysis::from_report(&t1).expect("analyzes");
    let a4 = Analysis::from_report(&t4).expect("analyzes");

    // Bitwise-deterministic outputs: every qor.* gauge matches exactly
    // across thread counts.
    let g1 = a1.gauges_with_prefix("qor.");
    let g4 = a4.gauges_with_prefix("qor.");
    assert_eq!(g1, g4, "qor gauges must not depend on the thread count");
    assert!(g1.len() >= 10, "expected a full QoR snapshot, got {g1:?}");

    // A baseline recorded at one thread count gates the other: QoR is
    // exact, runtime work shares absorb the scheduling differences.
    let baseline = Baseline::from_analysis(&a1, "aes", qor_gate::GATE_SCALE);
    let failures = baseline.check(&a4);
    assert!(
        failures.is_empty(),
        "cross-thread gate failed: {failures:?}"
    );

    // The committed baseline is what a fresh run produces.
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../baselines/QOR_baseline.json"
    ))
    .expect("read committed baseline");
    let committed = Baseline::from_json(&committed).expect("committed baseline parses");
    let failures = committed.check(&a1);
    assert!(
        failures.is_empty(),
        "fresh gate run violates the committed baseline: {failures:?}"
    );
}

#[test]
fn committed_baseline_conforms_to_its_schema() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let doc = std::fs::read_to_string(format!("{root}/baselines/QOR_baseline.json"))
        .expect("read committed baseline");
    let schema = std::fs::read_to_string(format!("{root}/schemas/qor_baseline.schema.json"))
        .expect("read baseline schema");
    let violations = cp_trace::json::validate(
        &parse(&doc).expect("baseline parses"),
        &parse(&schema).expect("schema parses"),
    );
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn tracetool_gate_passes_clean_and_rejects_doctored_reports() {
    let _guard = LEVEL_LOCK.lock().expect("level lock");
    let trace = gate_trace();
    let dir = std::env::temp_dir().join(format!("qor_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let report_path = dir.join("report.json");
    let baseline_path = dir.join("baseline.json");
    let clean = trace.to_json();
    std::fs::write(&report_path, &clean).expect("write report");

    let tracetool = env!("CARGO_BIN_EXE_tracetool");
    let run = |args: &[&str]| {
        Command::new(tracetool)
            .args(args)
            .output()
            .expect("tracetool runs")
    };
    let report_arg = report_path.to_str().expect("utf-8 temp path");
    let baseline_arg = baseline_path.to_str().expect("utf-8 temp path");

    // Record a baseline from the report, then gate the same report: pass.
    let out = run(&[
        "gate",
        "--from",
        report_arg,
        "--baseline",
        baseline_arg,
        "--write",
    ]);
    assert!(out.status.success(), "write failed: {out:?}");
    let out = run(&["gate", "--from", report_arg, "--baseline", baseline_arg]);
    assert!(out.status.success(), "clean gate must pass: {out:?}");

    // +10% on the legalized-HPWL gauge: the gate must exit nonzero.
    let needle = "\"name\":\"qor.legalized.hpwl\",\"kind\":\"gauge\",\"value\":";
    let start = clean.find(needle).expect("hpwl gauge present") + needle.len();
    let end = start
        + clean[start..]
            .find([',', '}'])
            .expect("number is delimited");
    let value: f64 = clean[start..end].parse().expect("gauge value parses");
    let doctored = format!("{}{}{}", &clean[..start], value * 1.1, &clean[end..]);
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, &doctored).expect("write doctored report");
    let out = run(&[
        "gate",
        "--from",
        doctored_path.to_str().expect("utf-8 temp path"),
        "--baseline",
        baseline_arg,
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "doctored +10% HPWL must fail the gate: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("qor.legalized.hpwl"),
        "failure must name the regressed gauge: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analysis_reconciles_with_stage_seconds_on_a_real_trace() {
    let _guard = LEVEL_LOCK.lock().expect("level lock");
    let trace = gate_trace();
    let a = Analysis::from_report(&trace).expect("analyzes");

    // Subtree self-time per stage telescopes back to the stage's wall
    // clock as reported by `stage_seconds`, to nanosecond precision.
    let stage_walls = trace.stage_seconds();
    let stage_self = a.stage_self_seconds();
    for (name, wall) in &stage_walls {
        let (_, self_total) = stage_self
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("stage `{name}` missing from analysis"));
        assert!(
            (wall - self_total).abs() < 1e-9,
            "stage `{name}`: wall {wall} vs subtree self {self_total}"
        );
    }

    // The folded export is loadable collapsed-stack format: every line is
    // `frame(;frame)* count` with a non-negative integer count and
    // frames free of `;` and newlines.
    let folded = a.folded();
    assert!(!folded.is_empty(), "real trace must produce stacks");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("count separated by space");
        assert!(count.parse::<u64>().is_ok(), "bad count in `{line}`");
        assert!(!stack.is_empty() && stack.split(';').all(|f| !f.is_empty()));
    }
    // Root frame of every stack is the flow root.
    assert!(folded
        .lines()
        .all(|l| l.starts_with("flow.clustered") || l.starts_with("flow.clustered;")));
}
