//! Spatial field-frame capture must be a pure observer: the flow's
//! outputs are bitwise identical with capture on and off, at 1, 4 and 8
//! worker threads — and the captured frames themselves (names, stages,
//! iteration indices, dims and every f32 bit) are identical across
//! thread counts and across repeat runs, because record sites only fire
//! on the flow thread under an open stage scope.
//!
//! Field capture is process-global state (like the trace level), so
//! every test serializes on one mutex and restores the off state when
//! done.

use cp_core::flow::{run_flow, FlowOptions, FlowReport, ShapeMode};
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::{Constraints, Netlist};
use cp_trace::{FrameCapture, Level};
use std::sync::Mutex;

/// Serializes tests that flip the process-global capture/trace state.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn small_design() -> (Netlist, Constraints) {
    GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(7)
        .generate_with_constraints()
}

fn opts() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 50,
            path_count: 1000,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    }
    .shape_mode(ShapeMode::Vpr)
}

fn assert_same_outputs(a: &FlowReport, b: &FlowReport) {
    assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
    assert_eq!(a.ppa, b.ppa);
    assert_eq!(a.cluster_count, b.cluster_count);
    assert_eq!(a.diagnostics, b.diagnostics);
    assert_eq!(a.shaping, b.shaping);
}

/// Runs the flow with field capture enabled at `threads` workers,
/// restoring the off state (and clearing trace buffers) afterwards.
fn run_with_fields(
    n: &Netlist,
    c: &Constraints,
    o: &FlowOptions,
    threads: usize,
    level: Level,
) -> (FlowReport, FrameCapture) {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            cp_trace::set_level(Level::Off);
            cp_trace::fields::disable();
            cp_trace::clear();
        }
    }
    let _reset = Reset;
    cp_trace::fields::enable(cp_trace::fields::DEFAULT_FRAME_BUDGET);
    cp_trace::set_level(level);
    let report = cp_parallel::with_threads(threads, || run_flow(n, c, o).expect("flow runs"));
    cp_trace::set_level(Level::Off);
    let capture = cp_trace::fields::take();
    (report, capture)
}

/// A bit-exact, comparable view of one decoded frame.
type FrameSig = (String, String, u64, usize, usize, Vec<u32>);

fn signatures(capture: &FrameCapture) -> Vec<FrameSig> {
    cp_trace::fields::decode(capture)
        .into_iter()
        .map(|f| {
            let bits = f.values.iter().map(|v| v.to_bits()).collect();
            (f.name, f.stage, f.iter, f.nx, f.ny, bits)
        })
        .collect()
}

#[test]
fn field_capture_leaves_flow_outputs_bitwise_identical() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts();
    let off = run_flow(&n, &c, &o).expect("flow runs");

    let mut first: Option<(Vec<FrameSig>, String)> = None;
    for threads in [1usize, 4, 8] {
        let (report, capture) = run_with_fields(&n, &c, &o, threads, Level::Off);
        assert_same_outputs(&off, &report);
        assert!(
            report.trace.is_none(),
            "field capture must not imply tracing"
        );
        assert_eq!(capture.dropped_frames, 0, "budget generous for this flow");
        let sigs = signatures(&capture);
        assert!(
            !sigs.is_empty(),
            "record sites must fire when capture is on"
        );
        let names: Vec<&str> = sigs.iter().map(|(name, ..)| name.as_str()).collect();
        assert!(
            names.contains(&"place.density_overflow"),
            "density-overflow grids recorded, got {names:?}"
        );
        assert!(
            names.contains(&"place.displacement"),
            "displacement fields recorded, got {names:?}"
        );
        assert!(
            names.contains(&"route.congestion"),
            "router congestion map recorded, got {names:?}"
        );
        // Frames — and their serialized artifact — are deterministic per
        // flow, independent of the worker-thread count: candidate
        // placements on pool threads never record.
        let json = cp_trace::fields::to_json(&capture);
        match &first {
            Some((base_sigs, base_json)) => {
                assert_eq!(base_sigs, &sigs, "frames differ at {threads} threads");
                assert_eq!(base_json, &json, "artifact differs at {threads} threads");
            }
            None => first = Some((sigs, json)),
        }
    }

    // Repeat run at one thread: the capture reproduces exactly.
    let (report, capture) = run_with_fields(&n, &c, &o, 1, Level::Off);
    assert_same_outputs(&off, &report);
    let (base_sigs, base_json) = first.expect("first capture recorded");
    assert_eq!(base_sigs, signatures(&capture), "frames differ across runs");
    assert_eq!(
        base_json,
        cp_trace::fields::to_json(&capture),
        "artifact differs across runs"
    );
}

#[test]
fn field_capture_composes_with_full_tracing() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts();
    let off = run_flow(&n, &c, &o).expect("flow runs");
    let (report, capture) = run_with_fields(&n, &c, &o, 4, Level::Full);
    assert_same_outputs(&off, &report);
    assert!(report.trace.is_some(), "trace present at Full");
    assert!(
        !capture.frames.is_empty(),
        "frames captured alongside trace"
    );
    // With capture off again, nothing records even inside open scopes.
    let after = run_flow(&n, &c, &o).expect("flow runs");
    assert_same_outputs(&off, &after);
    assert!(cp_trace::fields::take().frames.is_empty());
}
