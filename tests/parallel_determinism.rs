//! Determinism across thread counts: every metric the flow reports must
//! be bit-identical whether the parallel layer runs on one thread
//! (`CP_THREADS=1`, exact sequential path) or many. `with_threads`
//! overrides the budget per scope, so both paths run in one process.

use cp_core::flow::{run_flow, FlowOptions, ShapeMode};
use cp_core::vpr::{best_shape, VprOptions};
use cp_core::ClusteringOptions;
use cp_gnn::tensor::Matrix;
use cp_graph::Hypergraph;
use cp_netlist::floorplan::Rect;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::CellId;
use cp_place::hpwl::{raw_hpwl, weighted_hpwl};
use cp_place::problem::{Object, PlacementProblem};
use cp_place::solver::{Axis, B2bSystem};
use cp_place::spreading::density_overflow;
use proptest::prelude::*;

fn opts() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 50,
            path_count: 1000,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    }
}

#[test]
fn flow_metrics_are_thread_count_invariant() {
    let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(7)
        .generate_with_constraints();
    let o = opts().shape_mode(ShapeMode::Vpr);
    let seq = cp_parallel::with_threads(1, || run_flow(&n, &c, &o).expect("flow runs"));
    let par = cp_parallel::with_threads(4, || run_flow(&n, &c, &o).expect("flow runs"));
    assert_eq!(seq.hpwl.to_bits(), par.hpwl.to_bits());
    assert_eq!(seq.ppa, par.ppa);
    assert_eq!(seq.cluster_count, par.cluster_count);
    assert_eq!(seq.diagnostics, par.diagnostics);
    assert_eq!(seq.timings.threads, 1);
    assert_eq!(par.timings.threads, 4);
}

#[test]
fn vpr_sweep_is_thread_count_invariant() {
    let n = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(0.02)
        .seed(12)
        .generate();
    let cells: Vec<CellId> = (0..220).map(CellId).collect();
    let sub = cp_core::vpr::extract_subnetlist(&n, &cells).expect("valid sub-netlist");
    let v = VprOptions::default();
    let (shape1, costs1) =
        cp_parallel::with_threads(1, || best_shape(&sub, &v).expect("sweep runs"));
    let (shape4, costs4) =
        cp_parallel::with_threads(4, || best_shape(&sub, &v).expect("sweep runs"));
    assert_eq!(shape1, shape4);
    assert_eq!(costs1, costs4);
}

/// A small random placement problem with positions.
fn arb_problem() -> impl Strategy<Value = (PlacementProblem, Vec<(f64, f64)>)> {
    (4usize..40).prop_flat_map(|m| {
        let positions = prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), m);
        let edges = prop::collection::vec(
            (prop::collection::vec(0..m as u32, 2..5), 0.5f64..2.0),
            1..40,
        );
        (positions, edges).prop_map(move |(pos, edges)| {
            let weights: Vec<f64> = edges.iter().map(|(_, w)| *w).collect();
            let problem = PlacementProblem {
                movable: vec![
                    Object {
                        width: 1.0,
                        height: 1.0
                    };
                    m
                ],
                fixed: vec![],
                hypergraph: Hypergraph::new(m, edges),
                net_weights: weights,
                core: Rect::new(0.0, 0.0, 100.0, 100.0),
                region: vec![None; m],
                seed_positions: None,
                blockages: Vec::new(),
                density_target: 0.7,
            };
            (problem, pos)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hpwl_bits_match_across_threads((p, pos) in arb_problem()) {
        let seq = cp_parallel::with_threads(1, || (raw_hpwl(&p, &pos), weighted_hpwl(&p, &pos)));
        for t in [2usize, 4, 8] {
            let par = cp_parallel::with_threads(t, || (raw_hpwl(&p, &pos), weighted_hpwl(&p, &pos)));
            prop_assert_eq!(seq.0.to_bits(), par.0.to_bits());
            prop_assert_eq!(seq.1.to_bits(), par.1.to_bits());
        }
    }

    #[test]
    fn solver_bits_match_across_threads((p, pos) in arb_problem()) {
        let x0: Vec<f64> = pos.iter().map(|&(x, _)| x).collect();
        let seq = cp_parallel::with_threads(1, || {
            B2bSystem::build(&p, &pos, Axis::X, None).solve(&x0, 40, 1e-9)
        });
        let par = cp_parallel::with_threads(4, || {
            B2bSystem::build(&p, &pos, Axis::X, None).solve(&x0, 40, 1e-9)
        });
        for (a, b) in seq.iter().zip(&par) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn density_bits_match_across_threads((p, pos) in arb_problem()) {
        let seq = cp_parallel::with_threads(1, || density_overflow(&p, &pos));
        let par = cp_parallel::with_threads(4, || density_overflow(&p, &pos));
        prop_assert_eq!(seq.to_bits(), par.to_bits());
    }

    #[test]
    fn matmul_bits_match_across_threads(seed in 0u64..1000) {
        let a = Matrix::from_fn(31, 17, |r, c| {
            ((r as u64 * 131 + c as u64 * 29 + seed) % 251) as f64 * 0.017 - 1.3
        });
        let b = Matrix::from_fn(17, 13, |r, c| {
            ((r as u64 * 53 + c as u64 * 97 + seed) % 241) as f64 * 0.011 - 0.7
        });
        let seq = cp_parallel::with_threads(1, || (a.matmul(&b), a.matmul_tn(&a), a.matmul_nt(&a)));
        let par = cp_parallel::with_threads(8, || (a.matmul(&b), a.matmul_tn(&a), a.matmul_nt(&a)));
        prop_assert_eq!(seq, par);
    }
}
