//! Backend parity contract of the `PlacerBackend` seam: the default
//! options run the incumbent B2B spreading bitwise-identically to an
//! explicit `B2bBackend` selection at every thread count, the eDensity
//! backend is itself bitwise thread-invariant, and checkpoint/resume
//! reproduces an eDensity run bit for bit — the refactor added a
//! dispatch point, not a numerics change.

use cp_bench::qor_gate;
use cp_core::flow::{run_flow, FlowOptions, ShapeMode};
use cp_core::{run_flow_resilient, Checkpoint, ClusteringOptions, ResilienceOptions, RunControl};
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_place::PlacerBackendKind;
use std::path::PathBuf;

const THREADS: [usize; 3] = [1, 4, 8];

#[test]
fn default_options_match_explicit_b2b_backend_at_every_thread_count() {
    let b = qor_gate::gate_bench();
    let default_opts = qor_gate::gate_options();
    assert_eq!(
        default_opts.placer.backend,
        PlacerBackendKind::B2b,
        "b2b must stay the default backend"
    );
    let reference = run_flow(&b.netlist, &b.constraints, &default_opts).expect("flow runs");
    let explicit = qor_gate::gate_options().backend(PlacerBackendKind::B2b);
    for threads in THREADS {
        let report = cp_parallel::with_threads(threads, || {
            run_flow(&b.netlist, &b.constraints, &explicit).expect("flow runs")
        });
        assert!(
            report.deterministic_eq(&reference),
            "explicit B2b backend at {threads} threads must be bitwise-identical to the \
             default options"
        );
    }
}

#[test]
fn edensity_flow_is_thread_count_invariant() {
    let b = qor_gate::gate_bench();
    let opts = qor_gate::gate_options().backend(PlacerBackendKind::EDensity);
    let reference = run_flow(&b.netlist, &b.constraints, &opts).expect("flow runs");
    assert!(
        reference.hpwl.is_finite() && reference.hpwl > 0.0,
        "eDensity flow must produce a real placement"
    );
    for threads in THREADS {
        let report = cp_parallel::with_threads(threads, || {
            run_flow(&b.netlist, &b.constraints, &opts).expect("flow runs")
        });
        assert!(
            report.deterministic_eq(&reference),
            "eDensity backend at {threads} threads must be bitwise-identical"
        );
    }
}

/// Reduced-effort options on a tiny design for the interrupt/resume loop,
/// mirroring `tests/resilience.rs` but with the eDensity backend.
fn edensity_resume_opts() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 50,
            path_count: 1000,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    }
    .shape_mode(ShapeMode::Vpr)
    .backend(PlacerBackendKind::EDensity)
}

fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cp-backend-parity-tests");
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir.join(format!("{}-{tag}.json", std::process::id()))
}

#[test]
fn edensity_checkpoint_resume_is_bitwise_identical() {
    let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(11)
        .generate_with_constraints();
    let opts = edensity_resume_opts();
    let reference = run_flow(&n, &c, &opts).expect("plain eDensity flow runs");

    // Count the clean run's cancellation checks, then interrupt in the
    // middle and at the tail, checkpointing at the boundary.
    let control = RunControl::unlimited();
    let clean = ResilienceOptions {
        control: control.clone(),
        ..Default::default()
    };
    run_flow_resilient(&n, &c, &opts, &clean).expect("clean resilient run");
    let total = control.checks();
    assert!(total > 2, "flow should count cancellation checks");

    for k in [total / 2, total - 1] {
        let path = ckpt_path(&format!("edensity-{k}"));
        let _ = std::fs::remove_file(&path);
        let interrupted = ResilienceOptions {
            control: RunControl::unlimited().cancel_after_checks(k),
            checkpoint: Some(path.clone()),
            resume_from: None,
            ledger: None,
        };
        let err =
            run_flow_resilient(&n, &c, &opts, &interrupted).expect_err("run must be cancelled");
        err.interrupted()
            .expect("cancellation is a typed interrupt");
        let ckpt = Checkpoint::load(&path).expect("interrupted run leaves a loadable checkpoint");

        for threads in [1usize, 4] {
            let resume = ResilienceOptions {
                control: RunControl::unlimited(),
                checkpoint: None,
                resume_from: Some(path.clone()),
                ledger: None,
            };
            let resumed = cp_parallel::with_threads(threads, || {
                run_flow_resilient(&n, &c, &opts, &resume).expect("resume completes")
            });
            assert!(
                resumed.deterministic_eq(&reference),
                "eDensity resume from `{}` (cancel at check {k}, {threads} threads) must be \
                 bitwise-identical to the clean run",
                ckpt.stage
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
