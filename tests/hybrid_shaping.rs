//! Cross-crate tests for `ShapeMode::Hybrid`: with `top_k = 20` the
//! hybrid search degenerates to the exact 20-candidate sweep (bitwise
//! identical flow result); with `top_k < 20` it must still produce
//! finite, legal flows while provably skipping exact work.

use cp_core::flow::{run_flow, FlowOptions, ShapeMode};
use cp_core::vpr::{best_shape, best_shape_hybrid, VprOptions};
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::netlist::Netlist;
use cp_netlist::Constraints;
use proptest::prelude::*;

fn setup() -> (Netlist, Constraints) {
    GeneratorConfig::from_profile(DesignProfile::Jpeg)
        .scale(1.0 / 128.0)
        .seed(71)
        .generate_with_constraints()
}

fn options() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 60,
            path_count: 2000,
            ..Default::default()
        },
        vpr_min_instances: 50,
        ..Default::default()
    }
}

fn small_sub(seed: u64) -> Netlist {
    GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(0.02)
        .seed(seed)
        .generate()
}

#[test]
fn hybrid_top20_matches_exact_sweep_bitwise() {
    let (n, c) = setup();
    let exact = run_flow(&n, &c, &options().shape_mode(ShapeMode::Vpr)).expect("vpr flow runs");
    let hybrid = run_flow(
        &n,
        &c,
        &options().shape_mode(ShapeMode::Hybrid {
            selector: None,
            top_k: 20,
        }),
    )
    .expect("hybrid flow runs");
    // With every candidate surviving, the hybrid runs the same cold
    // evaluations as the sweep and must pick identical shapes, so the
    // whole downstream flow is bit-for-bit the same.
    assert_eq!(exact.hpwl.to_bits(), hybrid.hpwl.to_bits());
    assert_eq!(exact.ppa, hybrid.ppa);
    assert_eq!(hybrid.shaping.exact_evals_avoided, 0);
    assert_eq!(
        hybrid.shaping.exact_evals,
        20 * hybrid.shaping.clusters_shaped
    );
}

#[test]
fn hybrid_pruned_flow_is_finite_and_skips_exact_work() {
    let (n, c) = setup();
    let report = run_flow(
        &n,
        &c,
        &options().shape_mode(ShapeMode::Hybrid {
            selector: None,
            top_k: 4,
        }),
    )
    .expect("hybrid flow runs");
    assert!(report.hpwl.is_finite() && report.hpwl > 0.0);
    assert!(report.ppa.rwl > 0.0);
    assert!(report.ppa.wns.is_finite());
    let s = report.shaping;
    assert!(s.clusters_shaped > 0);
    assert!(s.exact_evals < 20 * s.clusters_shaped);
    assert!(s.exact_evals_avoided > 0);
    assert_eq!(s.proxy_evals, 20 * s.clusters_shaped);
    // top_k = 4 gives a screening round, so warm starts must engage.
    assert!(s.warm_start_hits > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any `top_k` (and any small netlist) yields a valid candidate
    /// shape with finite positive costs, never more exact evaluations
    /// than the sweep, and — whenever the ranking's top pick wins —
    /// the same shape the exact sweep selects.
    #[test]
    fn hybrid_is_finite_and_bounded_for_any_top_k(seed in 0u64..500, top_k in 1usize..=20) {
        let sub = small_sub(seed);
        let opts = VprOptions::default();
        let (shape, costs, stats) =
            best_shape_hybrid(&sub, &opts, top_k, None).expect("hybrid search runs");
        prop_assert!(shape.aspect_ratio > 0.0 && shape.utilization > 0.0);
        prop_assert!(!costs.is_empty());
        for c in &costs {
            prop_assert!(c.total.is_finite() && c.total > 0.0);
        }
        // Halving rounds sum to < 2·top_k evaluations, plus at most one
        // champion re-add per cut (top_k <= 20 means at most 5 cuts).
        prop_assert!(stats.exact_evals <= 2 * top_k + 5);
        prop_assert_eq!(stats.exact_evals_avoided, 20 - top_k.min(20));
        if top_k >= 20 {
            let (exact, _) = best_shape(&sub, &opts).expect("exact sweep runs");
            prop_assert_eq!(shape, exact);
        }
    }
}
