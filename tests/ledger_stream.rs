//! Streaming + run-ledger acceptance suite (the flight-recorder PR).
//!
//! The streaming layer must be invisible to the flow: outputs are
//! bitwise identical with no sink at 1/4/8 threads and with a sink
//! attached vs detached, drained events fold into stage-level progress,
//! overflow drop-counters are deterministic under forced backpressure
//! (a deliberately tiny ring that nobody drains mid-run), and the run
//! ledger written by `run_flow_resilient` round-trips losslessly and
//! gates a doctored QoR regression through `cp_trace::ledger::trend`.
//!
//! The trace level and the sink channel are process-global, so every
//! test serializes on one mutex and restores Off/detached when done.

use cp_core::flow::{
    run_flow, run_flow_resilient, FlowOptions, FlowReport, ResilienceOptions, ShapeMode,
};
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::{Constraints, Netlist};
use cp_trace::{DiffOptions, LedgerEntry, Level, ProgressSink, TraceSink};
use std::sync::Mutex;

/// Serializes tests that flip the process-global trace level or sink.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at the given trace level, restoring `Off` and detaching any
/// sink afterwards (also on panic, so a failing assertion doesn't poison
/// the next test's global state).
fn at_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            cp_trace::set_level(Level::Off);
            cp_trace::detach_sink();
        }
    }
    let _reset = Reset;
    cp_trace::set_level(level);
    f()
}

fn small_design() -> (Netlist, Constraints) {
    GeneratorConfig::from_profile(DesignProfile::Aes)
        .scale(1.0 / 128.0)
        .seed(7)
        .generate_with_constraints()
}

fn opts() -> FlowOptions {
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: 50,
            path_count: 1000,
            ..Default::default()
        },
        vpr_min_instances: 60,
        ..Default::default()
    }
    .shape_mode(ShapeMode::Vpr)
}

fn assert_same_outputs(a: &FlowReport, b: &FlowReport) {
    assert_eq!(a.hpwl.to_bits(), b.hpwl.to_bits());
    assert_eq!(a.ppa, b.ppa);
    assert_eq!(a.cluster_count, b.cluster_count);
    assert_eq!(a.diagnostics, b.diagnostics);
    assert_eq!(a.shaping, b.shaping);
}

/// Acceptance pin: with no sink attached, flow outputs are bitwise
/// identical at 1, 4 and 8 threads, tracing on or off.
#[test]
fn no_sink_outputs_bitwise_identical_at_1_4_8_threads() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts();
    assert!(!cp_trace::sink_attached(), "no sink is attached by default");
    let base = at_level(Level::Off, || {
        cp_parallel::with_threads(1, || run_flow(&n, &c, &o).expect("flow runs"))
    });
    for threads in [4usize, 8] {
        for level in [Level::Off, Level::Full] {
            let r = at_level(level, || {
                cp_parallel::with_threads(threads, || run_flow(&n, &c, &o).expect("flow runs"))
            });
            assert_same_outputs(&base, &r);
        }
    }
}

/// Attaching a sink must not change a single output bit, and the drained
/// events must fold into complete stage-level progress.
#[test]
fn attached_sink_is_invisible_and_feeds_progress() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts();
    let detached = at_level(Level::Full, || run_flow(&n, &c, &o).expect("flow runs"));
    for threads in [1usize, 4] {
        // Drain inside the scope: `at_level` detaches (and empties) the
        // channel on exit.
        let (attached, batch) = at_level(Level::Full, || {
            cp_trace::attach_sink(1 << 20);
            let r = cp_parallel::with_threads(threads, || run_flow(&n, &c, &o).expect("flow runs"));
            (r, cp_trace::drain_sink())
        });
        assert_same_outputs(&detached, &attached);
        assert_eq!(batch.dropped, 0, "2^20 ring never overflows this flow");
        assert!(!batch.events.is_empty(), "the sink saw the run's events");

        let mut progress = ProgressSink::new(cp_core::stages::ALL.as_slice());
        for ev in &batch.events {
            progress.on_event(ev);
        }
        let snap = progress.snapshot();
        assert_eq!(
            snap.done_stages,
            cp_core::stages::ALL.len(),
            "every flow stage opened and closed in the event stream"
        );
        assert!((snap.fraction - 1.0).abs() < 1e-12);
        assert!(
            snap.cg_iterations > 0,
            "place.outer ticks reached the progress sink at Level::Full"
        );
        assert!(snap.vpr_started > 0 && snap.vpr_done == snap.vpr_started);
        assert_eq!(snap.dropped, 0);
    }
}

/// Forced backpressure — a tiny ring nobody drains mid-run — drops
/// events, and the drop counter is deterministic: identical runs lose
/// identical event counts, and the flow's outputs never notice.
#[test]
fn overflow_drop_counters_are_deterministic_under_backpressure() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts();
    for threads in [1usize, 4] {
        let run_once = || {
            at_level(Level::Full, || {
                cp_trace::attach_sink(8);
                let r =
                    cp_parallel::with_threads(threads, || run_flow(&n, &c, &o).expect("flow runs"));
                let batch = cp_trace::drain_sink();
                (r, batch.events.len(), batch.dropped)
            })
        };
        let (r1, kept1, dropped1) = run_once();
        let (r2, kept2, dropped2) = run_once();
        assert!(dropped1 > 0, "a capacity-8 ring must overflow this flow");
        assert_eq!(kept1, 8, "the ring keeps exactly its capacity");
        assert_eq!(
            (kept1, dropped1),
            (kept2, dropped2),
            "identical runs at {threads} threads drop identical counts"
        );
        assert_same_outputs(&r1, &r2);
    }
}

/// `run_flow_resilient` writes one schema-valid ledger entry per run;
/// the JSONL store round-trips losslessly, identical reruns trend clean,
/// and a doctored QoR value trips the trend gate.
#[test]
fn resilient_ledger_roundtrips_and_trend_gates_doctored_runs() {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (n, c) = small_design();
    let o = opts();
    let path = std::env::temp_dir().join(format!("cp_ledger_stream_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let res = ResilienceOptions {
        ledger: Some(path.clone()),
        ..Default::default()
    };
    for _ in 0..2 {
        at_level(Level::Full, || {
            run_flow_resilient(&n, &c, &o, &res).expect("flow runs")
        });
    }
    let entries = cp_trace::ledger::load(&path).expect("ledger loads");
    assert_eq!(entries.len(), 2, "one entry per run");
    assert_eq!(entries[0].fingerprint, entries[1].fingerprint);
    assert_eq!(entries[0].source, "flow");
    assert_eq!(entries[0].status, "completed");
    for e in &entries {
        // Lossless through the line format, and the integer-ns stage
        // partition reconciles to the root wall exactly.
        let back = LedgerEntry::parse_line(&e.to_json_line()).expect("line parses");
        assert_eq!(&back, e);
        let sum: i64 = e.stages.iter().map(|&(_, ns)| ns).sum();
        assert_eq!(sum, e.root_wall_ns as i64);
        assert!(e.qor_value("qor.legalized.hpwl").is_some());
    }
    // Identical reruns: the same bits, so zero regressions at zero
    // tolerance.
    let clean = cp_trace::ledger::trend(&entries, &DiffOptions::default());
    assert_eq!(clean.groups, 1);
    assert!(
        clean.regressions().is_empty(),
        "identical reruns trend clean"
    );

    // A doctored HPWL must trip the gate, and nothing else.
    let doctored = entries[1].clone().doctor("qor.legalized.hpwl", 1.1);
    cp_trace::ledger::append(&path, &doctored).expect("append doctored entry");
    let entries = cp_trace::ledger::load(&path).expect("ledger reloads");
    let gated = cp_trace::ledger::trend(&entries, &DiffOptions::default());
    let regs = gated.regressions();
    assert_eq!(regs.len(), 1, "exactly the doctored metric regresses");
    assert_eq!(regs[0].metric, "qor.legalized.hpwl");
    let _ = std::fs::remove_file(&path);
}
