//! Static timing analysis, switching activity and power — the OpenSTA
//! stand-in.
//!
//! The paper's flow (Algorithm 1, lines 4–5) extracts from OpenSTA:
//!
//! 1. the top `|P|` timing-critical paths (one worst path per endpoint,
//!    sorted by slack — `findPathEnds` with `endpoint_count = 1`,
//!    `unique_pins = true`, `sort_by_slack = true`);
//! 2. per-net slacks (for the timing cost `t_e` of [5]);
//! 3. vectorless switching activity of every net (for the switching cost
//!    `s_e`, Eq. 2).
//!
//! This crate computes all three on our netlist database, plus the
//! post-route metrics the evaluation reports (WNS, TNS, power):
//!
//! - [`sta::Sta`] — graph-based STA with the linear delay model
//!   `d = intrinsic + R_drive · C_load` and placement-dependent wire
//!   parasitics ([`wire::WireModel`]);
//! - [`activity`] — exact truth-table (Boolean-difference) vectorless
//!   activity propagation;
//! - [`power`] — switching + internal + leakage power report.
//!
//! # Examples
//!
//! ```
//! use cp_netlist::generator::{DesignProfile, GeneratorConfig};
//! use cp_timing::sta::Sta;
//! use cp_timing::wire::WireModel;
//!
//! let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Aes)
//!     .scale(0.01)
//!     .generate_with_constraints();
//! let sta = Sta::new(&netlist, &constraints).expect("acyclic netlist");
//! let report = sta.run(&WireModel::Estimate);
//! assert!(report.endpoint_count > 0);
//! assert!(report.tns <= 0.0);
//! ```
//!
//! [`Sta::new`](sta::Sta::new) is fallible: a combinational cycle surfaces
//! as [`TimingError::CombinationalCycle`](error::TimingError) instead of a
//! panic.

pub mod activity;
pub mod error;
pub mod power;
pub mod report;
pub mod sta;
pub mod wire;

pub use crate::activity::{propagate_activity, ActivityReport};
pub use crate::error::TimingError;
pub use crate::power::{power_report, PowerReport};
pub use crate::report::{format_timing_report, timing_report_text};
pub use crate::sta::{Sta, TimingPath, TimingReport};
pub use crate::wire::WireModel;
