//! Typed errors for the timing crate.

/// An error raised while building or running static timing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// The combinational logic contains a cycle: some nets could never be
    /// levelized (their in-degree never reached zero).
    CombinationalCycle {
        /// Number of nets left unresolved by the topological sort.
        unresolved_nets: usize,
    },
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CombinationalCycle { unresolved_nets } => write!(
                f,
                "combinational cycle detected: {unresolved_nets} net(s) could not be levelized"
            ),
        }
    }
}

impl std::error::Error for TimingError {}
