//! Wire parasitics models.
//!
//! Net capacitance and per-sink wire delay depend on placement. Before
//! placement a fanout-based estimate stands in (OpenSTA would use a
//! wireload model); after placement the net bounding box and source–sink
//! Manhattan distances drive an Elmore-flavored linear model.

use cp_netlist::netlist::{Netlist, PinRef};
use cp_netlist::NetId;

/// Positions for every hypergraph vertex of a netlist: cells first
/// (by id), then ports.
pub type Positions = [(f64, f64)];

/// How wire parasitics are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireModel<'a> {
    /// Fanout-based wireload estimate (pre-placement).
    Estimate,
    /// Placement-driven: positions per hypergraph vertex
    /// (see [`cp_netlist::Netlist::cell_vertex`]).
    Placed(&'a Positions),
    /// Placement-driven with a detour factor (post-route estimate):
    /// lengths scale by the factor, mimicking routed wirelength.
    Routed(&'a Positions, f64),
}

/// Assumed wireload length per fanout, µm (pre-placement estimate).
const EST_LENGTH_PER_FANOUT: f64 = 8.0;

impl WireModel<'_> {
    /// Total wire length of a net in µm.
    ///
    /// Placed/routed models use half-perimeter wirelength of the net's
    /// bounding box (times the detour factor for `Routed`).
    pub fn net_length(&self, netlist: &Netlist, net: NetId) -> f64 {
        match self {
            Self::Estimate => {
                let fanout = netlist.net(net).sinks.len().max(1);
                EST_LENGTH_PER_FANOUT * fanout as f64
            }
            Self::Placed(pos) => hpwl_of_net(netlist, net, pos),
            Self::Routed(pos, detour) => hpwl_of_net(netlist, net, pos) * detour,
        }
    }

    /// Manhattan distance from the net's driver to one sink, µm.
    pub fn sink_distance(&self, netlist: &Netlist, net: NetId, sink: PinRef) -> f64 {
        match self {
            Self::Estimate => EST_LENGTH_PER_FANOUT,
            Self::Placed(pos) | Self::Routed(pos, _) => {
                let n = netlist.net(net);
                let Some(driver) = n.driver else { return 0.0 };
                let (dx, dy) = endpoint_pos(netlist, driver, pos);
                let (sx, sy) = endpoint_pos(netlist, sink, pos);
                let detour = if let Self::Routed(_, d) = self {
                    *d
                } else {
                    1.0
                };
                ((dx - sx).abs() + (dy - sy).abs()) * detour
            }
        }
    }
}

/// Position of a net endpoint under a placement.
pub fn endpoint_pos(netlist: &Netlist, p: PinRef, pos: &Positions) -> (f64, f64) {
    let v = match p {
        PinRef::Cell { cell, .. } => netlist.cell_vertex(cell),
        PinRef::Port(port) => netlist.port_vertex(port),
    };
    pos[v as usize]
}

/// Half-perimeter wirelength of one net under a placement.
pub fn hpwl_of_net(netlist: &Netlist, net: NetId, pos: &Positions) -> f64 {
    let n = netlist.net(net);
    let mut lo = (f64::INFINITY, f64::INFINITY);
    let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    let mut count = 0;
    for p in n.driver.iter().chain(n.sinks.iter()) {
        let (x, y) = endpoint_pos(netlist, *p, pos);
        lo = (lo.0.min(x), lo.1.min(y));
        hi = (hi.0.max(x), hi.1.max(y));
        count += 1;
    }
    if count < 2 {
        0.0
    } else {
        (hi.0 - lo.0) + (hi.1 - lo.1)
    }
}

/// Total HPWL over all non-clock nets under a placement.
pub fn total_hpwl(netlist: &Netlist, pos: &Positions) -> f64 {
    (0..netlist.net_count() as u32)
        .filter(|&n| !netlist.net(NetId(n)).is_clock)
        .map(|n| hpwl_of_net(netlist, NetId(n), pos))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn nl() -> Netlist {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(1)
            .generate()
    }

    fn grid_positions(n: &Netlist) -> Vec<(f64, f64)> {
        let total = n.cell_count() + n.port_count();
        (0..total)
            .map(|i| ((i % 100) as f64, (i / 100) as f64))
            .collect()
    }

    #[test]
    fn estimate_scales_with_fanout() {
        let n = nl();
        let m = WireModel::Estimate;
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for id in 0..n.net_count() as u32 {
            let l = m.net_length(&n, NetId(id));
            lo = lo.min(l);
            hi = hi.max(l);
        }
        assert!(lo >= EST_LENGTH_PER_FANOUT);
        assert!(hi > lo);
    }

    #[test]
    fn placed_hpwl_positive_and_routed_scales() {
        let n = nl();
        let pos = grid_positions(&n);
        let placed = WireModel::Placed(&pos);
        let routed = WireModel::Routed(&pos, 1.5);
        let total: f64 = (0..n.net_count() as u32)
            .map(|i| placed.net_length(&n, NetId(i)))
            .sum();
        let total_r: f64 = (0..n.net_count() as u32)
            .map(|i| routed.net_length(&n, NetId(i)))
            .sum();
        assert!(total > 0.0);
        assert!((total_r - 1.5 * total).abs() < 1e-6 * total);
    }

    #[test]
    fn total_hpwl_excludes_clock() {
        let n = nl();
        let pos = grid_positions(&n);
        let with_clock: f64 = (0..n.net_count() as u32)
            .map(|i| hpwl_of_net(&n, NetId(i), &pos))
            .sum();
        assert!(total_hpwl(&n, &pos) < with_clock);
    }

    #[test]
    fn single_pin_net_has_zero_hpwl() {
        use cp_netlist::{HierTree, Library, NetlistBuilder, PinRef};
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("t", lib);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        b.add_net("dangling", Some(PinRef::Cell { cell: u0, pin: 0 }), vec![]);
        let n = b.finish().unwrap();
        let pos = vec![(1.0, 1.0)];
        assert_eq!(hpwl_of_net(&n, NetId(0), &pos), 0.0);
    }
}
