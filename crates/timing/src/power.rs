//! Power reporting: switching + internal + leakage.
//!
//! `P_switch = ½ · C_net · V² · d · f` per net, `P_internal = E_int · d · f`
//! per cell, plus constant leakage. With capacitance in fF, frequency in
//! GHz and energy in fJ, products land in µW; totals are reported in W to
//! match the paper's tables.

use crate::activity::ActivityReport;
use crate::wire::WireModel;
use cp_netlist::library::CellClass;
use cp_netlist::netlist::{Netlist, PinRef};
use cp_netlist::{Constraints, NetId};

/// Supply voltage, V (NanGate45-like).
const VDD: f64 = 1.1;

/// A power report in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Net switching power, W.
    pub switching: f64,
    /// Cell-internal power, W.
    pub internal: f64,
    /// Leakage power, W.
    pub leakage: f64,
}

impl PowerReport {
    /// Total power, W.
    pub fn total(&self) -> f64 {
        self.switching + self.internal + self.leakage
    }
}

/// Computes the design power under a wire model and activity annotation.
///
/// # Examples
///
/// ```
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
/// use cp_timing::{power_report, propagate_activity, WireModel};
///
/// let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.01)
///     .generate_with_constraints();
/// let act = propagate_activity(&netlist, &constraints);
/// let p = power_report(&netlist, &constraints, &act, &WireModel::Estimate);
/// assert!(p.total() > 0.0);
/// assert!(p.leakage < p.total());
/// ```
pub fn power_report(
    netlist: &Netlist,
    constraints: &Constraints,
    activity: &ActivityReport,
    wire: &WireModel,
) -> PowerReport {
    let f_ghz = constraints.frequency_ghz();
    let lib = netlist.library();
    let mut switching_uw = 0.0;
    for (i, net) in netlist.nets().iter().enumerate() {
        let nid = NetId(i as u32);
        let mut cap = lib.wire_cap * wire.net_length(netlist, nid);
        for s in &net.sinks {
            cap += match *s {
                PinRef::Cell { cell, pin } => netlist
                    .master(cell)
                    .input_caps
                    .get(pin as usize)
                    .copied()
                    .unwrap_or(1.0),
                PinRef::Port(_) => 2.0,
            };
        }
        switching_uw += 0.5 * cap * VDD * VDD * activity.density[i] * f_ghz;
    }
    let mut internal_uw = 0.0;
    let mut leakage_uw = 0.0;
    for (ci, cell) in netlist.cells().iter().enumerate() {
        let master = lib.cell(cell.ty);
        leakage_uw += master.leakage;
        if master.class == CellClass::Macro {
            continue;
        }
        let d_out = netlist
            .output_net(cp_netlist::CellId(ci as u32))
            .map_or(0.0, |n| activity.density[n.index()]);
        internal_uw += master.internal_energy * d_out * f_ghz;
    }
    PowerReport {
        switching: switching_uw * 1e-6,
        internal: internal_uw * 1e-6,
        leakage: leakage_uw * 1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::propagate_activity;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn setup() -> (Netlist, Constraints) {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(5)
            .generate_with_constraints()
    }

    #[test]
    fn all_components_positive() {
        let (n, c) = setup();
        let act = propagate_activity(&n, &c);
        let p = power_report(&n, &c, &act, &WireModel::Estimate);
        assert!(p.switching > 0.0);
        assert!(p.internal > 0.0);
        assert!(p.leakage > 0.0);
        assert!((p.total() - (p.switching + p.internal + p.leakage)).abs() < 1e-15);
    }

    #[test]
    fn faster_clock_means_more_dynamic_power() {
        let (n, mut c) = setup();
        let act = propagate_activity(&n, &c);
        let slow = power_report(&n, &c, &act, &WireModel::Estimate);
        c.clock_period /= 2.0;
        let fast = power_report(&n, &c, &act, &WireModel::Estimate);
        assert!(fast.switching > slow.switching * 1.9);
        assert!((fast.leakage - slow.leakage).abs() < 1e-15);
    }

    #[test]
    fn longer_wires_mean_more_switching_power() {
        let (n, c) = setup();
        let act = propagate_activity(&n, &c);
        let total = n.cell_count() + n.port_count();
        let tight: Vec<(f64, f64)> = (0..total)
            .map(|i| ((i % 50) as f64, (i / 50) as f64))
            .collect();
        let spread: Vec<(f64, f64)> = (0..total)
            .map(|i| ((i % 50) as f64 * 10.0, (i / 50) as f64 * 10.0))
            .collect();
        let p_tight = power_report(&n, &c, &act, &WireModel::Placed(&tight));
        let p_spread = power_report(&n, &c, &act, &WireModel::Placed(&spread));
        assert!(p_spread.switching > p_tight.switching);
        assert!((p_spread.internal - p_tight.internal).abs() < 1e-12);
    }
}
