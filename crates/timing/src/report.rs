//! Human-readable timing reports (`report_checks` equivalent).
//!
//! Formats the worst paths with a per-stage breakdown — the report every
//! timing engineer reads first. The path data comes from
//! [`crate::sta::Sta::extract_paths`].

use crate::error::TimingError;
use crate::sta::{Sta, TimingReport};
use crate::wire::WireModel;
use cp_netlist::netlist::{Netlist, PinRef};
use cp_netlist::Constraints;
use std::fmt::Write as _;

/// Formats the top `top_k` violating (or least-slack) paths, with the
/// summary header (WNS/TNS/endpoint count).
pub fn format_timing_report(
    netlist: &Netlist,
    sta: &Sta<'_>,
    report: &TimingReport,
    top_k: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Timing report — {} endpoints", report.endpoint_count);
    let _ = writeln!(
        out,
        "WNS {:.1} ps | TNS {:.2} ns | {}",
        report.wns,
        report.tns / 1000.0,
        if report.is_clean() { "MET" } else { "VIOLATED" }
    );
    let paths = sta.extract_paths(report, top_k);
    for (k, p) in paths.iter().enumerate() {
        let _ = writeln!(out, "\nPath #{} (slack {:.1} ps)", k + 1, p.slack);
        let _ = writeln!(out, "  endpoint: {}", endpoint_name(netlist, &p.endpoint));
        let _ = writeln!(out, "  {:<28} {:>12}", "point", "arrival (ps)");
        // Stages run launch-to-capture: reverse the endpoint-first lists.
        for (cell, net) in p.cells.iter().rev().zip(p.nets.iter().rev()) {
            let master = netlist.master(*cell);
            let arrival = report.net_arrival[net.index()];
            let _ = writeln!(
                out,
                "  {:<28} {:>12.1}",
                format!("{} ({})", netlist.cell(*cell).name, master.name),
                arrival
            );
        }
    }
    out
}

/// One-call convenience: run STA and format the report.
///
/// # Errors
///
/// Returns [`TimingError::CombinationalCycle`] if the netlist cannot be
/// levelized.
pub fn timing_report_text(
    netlist: &Netlist,
    constraints: &Constraints,
    wire: &WireModel,
    top_k: usize,
) -> Result<String, TimingError> {
    let sta = Sta::new(netlist, constraints)?;
    let report = sta.run(wire);
    Ok(format_timing_report(netlist, &sta, &report, top_k))
}

fn endpoint_name(netlist: &Netlist, p: &PinRef) -> String {
    match *p {
        PinRef::Cell { cell, pin } => {
            let c = netlist.cell(cell);
            let pin_name = netlist
                .master(cell)
                .input_names
                .get(pin as usize)
                .map(String::as_str)
                .unwrap_or("?");
            format!("{}/{}", c.name, pin_name)
        }
        PinRef::Port(port) => netlist.port(port).name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn report_contains_summary_and_paths() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(61)
            .generate_with_constraints();
        let text = timing_report_text(&n, &c, &WireModel::Estimate, 3).expect("acyclic netlist");
        assert!(text.contains("Timing report"));
        assert!(text.contains("WNS"));
        assert!(text.contains("Path #1"));
        assert!(text.contains("endpoint:"));
        // Three paths requested.
        assert!(text.contains("Path #3"));
        assert!(!text.contains("Path #4"));
    }

    #[test]
    fn arrivals_increase_along_each_path() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Jpeg)
            .scale(0.005)
            .seed(62)
            .generate_with_constraints();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let report = sta.run(&WireModel::Estimate);
        for p in sta.extract_paths(&report, 5) {
            let arrivals: Vec<f64> = p
                .nets
                .iter()
                .rev()
                .map(|nid| report.net_arrival[nid.index()])
                .collect();
            for w in arrivals.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "arrival must be monotone along a path: {arrivals:?}"
                );
            }
        }
    }
}
