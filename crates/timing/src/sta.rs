//! Graph-based static timing analysis.
//!
//! Delay model: cell delay `d = intrinsic + R_drive · C_load`, wire delay
//! per sink `R_wire · dist · (C_sink + ½ · C_wire · dist)` (Elmore-flavored
//! linear model). Arrival times propagate forward in topological order over
//! nets; required times propagate backward; endpoint slacks aggregate to
//! WNS/TNS; per-net slacks and the worst path per endpoint feed the
//! PPA-aware clustering.

use crate::error::TimingError;
use crate::wire::WireModel;
use cp_netlist::library::CellClass;
use cp_netlist::netlist::{Netlist, PinRef};
use cp_netlist::{CellId, Constraints, NetId, PortDir};

/// Setup time assumed at flop D pins, ps.
const SETUP_TIME: f64 = 20.0;
/// Hold time assumed at flop D pins, ps.
const HOLD_TIME: f64 = 5.0;
/// Load presented by an output port, fF.
const PORT_LOAD: f64 = 2.0;
/// Drive resistance of an input port, kΩ.
const PORT_DRIVE: f64 = 2.0;

/// One extracted critical path (one per endpoint, worst arrival chain).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Endpoint slack in ps (negative = violating).
    pub slack: f64,
    /// Nets on the path, endpoint-first.
    pub nets: Vec<NetId>,
    /// Cells traversed (the combinational chain plus launching flop if any),
    /// endpoint-first.
    pub cells: Vec<CellId>,
    /// The endpoint pin.
    pub endpoint: PinRef,
}

/// The result of an STA run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst endpoint slack, ps (positive when timing is met).
    pub wns: f64,
    /// Total negative slack, ps (0 when timing is met).
    pub tns: f64,
    /// Number of constrained endpoints.
    pub endpoint_count: usize,
    /// Arrival time at each net's driver output, ps.
    pub net_arrival: Vec<f64>,
    /// Worst slack through each net, ps (`f64::INFINITY` if unconstrained).
    pub net_slack: Vec<f64>,
    /// Per-endpoint `(pin, slack)` pairs.
    pub endpoints: Vec<(PinRef, f64)>,
    /// Worst hold slack over flop endpoints, ps (positive = met; 0 when
    /// there are no flop endpoints).
    pub hold_wns: f64,
    /// Total negative hold slack, ps.
    pub hold_tns: f64,
    // Worst-arrival predecessor of each net: (input net, through cell).
    worst_pred: Vec<Option<(NetId, CellId)>>,
}

impl TimingReport {
    /// `true` when no endpoint violates.
    pub fn is_clean(&self) -> bool {
        self.tns >= 0.0
    }
}

/// The analyzer. Owns the topological order; `run` may be called with
/// different wire models (pre-/post-placement) cheaply.
#[derive(Debug)]
pub struct Sta<'a> {
    netlist: &'a Netlist,
    constraints: &'a Constraints,
    /// Nets in topological order (sources first).
    topo_nets: Vec<NetId>,
}

impl<'a> Sta<'a> {
    /// Prepares STA for a netlist: levelizes nets over combinational cells.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::CombinationalCycle`] if the combinational
    /// logic contains a cycle.
    pub fn new(netlist: &'a Netlist, constraints: &'a Constraints) -> Result<Self, TimingError> {
        let topo_nets = topological_nets(netlist)?;
        Ok(Self {
            netlist,
            constraints,
            topo_nets,
        })
    }

    /// Runs STA with zero clock skew.
    pub fn run(&self, wire: &WireModel) -> TimingReport {
        self.run_with_clock(wire, None)
    }

    /// Runs STA with per-cell clock arrival times (ps, from CTS); only
    /// entries for sequential cells are read.
    pub fn run_with_clock(&self, wire: &WireModel, clock_arrival: Option<&[f64]>) -> TimingReport {
        let _span = cp_trace::span("sta.run");
        let nl = self.netlist;
        let nn = nl.net_count();
        let t = self.constraints.clock_period;
        let clk_at = |cell: CellId| clock_arrival.map_or(0.0, |c| c[cell.index()]);

        // Per-net load capacitance.
        let mut load = vec![0.0f64; nn];
        for (i, net) in nl.nets().iter().enumerate() {
            if net.is_clock {
                continue;
            }
            let mut c = nl.library().wire_cap * wire.net_length(nl, NetId(i as u32));
            for s in &net.sinks {
                c += match *s {
                    PinRef::Cell { cell, pin } => nl
                        .master(cell)
                        .input_caps
                        .get(pin as usize)
                        .copied()
                        .unwrap_or(1.0),
                    PinRef::Port(_) => PORT_LOAD,
                };
            }
            load[i] = c;
        }

        // Forward: max and min arrival at each net's driver output (max
        // drives setup checks, min drives hold checks).
        let mut arrival = vec![0.0f64; nn];
        let mut arrival_min = vec![0.0f64; nn];
        let mut worst_pred: Vec<Option<(NetId, CellId)>> = vec![None; nn];
        for &nid in &self.topo_nets {
            let net = nl.net(nid);
            if net.is_clock {
                continue;
            }
            let Some(driver) = net.driver else { continue };
            match driver {
                PinRef::Port(_) => {
                    let a = self.constraints.input_delay + PORT_DRIVE * load[nid.index()];
                    arrival[nid.index()] = a;
                    arrival_min[nid.index()] = a;
                }
                PinRef::Cell { cell, .. } => {
                    let master = nl.master(cell);
                    let out_delay = master.intrinsic_delay + master.drive_res * load[nid.index()];
                    match master.class {
                        CellClass::Sequential => {
                            arrival[nid.index()] = clk_at(cell) + out_delay;
                            arrival_min[nid.index()] = clk_at(cell) + out_delay;
                        }
                        _ => {
                            // Worst/best input arrival (pin arrival includes
                            // the source wire delay).
                            let mut worst = 0.0f64;
                            let mut best = f64::INFINITY;
                            let mut pred = None;
                            for (pin, &in_net) in nl.input_nets(cell).iter().enumerate() {
                                let Some(in_net) = in_net else { continue };
                                if nl.net(in_net).is_clock {
                                    continue;
                                }
                                let wd = self.wire_delay(wire, in_net, cell, pin as u8);
                                let a = arrival[in_net.index()] + wd;
                                if a >= worst {
                                    worst = a;
                                    pred = Some((in_net, cell));
                                }
                                best = best.min(arrival_min[in_net.index()] + wd);
                            }
                            if !best.is_finite() {
                                best = 0.0;
                            }
                            arrival[nid.index()] = worst + out_delay;
                            arrival_min[nid.index()] = best + out_delay;
                            worst_pred[nid.index()] = pred;
                        }
                    }
                }
            }
        }

        // Endpoints and required times (setup), plus hold checks.
        let mut required = vec![f64::INFINITY; nn];
        let mut endpoints = Vec::new();
        let mut hold_wns = f64::INFINITY;
        let mut hold_tns = 0.0f64;
        for (i, net) in nl.nets().iter().enumerate() {
            if net.is_clock {
                continue;
            }
            let nid = NetId(i as u32);
            for s in &net.sinks {
                match *s {
                    PinRef::Cell { cell, pin } => {
                        let master = nl.master(cell);
                        if master.class == CellClass::Sequential && pin == 0 {
                            // Flop D endpoint: setup against the next edge,
                            // hold against the same edge.
                            let wd = self.wire_delay(wire, nid, cell, pin);
                            let arr = arrival[i] + wd;
                            let req = t + clk_at(cell) - SETUP_TIME;
                            endpoints.push((*s, req - arr));
                            required[i] = required[i].min(req - wd);
                            let hold_slack = (arrival_min[i] + wd) - (clk_at(cell) + HOLD_TIME);
                            hold_wns = hold_wns.min(hold_slack);
                            if hold_slack < 0.0 {
                                hold_tns += hold_slack;
                            }
                        }
                    }
                    PinRef::Port(p) => {
                        if nl.port(p).dir == PortDir::Output {
                            let arr = arrival[i]; // port sink sits on the net
                            let req = t - self.constraints.output_delay;
                            endpoints.push((*s, req - arr));
                            required[i] = required[i].min(req);
                        }
                    }
                }
            }
        }

        // Backward: propagate required through combinational cells.
        for &nid in self.topo_nets.iter().rev() {
            let net = nl.net(nid);
            if net.is_clock {
                continue;
            }
            for s in &net.sinks {
                let PinRef::Cell { cell, pin } = *s else {
                    continue;
                };
                let master = nl.master(cell);
                if master.class == CellClass::Sequential {
                    continue; // handled as endpoint
                }
                let Some(out) = nl.output_net(cell) else {
                    continue;
                };
                let out_delay = master.intrinsic_delay + master.drive_res * load[out.index()];
                let wd = self.wire_delay(wire, nid, cell, pin);
                let r = required[out.index()] - out_delay - wd;
                if r < required[nid.index()] {
                    required[nid.index()] = r;
                }
            }
        }

        let mut net_slack = vec![f64::INFINITY; nn];
        for i in 0..nn {
            if required[i].is_finite() {
                net_slack[i] = required[i] - arrival[i];
            }
        }

        let mut wns = f64::INFINITY;
        let mut tns = 0.0;
        for &(_, s) in &endpoints {
            wns = wns.min(s);
            if s < 0.0 {
                tns += s;
            }
        }
        if endpoints.is_empty() {
            wns = 0.0;
        }
        if !hold_wns.is_finite() {
            hold_wns = 0.0;
        }
        TimingReport {
            wns,
            tns,
            endpoint_count: endpoints.len(),
            net_arrival: arrival,
            net_slack,
            endpoints,
            hold_wns,
            hold_tns,
            worst_pred,
        }
    }

    /// Extracts the worst path per endpoint for the `count` most critical
    /// endpoints (OpenSTA `findPathEnds` with `endpoint_count = 1`,
    /// `sort_by_slack = true`).
    pub fn extract_paths(&self, report: &TimingReport, count: usize) -> Vec<TimingPath> {
        let nl = self.netlist;
        let mut order: Vec<usize> = (0..report.endpoints.len()).collect();
        // total_cmp, not partial_cmp: a NaN slack (e.g. from corrupt wire
        // lengths) must not panic the sort — it orders after +inf instead.
        order.sort_by(|&a, &b| report.endpoints[a].1.total_cmp(&report.endpoints[b].1));
        order.truncate(count);
        let mut paths = Vec::with_capacity(order.len());
        for idx in order {
            let (endpoint, slack) = report.endpoints[idx];
            // The net feeding this endpoint.
            let mut cur = match endpoint {
                PinRef::Cell { cell, pin } => nl.input_net(cell, pin),
                PinRef::Port(p) => nl.port(p).net,
            };
            let mut nets = Vec::new();
            let mut cells = Vec::new();
            if let PinRef::Cell { cell, .. } = endpoint {
                cells.push(cell); // capturing flop
            }
            while let Some(nid) = cur {
                nets.push(nid);
                match report.worst_pred[nid.index()] {
                    Some((prev, through)) => {
                        cells.push(through);
                        cur = Some(prev);
                    }
                    None => {
                        // Launch point: flop or port driver.
                        if let Some(PinRef::Cell { cell, .. }) = nl.net(nid).driver {
                            cells.push(cell);
                        }
                        cur = None;
                    }
                }
            }
            paths.push(TimingPath {
                slack,
                nets,
                cells,
                endpoint,
            });
        }
        paths
    }

    fn wire_delay(&self, wire: &WireModel, net: NetId, cell: CellId, pin: u8) -> f64 {
        let nl = self.netlist;
        let dist = wire.sink_distance(nl, net, PinRef::Cell { cell, pin });
        let c_sink = nl
            .master(cell)
            .input_caps
            .get(pin as usize)
            .copied()
            .unwrap_or(1.0);
        let lib = nl.library();
        lib.wire_res * dist * (c_sink + 0.5 * lib.wire_cap * dist)
    }
}

/// Nets in topological order: port- and flop-driven nets first, then each
/// combinational cell's output once all its inputs are ordered.
///
/// Returns [`TimingError::CombinationalCycle`] when some net's in-degree
/// never reaches zero.
fn topological_nets(nl: &Netlist) -> Result<Vec<NetId>, TimingError> {
    let nn = nl.net_count();
    let mut order = Vec::with_capacity(nn);
    let mut indeg = vec![0u32; nn];
    // Dependencies: net (driven by comb cell c) depends on each input net of c.
    for (i, net) in nl.nets().iter().enumerate() {
        let Some(PinRef::Cell { cell, .. }) = net.driver else {
            order.push(NetId(i as u32)); // port-driven or floating: source
            continue;
        };
        if nl.master(cell).class == CellClass::Sequential {
            order.push(NetId(i as u32));
            continue;
        }
        let deps = nl
            .input_nets(cell)
            .iter()
            .flatten()
            .filter(|&&n| !nl.net(n).is_clock)
            .count();
        indeg[i] = deps as u32;
        if deps == 0 {
            order.push(NetId(i as u32));
        }
    }
    // Kahn relaxation.
    let mut head = 0;
    while head < order.len() {
        let nid = order[head];
        head += 1;
        for s in &nl.net(nid).sinks {
            let PinRef::Cell { cell, .. } = *s else {
                continue;
            };
            if nl.master(cell).class == CellClass::Sequential {
                continue;
            }
            let Some(out) = nl.output_net(cell) else {
                continue;
            };
            if indeg[out.index()] > 0 {
                indeg[out.index()] -= 1;
                if indeg[out.index()] == 0 {
                    order.push(out);
                }
            }
        }
    }
    if order.len() < nn {
        let unresolved = indeg.iter().filter(|&&d| d > 0).count();
        if unresolved > 0 {
            return Err(TimingError::CombinationalCycle {
                unresolved_nets: unresolved,
            });
        }
        // Nets never produced (duplicate dependency edges collapse): append
        // any stragglers deterministically — they are unreachable/floating.
        let mut seen = vec![false; nn];
        for &n in &order {
            seen[n.index()] = true;
        }
        for (i, &was_ordered) in seen.iter().enumerate() {
            if !was_ordered {
                order.push(NetId(i as u32));
            }
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::{HierTree, Library, NetlistBuilder};

    fn chain(n_inv: usize, period: f64) -> (Netlist, Constraints) {
        // in -> INV^n -> out
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("chain", lib);
        let a = b.add_port("a", PortDir::Input);
        let y = b.add_port("y", PortDir::Output);
        let cells: Vec<CellId> = (0..n_inv)
            .map(|i| b.add_cell(format!("u{i}"), inv, HierTree::ROOT))
            .collect();
        let mut driver = PinRef::Port(a);
        for (i, &c) in cells.iter().enumerate() {
            b.add_net(
                format!("n{i}"),
                Some(driver),
                vec![PinRef::Cell { cell: c, pin: 0 }],
            );
            driver = PinRef::Cell { cell: c, pin: 0 };
        }
        b.add_net("ny", Some(driver), vec![PinRef::Port(y)]);
        (b.finish().unwrap(), Constraints::with_period(period))
    }

    #[test]
    fn combinational_cycle_is_a_typed_error() {
        // Two inverters feeding each other: no topological order exists.
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("loop", lib);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        let u1 = b.add_cell("u1", inv, HierTree::ROOT);
        b.add_net(
            "n0",
            Some(PinRef::Cell { cell: u0, pin: 0 }),
            vec![PinRef::Cell { cell: u1, pin: 0 }],
        );
        b.add_net(
            "n1",
            Some(PinRef::Cell { cell: u1, pin: 0 }),
            vec![PinRef::Cell { cell: u0, pin: 0 }],
        );
        let n = b.finish().unwrap();
        let c = Constraints::with_period(1000.0);
        let err = Sta::new(&n, &c).expect_err("cycle must be rejected");
        assert!(
            matches!(err, TimingError::CombinationalCycle { unresolved_nets } if unresolved_nets > 0)
        );
    }

    #[test]
    fn inverter_chain_delay_accumulates() {
        let (n1, c1) = chain(2, 10_000.0);
        let (n2, c2) = chain(10, 10_000.0);
        let r1 = Sta::new(&n1, &c1)
            .expect("acyclic netlist")
            .run(&WireModel::Estimate);
        let r2 = Sta::new(&n2, &c2)
            .expect("acyclic netlist")
            .run(&WireModel::Estimate);
        // Longer chain ⇒ later arrival ⇒ smaller (still positive) slack.
        assert!(r1.wns > r2.wns);
        assert!(r2.wns > 0.0);
        assert_eq!(r1.tns, 0.0);
    }

    #[test]
    fn tight_period_creates_violations() {
        let (n, c) = chain(20, 50.0);
        let r = Sta::new(&n, &c)
            .expect("acyclic netlist")
            .run(&WireModel::Estimate);
        assert!(r.wns < 0.0);
        assert!(r.tns < 0.0);
        assert!(!r.is_clean());
    }

    #[test]
    fn wns_matches_hand_computation_for_one_gate() {
        // a -> INV -> y with estimate model.
        let (n, c) = chain(1, 1000.0);
        let r = Sta::new(&n, &c)
            .expect("acyclic netlist")
            .run(&WireModel::Estimate);
        let lib = n.library();
        let inv = lib.cell(lib.find("INV_X1").unwrap());
        // Net na: load = wire(8µm) + inv input cap; arrival = PORT_DRIVE*load.
        let load_na = lib.wire_cap * 8.0 + inv.input_caps[0];
        let arr_na = PORT_DRIVE * load_na;
        // Wire to pin: R*8*(cap + 0.5*wire_cap*8)
        let wd = lib.wire_res * 8.0 * (inv.input_caps[0] + 0.5 * lib.wire_cap * 8.0);
        // Net ny: load = wire + port load.
        let load_ny = lib.wire_cap * 8.0 + PORT_LOAD;
        let arr_y = arr_na + wd + inv.intrinsic_delay + inv.drive_res * load_ny;
        let expect = 1000.0 - arr_y;
        assert!((r.wns - expect).abs() < 1e-9, "wns {} vs {}", r.wns, expect);
    }

    #[test]
    fn flop_to_flop_path_has_d_endpoint() {
        // ff0 -Q-> inv -> ff1.D, with the clock net excluded from timing.
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let dff = lib.find("DFF_X1").unwrap();
        let mut b = NetlistBuilder::new("ff", lib);
        let ck = b.add_port("ck", PortDir::Input);
        let f0 = b.add_cell("f0", dff, HierTree::ROOT);
        let f1 = b.add_cell("f1", dff, HierTree::ROOT);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        b.add_clock_net(
            "ckn",
            Some(PinRef::Port(ck)),
            vec![
                PinRef::Cell { cell: f0, pin: 1 },
                PinRef::Cell { cell: f1, pin: 1 },
            ],
        );
        b.add_net(
            "q0",
            Some(PinRef::Cell { cell: f0, pin: 0 }),
            vec![PinRef::Cell { cell: u0, pin: 0 }],
        );
        b.add_net(
            "d1",
            Some(PinRef::Cell { cell: u0, pin: 0 }),
            vec![PinRef::Cell { cell: f1, pin: 0 }],
        );
        let n = b.finish().unwrap();
        let c = Constraints::with_period(1000.0).clock_port(ck);
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let r = sta.run(&WireModel::Estimate);
        assert_eq!(r.endpoint_count, 1);
        let paths = sta.extract_paths(&r, 10);
        assert_eq!(paths.len(), 1);
        // Path: capture flop, inverter, launch flop.
        assert_eq!(paths[0].cells, vec![f1, u0, f0]);
        assert_eq!(paths[0].nets.len(), 2);
        // Clock-to-q + inv + wire fits easily in 1 ns.
        assert!(r.wns > 0.0);
    }

    #[test]
    fn critical_paths_are_sorted_and_traceable() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(7)
            .generate_with_constraints();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let r = sta.run(&WireModel::Estimate);
        let paths = sta.extract_paths(&r, 50);
        assert!(!paths.is_empty());
        for w in paths.windows(2) {
            assert!(w[0].slack <= w[1].slack);
        }
        for p in &paths {
            assert!(!p.nets.is_empty());
            assert!(!p.cells.is_empty());
            // Path slack equals the endpoint's reported slack.
            assert!(p.slack.is_finite());
        }
    }

    #[test]
    fn routed_model_is_slower_than_placed() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(7)
            .generate_with_constraints();
        let total = n.cell_count() + n.port_count();
        let pos: Vec<(f64, f64)> = (0..total)
            .map(|i| ((i % 97) as f64 * 2.0, (i / 97) as f64 * 2.0))
            .collect();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let placed = sta.run(&WireModel::Placed(&pos));
        let routed = sta.run(&WireModel::Routed(&pos, 1.3));
        assert!(routed.wns <= placed.wns);
    }

    #[test]
    fn clock_skew_shifts_slack() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(7)
            .generate_with_constraints();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let base = sta.run(&WireModel::Estimate);
        // Uniform insertion delay leaves slacks unchanged (launch and
        // capture shift together).
        let skews = vec![100.0; n.cell_count()];
        let shifted = sta.run_with_clock(&WireModel::Estimate, Some(&skews));
        assert!((base.wns - shifted.wns).abs() < 1e-6);
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn path_count_is_bounded_by_endpoints() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(19)
            .generate_with_constraints();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let r = sta.run(&WireModel::Estimate);
        let paths = sta.extract_paths(&r, usize::MAX);
        assert_eq!(paths.len(), r.endpoint_count);
        // One worst path per endpoint: endpoints are unique.
        let mut eps: Vec<_> = paths.iter().map(|p| p.endpoint).collect();
        eps.sort_by_key(|e| match *e {
            PinRef::Cell { cell, pin } => (0u8, cell.0, pin as u32),
            PinRef::Port(p) => (1u8, p.0, 0),
        });
        eps.dedup();
        assert_eq!(eps.len(), paths.len());
    }

    #[test]
    fn critical_path_nets_have_the_worst_slack() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Jpeg)
            .scale(0.005)
            .seed(23)
            .generate_with_constraints();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let r = sta.run(&WireModel::Estimate);
        let paths = sta.extract_paths(&r, 1);
        let worst = &paths[0];
        // The head net of the worst path carries the worst net slack.
        let min_net_slack = r
            .net_slack
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .fold(f64::INFINITY, f64::min);
        let head = worst.nets[0];
        assert!(
            (r.net_slack[head.index()] - min_net_slack).abs() < 1.0,
            "worst path head slack {} vs min {}",
            r.net_slack[head.index()],
            min_net_slack
        );
    }

    #[test]
    fn net_slacks_are_consistent_with_endpoint_slacks() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(29)
            .generate_with_constraints();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let r = sta.run(&WireModel::Estimate);
        // No net can be more pessimistic than the worst endpoint.
        let min_net = r
            .net_slack
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .fold(f64::INFINITY, f64::min);
        assert!(min_net >= r.wns - 1e-6, "net {min_net} vs wns {}", r.wns);
    }
}

/// A slack histogram over endpoints: `bins` equal-width buckets between
/// the worst and best endpoint slack; returns `(bucket_edges, counts)`.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn slack_histogram(report: &TimingReport, bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(bins > 0, "at least one bin");
    if report.endpoints.is_empty() {
        return (vec![0.0; bins + 1], vec![0; bins]);
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, s) in &report.endpoints {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    let span = (hi - lo).max(1e-9);
    let edges: Vec<f64> = (0..=bins)
        .map(|k| lo + span * k as f64 / bins as f64)
        .collect();
    let mut counts = vec![0usize; bins];
    for &(_, s) in &report.endpoints {
        let k = (((s - lo) / span) * bins as f64) as usize;
        counts[k.min(bins - 1)] += 1;
    }
    (edges, counts)
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn histogram_covers_all_endpoints() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(41)
            .generate_with_constraints();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let r = sta.run(&WireModel::Estimate);
        let (edges, counts) = slack_histogram(&r, 10);
        assert_eq!(edges.len(), 11);
        assert_eq!(counts.iter().sum::<usize>(), r.endpoint_count);
        assert!(edges.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn empty_report_histogram() {
        let r = TimingReport {
            wns: 0.0,
            tns: 0.0,
            endpoint_count: 0,
            net_arrival: vec![],
            net_slack: vec![],
            endpoints: vec![],
            hold_wns: 0.0,
            hold_tns: 0.0,
            worst_pred: vec![],
        };
        let (_, counts) = slack_histogram(&r, 4);
        assert_eq!(counts, vec![0; 4]);
    }
}

#[cfg(test)]
mod hold_tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::{HierTree, Library, NetlistBuilder};

    #[test]
    fn zero_skew_design_meets_hold() {
        // With zero clock skew, min path delay (clk2q + wire) far exceeds
        // the 5 ps hold time.
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(77)
            .generate_with_constraints();
        let r = Sta::new(&n, &c)
            .expect("acyclic netlist")
            .run(&WireModel::Estimate);
        assert!(r.hold_wns > 0.0, "hold WNS {}", r.hold_wns);
        assert_eq!(r.hold_tns, 0.0);
    }

    #[test]
    fn capture_skew_creates_hold_violations() {
        // ff0 -Q-> ff1.D direct; give ff1 (the capturing flop) a huge clock
        // delay: data launched at t=0 arrives long before ff1's edge + hold.
        let lib = Library::nangate45ish();
        let dff = lib.find("DFF_X1").unwrap();
        let mut b = NetlistBuilder::new("hold", lib);
        let ck = b.add_port("ck", PortDir::Input);
        let f0 = b.add_cell("f0", dff, HierTree::ROOT);
        let f1 = b.add_cell("f1", dff, HierTree::ROOT);
        b.add_clock_net(
            "ckn",
            Some(PinRef::Port(ck)),
            vec![
                PinRef::Cell { cell: f0, pin: 1 },
                PinRef::Cell { cell: f1, pin: 1 },
            ],
        );
        b.add_net(
            "d1",
            Some(PinRef::Cell { cell: f0, pin: 0 }),
            vec![PinRef::Cell { cell: f1, pin: 0 }],
        );
        let n = b.finish().unwrap();
        let c = Constraints::with_period(10_000.0).clock_port(ck);
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let ok = sta.run_with_clock(&WireModel::Estimate, Some(&[0.0, 0.0]));
        assert!(ok.hold_wns > 0.0);
        // Capture clock 500 ps late: hold violated by roughly that much.
        let skewed = sta.run_with_clock(&WireModel::Estimate, Some(&[0.0, 500.0]));
        assert!(
            skewed.hold_wns < 0.0,
            "expected hold violation, got {}",
            skewed.hold_wns
        );
        assert!(skewed.hold_tns < 0.0);
        // Setup got easier by the same skew.
        assert!(skewed.wns > ok.wns);
    }

    #[test]
    fn min_arrival_never_exceeds_max() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Jpeg)
            .scale(0.005)
            .seed(79)
            .generate_with_constraints();
        let r = Sta::new(&n, &c)
            .expect("acyclic netlist")
            .run(&WireModel::Estimate);
        // Spot-check via the public report: hold WNS uses min arrivals, so
        // it must be at least as optimistic as setup would imply.
        assert!(r.hold_wns.is_finite());
    }
}
