//! Vectorless switching-activity propagation (`findClkedActivity`
//! equivalent).
//!
//! Each net carries a static probability `p` (chance the signal is 1) and a
//! transition density `d` (toggles per clock cycle). Primary inputs seed the
//! analysis from [`cp_netlist::Constraints`]; combinational gates propagate
//! with the exact Boolean-difference method over the masters' truth tables:
//!
//! `d_y = Σ_i P(∂f/∂x_i) · d_i`, with `P(∂f/∂x_i)` the probability the
//! output is sensitized to input `i` (spatial independence assumed, the
//! standard vectorless approximation). Flop outputs resample: `p_Q = p_D`,
//! `d_Q = 2 · p_D · (1 − p_D)` (at most one toggle per cycle).
//!
//! Sequential feedback loops are handled by fixed-point iteration.

use cp_netlist::library::CellClass;
use cp_netlist::netlist::{Netlist, PinRef};
use cp_netlist::{Constraints, NetId};

/// Per-net switching activity.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityReport {
    /// Static probability of logic 1 per net.
    pub probability: Vec<f64>,
    /// Transition density per net, toggles per clock cycle.
    pub density: Vec<f64>,
    /// Fixed-point iterations performed.
    pub iterations: usize,
}

impl ActivityReport {
    /// Switching activity `θ_e` of a net (Eq. 2 of the paper uses this).
    pub fn activity(&self, net: NetId) -> f64 {
        self.density[net.index()]
    }
}

/// Maximum fixed-point iterations over sequential feedback.
const MAX_ITERS: usize = 8;
/// Convergence tolerance on densities.
const TOL: f64 = 1e-6;
/// Combinational density cap, toggles per cycle. The Boolean-difference
/// method counts glitching, which XOR trees amplify without bound;
/// vectorless tools clip at the clock rate (two edges per cycle).
const DENSITY_CAP: f64 = 2.0;

/// Propagates vectorless activity through the design.
///
/// # Examples
///
/// ```
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
/// use cp_timing::activity::propagate_activity;
///
/// let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.01)
///     .generate_with_constraints();
/// let act = propagate_activity(&netlist, &constraints);
/// assert!(act.density.iter().all(|&d| d >= 0.0));
/// assert!(act.probability.iter().all(|&p| (0.0..=1.0).contains(&p)));
/// ```
pub fn propagate_activity(netlist: &Netlist, constraints: &Constraints) -> ActivityReport {
    let nn = netlist.net_count();
    let mut prob = vec![0.5f64; nn];
    let mut dens = vec![0.0f64; nn];

    // Seed sources.
    for (i, net) in netlist.nets().iter().enumerate() {
        match net.driver {
            Some(PinRef::Port(_)) => {
                prob[i] = constraints.input_probability;
                dens[i] = if net.is_clock {
                    2.0 // the clock toggles twice per cycle
                } else {
                    constraints.input_activity
                };
            }
            Some(PinRef::Cell { cell, .. })
                if netlist.master(cell).class == CellClass::Sequential =>
            {
                prob[i] = 0.5;
                dens[i] = 0.5; // refined by iteration
            }
            _ => {}
        }
    }

    let mut iterations = 0;
    for _ in 0..MAX_ITERS {
        iterations += 1;
        let mut delta = 0.0f64;
        // One forward sweep in net-id order repeated until fixpoint; the
        // sweep count is bounded by logic depth, which MAX_ITERS covers for
        // the generated pipelines because ids are roughly topological.
        for _ in 0..2 {
            for (i, net) in netlist.nets().iter().enumerate() {
                let Some(PinRef::Cell { cell, .. }) = net.driver else {
                    continue;
                };
                let master = netlist.master(cell);
                match master.class {
                    CellClass::Sequential => {
                        // Q resamples D once per cycle.
                        let d_net = netlist.input_net(cell, 0);
                        let p_d = d_net.map_or(0.5, |n| prob[n.index()]);
                        let new_p = p_d;
                        let new_d = 2.0 * p_d * (1.0 - p_d);
                        delta = delta.max((prob[i] - new_p).abs() + (dens[i] - new_d).abs());
                        prob[i] = new_p;
                        dens[i] = new_d;
                    }
                    CellClass::Combinational | CellClass::ClockBuffer => {
                        let Some(table) = master.function.truth_table() else {
                            continue;
                        };
                        let k = master.function.input_count();
                        let mut p_in = [0.5f64; 4];
                        let mut d_in = [0.0f64; 4];
                        for (pin, net_opt) in netlist.input_nets(cell).iter().enumerate() {
                            if let Some(n) = net_opt {
                                p_in[pin] = prob[n.index()];
                                d_in[pin] = dens[n.index()];
                            }
                        }
                        let new_p = output_probability(table, k, &p_in);
                        let mut new_d = 0.0;
                        for (i_pin, &d) in d_in.iter().enumerate().take(k) {
                            new_d += boolean_difference(table, k, i_pin, &p_in) * d;
                        }
                        let new_d = new_d.min(DENSITY_CAP);
                        delta = delta.max((prob[i] - new_p).abs() + (dens[i] - new_d).abs());
                        prob[i] = new_p;
                        dens[i] = new_d;
                    }
                    CellClass::Macro => {}
                }
            }
        }
        if delta < TOL {
            break;
        }
    }
    ActivityReport {
        probability: prob,
        density: dens,
        iterations,
    }
}

/// `P(f = 1)` given independent input probabilities.
fn output_probability(table: u16, k: usize, p: &[f64; 4]) -> f64 {
    let mut total = 0.0;
    for m in 0..(1u16 << k) {
        if (table >> m) & 1 == 0 {
            continue;
        }
        let mut pm = 1.0;
        for (j, &pj) in p.iter().enumerate().take(k) {
            pm *= if (m >> j) & 1 == 1 { pj } else { 1.0 - pj };
        }
        total += pm;
    }
    total
}

/// `P(∂f/∂x_i)`: probability the output differs when input `i` flips.
fn boolean_difference(table: u16, k: usize, i: usize, p: &[f64; 4]) -> f64 {
    let mut total = 0.0;
    for m in 0..(1u16 << k) {
        // Only count minterms with x_i = 0; the pair (m, m | 1<<i) is
        // sensitized iff the outputs differ.
        if (m >> i) & 1 == 1 {
            continue;
        }
        let m1 = m | (1 << i);
        if ((table >> m) & 1) == ((table >> m1) & 1) {
            continue;
        }
        // Probability of the other inputs taking this assignment.
        let mut pm = 1.0;
        for (j, &pj) in p.iter().enumerate().take(k) {
            if j == i {
                continue;
            }
            pm *= if (m >> j) & 1 == 1 { pj } else { 1.0 - pj };
        }
        total += pm;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::library::LogicFunction;
    use cp_netlist::{HierTree, Library, NetlistBuilder, PortDir};

    #[test]
    fn and_gate_probability() {
        let table = LogicFunction::And2.truth_table().unwrap();
        let p = [0.5, 0.5, 0.0, 0.0];
        assert!((output_probability(table, 2, &p) - 0.25).abs() < 1e-12);
        // Sensitization to input 0 requires input 1 = 1.
        assert!((boolean_difference(table, 2, 0, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn xor_gate_is_always_sensitized() {
        let table = LogicFunction::Xor2.truth_table().unwrap();
        let p = [0.3, 0.8, 0.0, 0.0];
        assert!((boolean_difference(table, 2, 0, &p) - 1.0).abs() < 1e-12);
        assert!((boolean_difference(table, 2, 1, &p) - 1.0).abs() < 1e-12);
        // P(xor) = p0(1-p1) + p1(1-p0)
        let expect = 0.3 * 0.2 + 0.8 * 0.7;
        assert!((output_probability(table, 2, &p) - expect).abs() < 1e-12);
    }

    #[test]
    fn inverter_preserves_density() {
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("t", lib);
        let a = b.add_port("a", PortDir::Input);
        let y = b.add_port("y", PortDir::Output);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        let na = b.add_net(
            "na",
            Some(cp_netlist::PinRef::Port(a)),
            vec![cp_netlist::PinRef::Cell { cell: u0, pin: 0 }],
        );
        let ny = b.add_net(
            "ny",
            Some(cp_netlist::PinRef::Cell { cell: u0, pin: 0 }),
            vec![cp_netlist::PinRef::Port(y)],
        );
        let n = b.finish().unwrap();
        let c = Constraints::with_period(1000.0);
        let act = propagate_activity(&n, &c);
        assert!((act.density[ny.index()] - act.density[na.index()]).abs() < 1e-12);
        assert!((act.probability[ny.index()] - (1.0 - c.input_probability)).abs() < 1e-12);
    }

    #[test]
    fn activity_attenuates_through_and_chain() {
        // AND gates with random inputs attenuate switching activity.
        let lib = Library::nangate45ish();
        let and2 = lib.find("AND2_X1").unwrap();
        let mut b = NetlistBuilder::new("t", lib);
        let a = b.add_port("a", PortDir::Input);
        let c2 = b.add_port("b", PortDir::Input);
        let u0 = b.add_cell("u0", and2, HierTree::ROOT);
        let na = b.add_net(
            "na",
            Some(cp_netlist::PinRef::Port(a)),
            vec![cp_netlist::PinRef::Cell { cell: u0, pin: 0 }],
        );
        b.add_net(
            "nb",
            Some(cp_netlist::PinRef::Port(c2)),
            vec![cp_netlist::PinRef::Cell { cell: u0, pin: 1 }],
        );
        let ny = b.add_net(
            "ny",
            Some(cp_netlist::PinRef::Cell { cell: u0, pin: 0 }),
            vec![],
        );
        let n = b.finish().unwrap();
        let c = Constraints::with_period(1000.0);
        let act = propagate_activity(&n, &c);
        // d_y = P(b=1)·d_a + P(a=1)·d_b = p·(d_a + d_b) with p = 0.5.
        let expect = c.input_probability * 2.0 * c.input_activity;
        assert!((act.density[ny.index()] - expect).abs() < 1e-12);
        // P(y=1) = p_a · p_b.
        let p_expect = c.input_probability * c.input_probability;
        assert!((act.probability[ny.index()] - p_expect).abs() < 1e-12);
        assert!(act.density[na.index()] > 0.0);
    }

    #[test]
    fn full_design_converges_and_is_bounded() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Jpeg)
            .scale(0.005)
            .seed(3)
            .generate_with_constraints();
        let act = propagate_activity(&n, &c);
        assert!(act.iterations <= MAX_ITERS);
        for (i, (&p, &d)) in act.probability.iter().zip(&act.density).enumerate() {
            assert!((0.0..=1.0).contains(&p), "net {i} p={p}");
            assert!((0.0..=4.0).contains(&d), "net {i} d={d}");
        }
        // The clock is the most active net.
        let clock = n.nets().iter().position(|x| x.is_clock).unwrap();
        assert_eq!(act.density[clock], 2.0);
    }
}
