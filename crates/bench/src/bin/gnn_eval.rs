//! Section 4.4: V-P&R model evaluation.
//!
//! Generates the labeled dataset by perturbing clustering hyperparameters
//! (the paper's procedure), splits by cluster into train/validation/test,
//! trains the Total-Cost GNN and reports MAE and R² per split — the
//! paper's numbers are MAE 0.105/0.113/0.131 and R² 0.788/0.753/0.638.
//! Also measures the exact-V-P&R vs ML-inference wall-clock ratio (the
//! paper reports ~30× acceleration).
//!
//! Dataset size scales with `CP_GNN_CONFIGS` (default 6 perturbations).

use cp_bench::{flow_options, print_table, scale, Bench};
use cp_core::vpr::ml::{cluster_features, generate_dataset, DatasetConfig, MlShapeSelector};
use cp_core::vpr::{best_shape, extract_subnetlist};
use cp_core::ClusteringOptions;
use cp_gnn::train::TrainOptions;
use cp_gnn::GraphSample;
use cp_netlist::generator::DesignProfile;
use cp_netlist::CellId;
use std::time::Instant;

fn main() -> Result<(), cp_core::FlowError> {
    println!("# Section 4.4 — GNN model evaluation (scale {})", scale());
    let configs: usize = std::env::var("CP_GNN_CONFIGS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let base = flow_options();
    let mut data: Vec<(GraphSample, f64)> = Vec::new();
    for p in [DesignProfile::Aes, DesignProfile::Jpeg] {
        let b = Bench::generate(p);
        let d = generate_dataset(
            &b.netlist,
            &b.constraints,
            &DatasetConfig {
                configs,
                min_cells: base.vpr_min_instances / 2,
                max_clusters_per_config: 8,
                base: ClusteringOptions {
                    seed: 7 + p.table1_insts() as u64,
                    ..base.clustering
                },
                vpr: base.vpr,
                seed: 31,
            },
        )?;
        eprintln!("{}: {} samples", b.name(), d.len());
        data.extend(d);
    }
    // Split by cluster (20 consecutive samples share a cluster) to avoid
    // leakage: 70% train / 17% validation / 13% test.
    let clusters = data.len() / 20;
    let train_c = (clusters as f64 * 0.70) as usize;
    let val_c = (clusters as f64 * 0.17) as usize;
    let train_set = &data[..train_c * 20];
    let val_set = &data[train_c * 20..(train_c + val_c) * 20];
    let test_set = &data[(train_c + val_c) * 20..];
    eprintln!(
        "dataset: {} train / {} val / {} test samples",
        train_set.len(),
        val_set.len(),
        test_set.len()
    );

    let labels: Vec<f64> = data.iter().map(|(_, l)| *l).collect();
    let mean = labels.iter().sum::<f64>() / labels.len() as f64;
    let std =
        (labels.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / labels.len() as f64).sqrt();
    let (lo, hi) = labels
        .iter()
        .fold((f64::MAX, f64::MIN), |acc, &l| (acc.0.min(l), acc.1.max(l)));
    println!(
        "\nLabel range [{lo:.3}, {hi:.3}], mean {mean:.3}, std {std:.3} (paper: [0.564, 2.96], mean 1.703, std 0.727)"
    );

    let epochs: usize = std::env::var("CP_GNN_EPOCHS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let (selector, stats) = MlShapeSelector::train(
        train_set,
        &TrainOptions {
            epochs,
            ..Default::default()
        },
        13,
    );
    let (val_mae, val_r2) = selector.evaluate(val_set);
    let (test_mae, test_r2) = selector.evaluate(test_set);
    print_table(
        "Model accuracy (paper: MAE 0.105/0.113/0.131, R2 0.788/0.753/0.638)",
        &["Split", "MAE", "R2"],
        &[
            vec![
                "train".into(),
                format!("{:.3}", stats.train_mae),
                format!("{:.3}", stats.train_r2),
            ],
            vec![
                "validation".into(),
                format!("{val_mae:.3}"),
                format!("{val_r2:.3}"),
            ],
            vec![
                "test".into(),
                format!("{test_mae:.3}"),
                format!("{test_r2:.3}"),
            ],
        ],
    );

    // Acceleration: exact 20-shape V-P&R vs ML inference on one cluster.
    let b = Bench::generate(DesignProfile::Ariane);
    let clustering =
        cp_core::cluster::ppa_aware_clustering(&b.netlist, &b.constraints, &base.clustering)?;
    let members = cp_core::flow::cluster_members(&clustering.assignment, clustering.cluster_count);
    let cluster: Vec<CellId> = members
        .into_iter()
        .filter(|m| m.len() >= base.vpr_min_instances)
        .max_by_key(|m| m.len())
        .expect("a shapeable cluster exists");
    let sub = extract_subnetlist(&b.netlist, &cluster)?;
    let t0 = Instant::now();
    let (exact_shape, _) = best_shape(&sub, &base.vpr)?;
    let exact_time = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let feats = cluster_features(&sub);
    let ml_shape = {
        let cands = cp_netlist::ClusterShape::candidates();
        let samples: Vec<GraphSample> = cands.iter().map(|&s| feats.with_shape(s)).collect();
        let pred = selector.predict_costs(&samples);
        let i = pred
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("candidates");
        cands[i]
    };
    let ml_time = t1.elapsed().as_secs_f64();
    println!(
        "\nAcceleration on a {}-cell cluster: exact V-P&R {exact_time:.3}s vs ML {ml_time:.3}s = {:.1}x (paper: ~30x)",
        sub.cell_count(),
        exact_time / ml_time.max(1e-9),
    );
    println!(
        "exact shape: AR {:.2} util {:.2}; ML shape: AR {:.2} util {:.2}",
        exact_shape.aspect_ratio,
        exact_shape.utilization,
        ml_shape.aspect_ratio,
        ml_shape.utilization
    );
    Ok(())
}
