//! Flow observability smoke test and overhead bench (the `cp-trace`
//! tentpole's acceptance artifact).
//!
//! Runs the full clustered flow (surrogate-trained `ShapeMode::Hybrid`)
//! at the three trace levels and writes three artifacts:
//!
//! - `TRACE_report.json` — the structured trace of one fully-traced run
//!   (spans, instants, convergence series, metrics), validated against
//!   `schemas/trace_report.schema.json` with the built-in validator;
//! - `TRACE_chrome.json` — Chrome `trace_event` JSON merging the
//!   surrogate-training trace and the flow trace into one timeline; load
//!   it in `chrome://tracing` or <https://ui.perfetto.dev>;
//! - `BENCH_trace.json` — tracing overhead: min-of-reps flow wall-clock
//!   at `Off`, `Spans`, `Spans` with an attached-but-idle `TraceSink`
//!   channel, `Spans` with field-frame capture on, and `Full`, asserting
//!   bitwise-identical HPWL across all five configurations and
//!   (non-smoke) spans-only AND sink-attached overhead below 2% plus
//!   field-capture overhead below 5%;
//! - `FIELDS_frames.json` — the field frames (density overflow,
//!   displacement, eDensity charge, router congestion) captured by the
//!   spans+fields run, validated against
//!   `schemas/field_frames.schema.json`.
//!
//! It also checks the trace's internal consistency: the per-stage span
//! durations must sum to within 5% of the root span's wall-clock, and
//! appends the fully-traced run to the run ledger (`runs/ledger.jsonl`,
//! source `bench`) so bench runs seed the cross-run trend corpus.
//!
//! Knobs: `CP_SCALE` (design size), `CP_TRACE_REPS` (timing repetitions,
//! minimum kept; default 3), `CP_TRACE_SMOKE` (reduced effort + skipped
//! timing assertions for CI). `CP_TRACE` itself is not consulted — this
//! bin drives the level explicitly through all three settings.

use cp_bench::{flow_options, scale, Bench};
use cp_core::flow::{run_flow, FlowReport, ShapeMode};
use cp_core::vpr::ml::{generate_dataset, DatasetConfig, MlShapeSelector};
use cp_core::ClusteringOptions;
use cp_core::FlowError;
use cp_gnn::train::TrainOptions;
use cp_netlist::generator::DesignProfile;
use cp_trace::json::{parse, validate};
use cp_trace::{chrome_trace, Level, TraceReport};
use std::time::Instant;

/// Repo-root-relative path, resolved from this crate's manifest so the
/// bin works from any working directory.
fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn main() -> Result<(), FlowError> {
    let smoke = std::env::var("CP_TRACE_SMOKE").is_ok();
    let reps: usize = std::env::var("CP_TRACE_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let b = Bench::generate(DesignProfile::Aes);
    // Lower the shaping threshold below the scaled cluster sizes so the
    // V-P&R stage — the most deeply instrumented one — actually runs.
    let mut opts = flow_options();
    opts.vpr_min_instances = 60;
    println!(
        "# Flow trace, {} at scale {} ({} cells, {} threads, {} reps)",
        b.name(),
        scale(),
        b.netlist.cell_count(),
        cp_parallel::current_threads(),
        reps
    );

    // Surrogate training under its own root, fully traced: the GNN loss
    // series and the gnn.train span land in a separate report merged into
    // the Chrome timeline below. Training is offline in the paper's flow,
    // so it is never part of the overhead measurement.
    cp_trace::set_level(Level::Full);
    let train_root = cp_trace::span("training");
    let dataset = generate_dataset(
        &b.netlist,
        &b.constraints,
        &DatasetConfig {
            configs: 1,
            min_cells: opts.vpr_min_instances,
            max_clusters_per_config: if smoke { 2 } else { 4 },
            base: ClusteringOptions {
                seed: 41,
                ..opts.clustering
            },
            vpr: opts.vpr,
            seed: 31,
        },
    )?;
    let (selector, _) = MlShapeSelector::train(
        &dataset,
        &TrainOptions {
            epochs: if smoke { 3 } else { 12 },
            ..Default::default()
        },
        13,
    );
    let training_trace = cp_trace::take_report(train_root).expect("training trace captured");
    cp_trace::set_level(Level::Off);
    eprintln!(
        "training: {} samples, {:.2}s traced",
        dataset.len(),
        training_trace.duration_seconds()
    );

    let run_opts = opts.shape_mode(ShapeMode::Hybrid {
        selector: Some(Box::new(selector)),
        top_k: 4,
    });

    // Overhead: the identical flow at Off / Spans / Spans+idle-sink /
    // Spans+fields / Full, min wall-clock of `reps` runs per
    // configuration. The flow is deterministic and neither tracing nor a
    // subscriber may feed back into it, so every run's HPWL must agree
    // bitwise. The sink run attaches a generously-sized channel that
    // nobody drains mid-flow — the attached-but-idle cost the streaming
    // layer promises to keep in the same band as spans-only tracing. The
    // fields run captures per-bin grid snapshots at every record site —
    // a heavier artifact, granted a 5% band instead of 2%.
    let levels: [(&str, Level, bool, bool); 5] = [
        ("off", Level::Off, false, false),
        ("spans", Level::Spans, false, false),
        ("spans+sink", Level::Spans, true, false),
        ("spans+fields", Level::Spans, false, true),
        ("full", Level::Full, false, false),
    ];
    let mut secs = [f64::INFINITY; 5];
    let mut baseline: Option<FlowReport> = None;
    let mut traced: Option<FlowReport> = None;
    let (mut sink_events, mut sink_dropped) = (0usize, 0u64);
    let mut field_capture: Option<cp_trace::FrameCapture> = None;
    for (li, &(name, level, sink, fields)) in levels.iter().enumerate() {
        for _ in 0..reps {
            if sink {
                cp_trace::attach_sink(1 << 20);
            }
            if fields {
                // `enable` clears the frame store, so each rep captures
                // the same sequence from scratch.
                cp_trace::fields::enable(cp_trace::fields::DEFAULT_FRAME_BUDGET);
            }
            cp_trace::set_level(level);
            let t0 = Instant::now();
            let report = run_flow(&b.netlist, &b.constraints, &run_opts)?;
            secs[li] = secs[li].min(t0.elapsed().as_secs_f64());
            cp_trace::set_level(Level::Off);
            if sink {
                let batch = cp_trace::drain_sink();
                sink_events = batch.events.len();
                sink_dropped = batch.dropped;
                cp_trace::detach_sink();
            }
            if fields {
                field_capture = Some(cp_trace::fields::take());
                cp_trace::fields::disable();
            }
            match &baseline {
                Some(base) => assert!(
                    base.hpwl.to_bits() == report.hpwl.to_bits() && base.ppa == report.ppa,
                    "{name}: tracing changed the flow's results"
                ),
                None => baseline = Some(report.clone()),
            }
            assert_eq!(
                report.trace.is_some(),
                level != Level::Off,
                "{name}: trace presence must follow the level"
            );
            if level == Level::Full {
                traced = Some(report);
            }
        }
        eprintln!("{name}: {:.3}s (min of {reps})", secs[li]);
    }
    let traced = traced.expect("full-level run happened");
    let trace = traced.trace.as_ref().expect("full-level run has a trace");
    let field_capture = field_capture.expect("fields run happened");
    let spans_overhead_pct = (secs[1] - secs[0]) / secs[0] * 100.0;
    let sink_overhead_pct = (secs[2] - secs[0]) / secs[0] * 100.0;
    let fields_overhead_pct = (secs[3] - secs[0]) / secs[0] * 100.0;
    let full_overhead_pct = (secs[4] - secs[0]) / secs[0] * 100.0;

    // Internal consistency: the stage spans partition the root span up to
    // inter-stage glue (validation, seed building), so their durations
    // must sum to within 5% of the traced wall-clock.
    let root_s = trace.duration_seconds();
    let stage_rows = trace.stage_seconds();
    let stage_sum: f64 = stage_rows.iter().map(|&(_, s)| s).sum();
    let stage_ratio = stage_sum / root_s.max(1e-12);
    println!("\n## Trace summary\n");
    for &(name, s) in &stage_rows {
        println!("- {name}: {s:.3}s");
    }
    println!("- other: {:.3}s (inter-stage glue)", root_s - stage_sum);
    println!(
        "- stages sum to {stage_sum:.3}s of {root_s:.3}s traced ({:.1}%)",
        stage_ratio * 100.0
    );
    let cluster_spans = trace.spans_named("vpr.cluster").count();
    let candidate_spans = trace.spans_named("vpr.candidate").count();
    let series_rows = trace.series.len();
    println!(
        "- {} spans total, {cluster_spans} vpr.cluster, {candidate_spans} vpr.candidate, \
         {} instants, {series_rows} series rows, {} metrics",
        trace.spans.len(),
        trace.instants.len(),
        trace.metrics.len()
    );
    println!(
        "- overhead vs off: spans {spans_overhead_pct:+.2}%, spans+sink {sink_overhead_pct:+.2}%, \
         spans+fields {fields_overhead_pct:+.2}%, full {full_overhead_pct:+.2}% (min of {reps})"
    );
    println!(
        "- idle sink captured {sink_events} events, {sink_dropped} dropped \
         (capacity 2^20, never pumped mid-flow)"
    );
    println!(
        "- field capture: {} frame(s), {} dropped (budget {})",
        field_capture.frames.len(),
        field_capture.dropped_frames,
        field_capture.budget
    );
    assert!(
        (0.95..=1.05).contains(&stage_ratio),
        "stage spans must sum to within 5% of the root span ({:.1}%)",
        stage_ratio * 100.0
    );
    assert!(cluster_spans > 0, "per-cluster V-P&R spans must be present");
    assert!(
        candidate_spans > 0,
        "per-candidate V-P&R spans must be present"
    );
    assert!(
        trace.series.iter().any(|r| r.name == "place.outer"),
        "placer convergence series must be present at Full"
    );
    assert!(
        sink_events > 0,
        "the attached sink must capture span events at Level::Spans"
    );
    assert!(
        !field_capture.frames.is_empty(),
        "field capture must record frames when enabled"
    );
    if !smoke {
        assert!(
            spans_overhead_pct < 2.0,
            "spans-only tracing must stay under 2% overhead, measured {spans_overhead_pct:.2}%"
        );
        assert!(
            sink_overhead_pct < 2.0,
            "an attached-but-idle sink must stay under 2% overhead, \
             measured {sink_overhead_pct:.2}%"
        );
        assert!(
            fields_overhead_pct < 5.0,
            "field-frame capture must stay under 5% overhead, \
             measured {fields_overhead_pct:.2}%"
        );
    }

    // Structured export, checked against the schema the repo ships.
    let structured = trace.to_json();
    let doc = parse(&structured).expect("structured trace parses");
    let schema_src = std::fs::read_to_string(repo_path("schemas/trace_report.schema.json"))
        .expect("read schemas/trace_report.schema.json");
    let schema = parse(&schema_src).expect("schema parses");
    let violations = validate(&doc, &schema);
    assert!(
        violations.is_empty(),
        "trace report violates its schema: {violations:?}"
    );
    std::fs::write("TRACE_report.json", &structured).expect("write TRACE_report.json");

    // Field frames, checked against their own schema.
    let frames_json = cp_trace::fields::to_json(&field_capture);
    let frames_doc = parse(&frames_json).expect("frames artifact parses");
    let frames_schema = parse(cp_trace::fields::SCHEMA_JSON).expect("field_frames schema parses");
    let frame_violations = validate(&frames_doc, &frames_schema);
    assert!(
        frame_violations.is_empty(),
        "field frames violate their schema: {frame_violations:?}"
    );
    std::fs::write("FIELDS_frames.json", &frames_json).expect("write FIELDS_frames.json");

    // One merged Chrome timeline: training next to the flow run.
    let reports: [&TraceReport; 2] = [&training_trace, trace];
    std::fs::write("TRACE_chrome.json", chrome_trace(&reports)).expect("write TRACE_chrome.json");

    let bench_json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"design\": \"{}\",\n  \"scale\": {},\n  \
         \"cells\": {},\n  \"threads\": {},\n  \"reps\": {},\n  \"off_s\": {:.6},\n  \
         \"spans_s\": {:.6},\n  \"sink_s\": {:.6},\n  \"fields_s\": {:.6},\n  \"full_s\": {:.6},\n  \
         \"spans_overhead_pct\": {:.4},\n  \"sink_overhead_pct\": {:.4},\n  \
         \"fields_overhead_pct\": {:.4},\n  \
         \"full_overhead_pct\": {:.4},\n  \"sink_events\": {},\n  \"sink_dropped\": {},\n  \
         \"field_frames\": {},\n  \
         \"stage_sum_over_root\": {:.4},\n  \
         \"spans_recorded\": {},\n  \"vpr_cluster_spans\": {},\n  \"vpr_candidate_spans\": {},\n  \
         \"series_rows\": {},\n  \"metrics\": {}\n}}\n",
        b.name(),
        scale(),
        b.netlist.cell_count(),
        cp_parallel::current_threads(),
        reps,
        secs[0],
        secs[1],
        secs[2],
        secs[3],
        secs[4],
        spans_overhead_pct,
        sink_overhead_pct,
        fields_overhead_pct,
        full_overhead_pct,
        sink_events,
        sink_dropped,
        field_capture.frames.len(),
        stage_ratio,
        trace.spans.len(),
        cluster_spans,
        candidate_spans,
        series_rows,
        trace.metrics.len(),
    );
    std::fs::write("BENCH_trace.json", &bench_json).expect("write BENCH_trace.json");

    // Seed the cross-run trend corpus: the fully-traced run becomes a
    // ledger entry under the same checkpoint fingerprint a resilient run
    // of this design/options pair would get, so bench runs and flow runs
    // trend together instead of being discarded after the report lands.
    let fingerprint = cp_core::checkpoint::fingerprint(&b.netlist, &run_opts);
    let entry = cp_trace::LedgerEntry::new(fingerprint, b.name(), "bench")
        .with_threads(u32::try_from(cp_parallel::current_threads()).unwrap_or(u32::MAX))
        .with_options(&format!("flowtrace scale={} hybrid", scale()))
        .capture_trace(trace);
    let ledger_path = std::path::Path::new("runs/ledger.jsonl");
    cp_trace::ledger::append(ledger_path, &entry).expect("append run-ledger entry");
    println!(
        "appended ledger entry {:016x} ({} qor gauges) -> {}",
        entry.fingerprint,
        entry.qor.len(),
        ledger_path.display()
    );
    println!("\nwrote TRACE_report.json, TRACE_chrome.json, FIELDS_frames.json, BENCH_trace.json");
    Ok(())
}
