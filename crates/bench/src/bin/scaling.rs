//! Thread-scaling of the clustered flow (the tentpole's acceptance
//! artifact): runs the full V-P&R-shaped flow at 1/2/4/8 threads via
//! `cp_parallel::with_threads` and writes `BENCH_parallel.json` with the
//! per-stage wall-clock each run's `FlowReport` recorded.
//!
//! Speedups are only meaningful up to the detected core count, which the
//! report includes; on a single-core host every thread count serializes
//! and the ratios hover around 1.0.

use cp_bench::{flow_options, print_table, scale, Bench};
use cp_core::flow::{run_flow, FlowReport, ShapeMode};
use cp_netlist::generator::DesignProfile;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Run {
    threads: usize,
    total: f64,
    report: FlowReport,
}

fn json_stages(report: &FlowReport) -> String {
    report
        .timings
        .stages
        .iter()
        .map(|(name, s)| format!("\"{name}\": {s:.6}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let b = Bench::generate(DesignProfile::Aes);
    // Lower the shaping threshold below the scaled cluster sizes so the
    // 20-candidate V-P&R sweep — a main parallel section — actually runs.
    let mut opts = flow_options().shape_mode(ShapeMode::Vpr);
    opts.vpr_min_instances = 60;
    let cores = cp_parallel::detected_cores();
    println!(
        "# Thread scaling, {} at scale {} ({} cells, {} detected cores)",
        b.name(),
        scale(),
        b.netlist.cell_count(),
        cores
    );

    let mut runs = Vec::new();
    for &t in &THREADS {
        let t0 = Instant::now();
        let report = cp_parallel::with_threads(t, || {
            run_flow(&b.netlist, &b.constraints, &opts).expect("flow runs")
        });
        let total = t0.elapsed().as_secs_f64();
        eprintln!("{t} thread(s): {total:.2}s");
        runs.push(Run {
            threads: t,
            total,
            report,
        });
    }

    let base = &runs[0];
    assert!(
        runs.iter()
            .all(|r| r.report.hpwl.to_bits() == base.report.hpwl.to_bits()
                && r.report.ppa == base.report.ppa),
        "thread counts disagree on flow metrics"
    );

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.2}", r.total),
                format!("{:.2}", base.total / r.total),
                format!("{:.2}", r.report.timings.total()),
            ]
        })
        .collect();
    print_table(
        "Flow wall-clock by thread count (identical metrics asserted)",
        &["Threads", "Total s", "Speedup vs 1T", "Staged s"],
        &rows,
    );

    let runs_json = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"total_s\": {:.6}, \"hpwl\": {:.3}, \"stages_s\": {{{}}}}}",
                r.threads,
                r.total,
                r.report.hpwl,
                json_stages(&r.report)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let speedups = runs
        .iter()
        .map(|r| format!("\"{}\": {:.3}", r.threads, base.total / r.total))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"design\": \"{}\",\n  \"scale\": {},\n  \
         \"cells\": {},\n  \"detected_cores\": {},\n  \"metrics_identical\": true,\n  \
         \"runs\": [\n{}\n  ],\n  \"speedup_vs_1t\": {{{}}}\n}}\n",
        b.name(),
        scale(),
        b.netlist.cell_count(),
        cores,
        runs_json,
        speedups
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}
