//! Large-scale scaling bench (the tentpole's acceptance artifact): runs
//! the full clustered flow at a ladder of design sizes — from the 1/32
//! harness scale up to the paper's full-size BlackParrot (~769k cells) —
//! at every thread count the host supports, and writes
//! `BENCH_parallel.json` with per-scale wall-clock, per-stage timings and
//! the top trace self-time spans (the hot spots) per scale.
//!
//! Honesty rules:
//!
//! - Thread counts above `detected_cores` serialize on the pool, so they
//!   are not run and no speedup is claimed for them.
//! - On a single-core host *no* parallel speedup is measurable;
//!   `speedup_vs_1t` is `null`, a `note` says why, and the bench prints
//!   a warning instead of a ~1.0 "speedup" table.
//! - Metrics must be bitwise-identical across thread counts (asserted);
//!   every run is traced at the same level so timings are comparable.
//!
//! ```text
//! scaling [--max-cells N] [--backend b2b|edensity]
//! ```
//!
//! `--max-cells` truncates the ladder (CI smoke runs the ≥50k-cell prefix
//! without paying for the ~769k-cell tier). `--backend` selects the
//! spreading backend for the whole sweep; whenever the ladder reaches the
//! ≥50k-cell tier, an extra backend A/B section (wall clock + final HPWL,
//! b2b vs edensity at the same options) is appended to the artifact.

use cp_bench::{print_table, Bench};
use cp_core::flow::{run_flow, FlowOptions, FlowReport};
use cp_netlist::generator::DesignProfile;
use cp_place::PlacerBackendKind;
use cp_trace::{Analysis, Level};
use std::time::Instant;

const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];
/// Hot spans reported per scale.
const TOP_SPANS: usize = 8;

/// One rung of the size ladder.
struct ScalePoint {
    profile: DesignProfile,
    scale: f64,
}

/// The default ladder: ~500 cells to ~769k cells (BlackParrot at the
/// paper's full instance count).
fn ladder() -> Vec<ScalePoint> {
    vec![
        ScalePoint {
            profile: DesignProfile::Aes,
            scale: 1.0 / 32.0,
        },
        ScalePoint {
            profile: DesignProfile::Aes,
            scale: 1.0,
        },
        ScalePoint {
            profile: DesignProfile::Jpeg,
            scale: 1.0,
        },
        ScalePoint {
            profile: DesignProfile::Ariane,
            scale: 1.0,
        },
        ScalePoint {
            profile: DesignProfile::BlackParrot,
            scale: 1.0,
        },
    ]
}

/// Identical reduced-effort options at every scale, so the sweep compares
/// sizes, not configurations. `fast()` keeps the ~769k-cell tier in
/// minutes; the clustering stage pre-coarsens above its threshold.
fn sweep_options() -> FlowOptions {
    FlowOptions::fast()
}

struct Run {
    threads: usize,
    total_s: f64,
    report: FlowReport,
}

struct ScaleResult {
    name: &'static str,
    scale: f64,
    cells: usize,
    runs: Vec<Run>,
    /// `(name, self_s, share)` of the top self-time spans, 1-thread run.
    hot: Vec<(String, f64, f64)>,
}

fn json_stages(report: &FlowReport) -> String {
    report
        .timings
        .stages
        .iter()
        .map(|(name, s)| format!("\"{name}\": {s:.6}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Top self-time spans of a traced run as `(name, self_s, share)`.
fn hot_spans(a: &Analysis) -> Vec<(String, f64, f64)> {
    let rows = a.self_time_by_name();
    let total: f64 = rows.iter().map(|r| r.self_s.max(0.0)).sum();
    let total = total.max(1e-12);
    rows.into_iter()
        .take(TOP_SPANS)
        .map(|r| (r.name, r.self_s, r.self_s.max(0.0) / total))
        .collect()
}

fn run_point(point: &ScalePoint, threads: &[usize], opts: &FlowOptions) -> ScaleResult {
    let b = Bench::generate_at(point.profile, point.scale);
    let cells = b.netlist.cell_count();
    eprintln!("## {} @ scale {} — {} cells", b.name(), point.scale, cells);
    let mut runs = Vec::new();
    let mut hot = Vec::new();
    for &t in threads {
        cp_trace::set_level(Level::Spans);
        let t0 = Instant::now();
        let report = cp_parallel::with_threads(t, || {
            run_flow(&b.netlist, &b.constraints, opts).expect("flow runs")
        });
        let total_s = t0.elapsed().as_secs_f64();
        cp_trace::set_level(Level::Off);
        cp_trace::clear();
        eprintln!("  {t} thread(s): {total_s:.2}s, hpwl {:.0}", report.hpwl);
        if t == 1 {
            if let Some(trace) = report.trace.as_ref() {
                hot = hot_spans(&Analysis::from_report(trace).expect("trace analyzes"));
            }
        }
        runs.push(Run {
            threads: t,
            total_s,
            report,
        });
    }
    let base = &runs[0];
    assert!(
        runs.iter()
            .all(|r| r.report.hpwl.to_bits() == base.report.hpwl.to_bits()
                && r.report.ppa == base.report.ppa),
        "thread counts disagree on flow metrics at {} cells",
        cells
    );
    ScaleResult {
        name: b.name(),
        scale: point.scale,
        cells,
        runs,
        hot,
    }
}

fn scale_json(r: &ScaleResult, speedups_meaningful: bool) -> String {
    let runs_json = r
        .runs
        .iter()
        .map(|run| {
            format!(
                "        {{\"threads\": {}, \"total_s\": {:.6}, \"hpwl\": {:.3}, \"stages_s\": {{{}}}}}",
                run.threads,
                run.total_s,
                run.report.hpwl,
                json_stages(&run.report)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let speedup = if speedups_meaningful {
        let base = &r.runs[0];
        let entries = r
            .runs
            .iter()
            .map(|run| format!("\"{}\": {:.3}", run.threads, base.total_s / run.total_s))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{entries}}}")
    } else {
        "null".to_string()
    };
    let hot_json = r
        .hot
        .iter()
        .map(|(name, self_s, share)| {
            format!(
                "        {{\"name\": \"{}\", \"self_s\": {:.6}, \"share\": {:.4}}}",
                cp_trace::json::escape(name),
                self_s,
                share
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!
        (
        "    {{\n      \"design\": \"{}\",\n      \"scale\": {},\n      \"cells\": {},\n      \
         \"runs\": [\n{}\n      ],\n      \"speedup_vs_1t\": {},\n      \"hot_spans\": [\n{}\n      ]\n    }}",
        r.name, r.scale, r.cells, runs_json, speedup, hot_json
    )
}

/// One backend leg of the A/B comparison.
struct AbRun {
    backend: PlacerBackendKind,
    wall_s: f64,
    hpwl: f64,
}

/// Runs the full flow once per backend on the same design with otherwise
/// identical options: the honest apples-to-apples wall + QoR row.
fn backend_ab(
    profile: DesignProfile,
    scale: f64,
    threads: usize,
    opts: &FlowOptions,
) -> (String, usize, Vec<AbRun>) {
    let b = Bench::generate_at(profile, scale);
    let cells = b.netlist.cell_count();
    eprintln!(
        "## backend A/B: {} @ scale {scale} — {cells} cells, {threads} thread(s)",
        b.name()
    );
    let runs = [PlacerBackendKind::B2b, PlacerBackendKind::EDensity]
        .into_iter()
        .map(|backend| {
            let mut o = opts.clone();
            o.placer.backend = backend;
            let t0 = Instant::now();
            let report = cp_parallel::with_threads(threads, || {
                run_flow(&b.netlist, &b.constraints, &o).expect("flow runs")
            });
            let wall_s = t0.elapsed().as_secs_f64();
            eprintln!(
                "  {}: {wall_s:.2}s, hpwl {:.0}",
                backend.name(),
                report.hpwl
            );
            AbRun {
                backend,
                wall_s,
                hpwl: report.hpwl,
            }
        })
        .collect();
    (b.name().to_string(), cells, runs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_cells = usize::MAX;
    let mut backend = PlacerBackendKind::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-cells" => {
                let v = args.get(i + 1).expect("--max-cells needs a value");
                max_cells = v.parse().expect("--max-cells must be an integer");
                i += 2;
            }
            "--backend" => {
                let v = args.get(i + 1).expect("--backend needs a value");
                backend = PlacerBackendKind::parse(v)
                    .unwrap_or_else(|| panic!("unknown backend `{v}` (b2b|edensity)"));
                i += 2;
            }
            other => panic!(
                "unknown option `{other}` (usage: scaling [--max-cells N] [--backend b2b|edensity])"
            ),
        }
    }

    let cores = cp_parallel::detected_cores();
    let threads: Vec<usize> = THREAD_LADDER
        .iter()
        .copied()
        .filter(|&t| t == 1 || t <= cores)
        .collect();
    let speedups_meaningful = threads.len() > 1;
    println!(
        "# Scale sweep ({} detected cores; thread counts {:?})",
        cores, threads
    );
    if !speedups_meaningful {
        eprintln!(
            "WARNING: host exposes {cores} core(s); thread counts above it serialize on the \
             pool, so no parallel speedup is measurable here. BENCH_parallel.json will carry \
             \"speedup_vs_1t\": null — rerun on a multi-core host for real speedup curves."
        );
    }

    let mut opts = sweep_options();
    opts.placer.backend = backend;
    println!("# Spreading backend: {}", backend.name());
    let results: Vec<ScaleResult> = ladder()
        .iter()
        .filter(|p| {
            let est = (p.profile.table1_insts() as f64 * p.scale) as usize;
            est <= max_cells
        })
        .map(|p| run_point(p, &threads, &opts))
        .collect();
    assert!(!results.is_empty(), "--max-cells excluded every scale");

    let rows: Vec<Vec<String>> = results
        .iter()
        .flat_map(|r| {
            r.runs.iter().map(|run| {
                vec![
                    r.name.to_string(),
                    r.cells.to_string(),
                    run.threads.to_string(),
                    format!("{:.2}", run.total_s),
                    if speedups_meaningful {
                        format!("{:.2}", r.runs[0].total_s / run.total_s)
                    } else {
                        "n/a (1 core)".to_string()
                    },
                    r.hot.first().map_or(String::new(), |(n, _, s)| {
                        format!("{n} ({:.0}%)", s * 100.0)
                    }),
                ]
            })
        })
        .collect();
    print_table(
        "Flow wall-clock by design size and thread count",
        &[
            "Design",
            "Cells",
            "Threads",
            "Total s",
            "Speedup vs 1T",
            "Hottest span",
        ],
        &rows,
    );

    // Backend A/B at the first ≥50k-cell rung the ladder reached (Jpeg at
    // full scale); skipped — and recorded as null — when `--max-cells`
    // cut the ladder below it.
    const AB_PROFILE: DesignProfile = DesignProfile::Jpeg;
    let ab = ((AB_PROFILE.table1_insts() as f64) as usize <= max_cells)
        .then(|| backend_ab(AB_PROFILE, 1.0, *threads.last().unwrap_or(&1), &opts));
    let ab_json = match &ab {
        None => "null".to_string(),
        Some((name, cells, runs)) => {
            let rows: Vec<Vec<String>> = runs
                .iter()
                .map(|r| {
                    vec![
                        r.backend.name().to_string(),
                        format!("{:.2}", r.wall_s),
                        format!("{:.0}", r.hpwl),
                    ]
                })
                .collect();
            print_table(
                &format!("Backend A/B ({name}, {cells} cells)"),
                &["Backend", "Wall s", "Final HPWL"],
                &rows,
            );
            let runs_json = runs
                .iter()
                .map(|r| {
                    format!(
                        "      {{\"backend\": \"{}\", \"wall_s\": {:.6}, \"hpwl\": {:.3}}}",
                        r.backend.name(),
                        r.wall_s,
                        r.hpwl
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "{{\n    \"design\": \"{name}\",\n    \"cells\": {cells},\n    \"runs\": [\n{runs_json}\n    ]\n  }}"
            )
        }
    };

    let scales_json = results
        .iter()
        .map(|r| scale_json(r, speedups_meaningful))
        .collect::<Vec<_>>()
        .join(",\n");
    let note = if speedups_meaningful {
        String::new()
    } else {
        format!(
            "\n  \"note\": \"host exposes {cores} core(s); thread counts above it serialize, \
             so per-thread speedups are not measurable and speedup_vs_1t is null\","
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"parallel_scaling\",\n  \"detected_cores\": {},\n  \
         \"thread_counts\": {:?},\n  \"trace_level\": \"spans\",\n  \
         \"backend\": \"{}\",\n  \"metrics_identical\": true,{}\n  \
         \"backend_ab\": {},\n  \"scales\": [\n{}\n  ]\n}}\n",
        cores,
        threads,
        backend.name(),
        note,
        ab_json,
        scales_json
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!(
        "\nwrote BENCH_parallel.json ({} scale points)",
        results.len()
    );
}
