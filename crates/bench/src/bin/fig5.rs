//! Figure 5: hyperparameter validation.
//!
//! Sweeps multipliers 1–6 on each of α, β, γ and µ (holding the others at
//! their defaults), runs the OpenROAD-like flow on aes/jpeg/ariane, and
//! reports the post-place HPWL normalized to the default hyperparameters —
//! the paper's "score" (arithmetic mean over designs, footnote 7).

use cp_bench::{flow_options, print_table, scale, small_profiles, Bench};
use cp_core::flow::{run_flow, Tool};
use cp_core::ClusteringOptions;

fn main() -> Result<(), cp_core::FlowError> {
    println!("# Figure 5 — hyperparameter validation (scale {})", scale());
    let base = flow_options().tool(Tool::OpenRoadLike);
    let benches: Vec<Bench> = small_profiles().into_iter().map(Bench::generate).collect();

    // HPWL at the default hyperparameters, per design.
    let mut baseline = Vec::with_capacity(benches.len());
    for b in &benches {
        baseline.push(run_flow(&b.netlist, &b.constraints, &base)?.hpwl);
    }

    let mut rows = Vec::new();
    for param in ["alpha", "beta", "gamma", "mu"] {
        for mult in 1..=6u32 {
            let m = mult as f64;
            let c = base.clustering;
            let clustering = match param {
                "alpha" => ClusteringOptions {
                    alpha: c.alpha * m,
                    ..c
                },
                "beta" => ClusteringOptions {
                    beta: c.beta * m,
                    ..c
                },
                "gamma" => ClusteringOptions {
                    gamma: c.gamma * m,
                    ..c
                },
                _ => ClusteringOptions { mu: c.mu * m, ..c },
            };
            let mut opts = base.clone();
            opts.clustering = clustering;
            let mut score = 0.0;
            for (b, &base_hpwl) in benches.iter().zip(&baseline) {
                let r = run_flow(&b.netlist, &b.constraints, &opts)?;
                score += r.hpwl / base_hpwl;
            }
            score /= benches.len() as f64;
            rows.push(vec![
                param.to_string(),
                format!("{mult}"),
                format!("{score:.4}"),
            ]);
            eprintln!("{param} x{mult}: score {score:.4}");
        }
    }
    print_table(
        "Normalized post-place HPWL vs hyperparameter multiplier (1.0 = default setting)",
        &["Parameter", "Multiplier", "Score (avg normalized HPWL)"],
        &rows,
    );
    Ok(())
}
