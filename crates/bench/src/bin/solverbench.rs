//! Solver micro-bench (hot-path kernels in isolation): builds synthetic
//! B2B systems at 10k / 100k / 1M variables and times
//!
//! - one CSR SpMV (`B2bSystem::apply_into`), min-of-N over repeated
//!   applications,
//! - a full preconditioned-CG solve into reused scratch
//!   (`solve_into_with_stats`),
//! - a full B2B rebuild from scratch vs an incremental rebuild after
//!   moving 1% of the cells (the cached-net fast path).
//!
//! Writes `BENCH_solver.json`. The synthetic netlists are seeded and the
//! kernels bitwise-deterministic, so per-size nnz and CG iteration
//! counts are stable across runs and machines — only the seconds vary.

use cp_graph::Hypergraph;
use cp_netlist::floorplan::Rect;
use cp_place::solver::{Axis, B2bRebuilder, CgScratch};
use cp_place::{Object, PlacementProblem};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
const SPMV_REPS: usize = 20;
const CG_ITERS: usize = 60;

/// Synthetic placement problem: `n` movable cells in a square core,
/// `1.5 n` random 2–4-pin nets plus a connectivity chain, seeded
/// positions uniform over the core.
fn synthetic(n: usize, seed: u64) -> (PlacementProblem, Vec<(f64, f64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (n as f64).sqrt().ceil().max(4.0) * 2.0;
    let mut edges: Vec<(Vec<u32>, f64)> = Vec::with_capacity(n + n / 2);
    // Chain keeps the graph connected so CG sees one coupled system.
    for i in 0..n.saturating_sub(1) {
        edges.push((vec![i as u32, i as u32 + 1], 1.0));
    }
    // IO nets tie a spread of cells to the corner terminals — the
    // boundary conditions that give CG real work to do.
    for i in (0..n).step_by((n / 64).max(1)) {
        edges.push((vec![i as u32, (n + (i % 2)) as u32], 2.0));
    }
    // Random nets may also pick the fixed terminals.
    for _ in 0..n / 2 {
        let pins = 2 + rng.random_range(0..3usize);
        let mut verts: Vec<u32> = (0..pins)
            .map(|_| rng.random_range(0..n + 2) as u32)
            .collect();
        verts.sort_unstable();
        verts.dedup();
        if verts.len() >= 2 {
            edges.push((verts, 0.5 + rng.random::<f64>()));
        }
    }
    let edge_count = edges.len();
    let problem = PlacementProblem {
        movable: vec![
            Object {
                width: 1.0,
                height: 1.0,
            };
            n
        ],
        fixed: vec![(0.0, 0.0), (side, side)],
        hypergraph: Hypergraph::new(n + 2, edges),
        net_weights: vec![1.0; edge_count],
        core: Rect::new(0.0, 0.0, side, side),
        region: vec![None; n],
        seed_positions: None,
        blockages: Vec::new(),
        density_target: 0.9,
    };
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();
    (problem, positions)
}

struct SizeResult {
    n: usize,
    nnz: usize,
    build_s: f64,
    incremental_s: f64,
    spmv_s: f64,
    cg_s: f64,
    cg_iters: usize,
    cg_rel: f64,
}

fn bench_size(n: usize) -> SizeResult {
    let (problem, mut positions) = synthetic(n, 0x5eed ^ n as u64);
    let mut rb = B2bRebuilder::new(Axis::X);

    // Full build (first rebuild is always full).
    let t0 = Instant::now();
    rb.rebuild(&problem, &positions, None);
    let build_s = t0.elapsed().as_secs_f64();
    let nnz = rb.system().nnz();

    // Incremental rebuild after moving 1% of the cells.
    let mut rng = StdRng::seed_from_u64(97);
    for _ in 0..(n / 100).max(1) {
        let i = rng.random_range(0..n);
        positions[i].0 += 0.75;
    }
    let t1 = Instant::now();
    rb.rebuild(&problem, &positions, None);
    let incremental_s = t1.elapsed().as_secs_f64();

    let sys = rb.system();
    let x: Vec<f64> = (0..sys.len()).map(|i| (i % 17) as f64 * 0.25).collect();
    let mut out = vec![0.0; sys.len()];
    let mut spmv_s = f64::INFINITY;
    for _ in 0..SPMV_REPS {
        let t = Instant::now();
        sys.apply_into(&x, &mut out);
        spmv_s = spmv_s.min(t.elapsed().as_secs_f64());
    }
    assert!(out.iter().all(|v| v.is_finite()));

    let mut sol = vec![0.0; sys.len()];
    let mut scratch = CgScratch::default();
    let t2 = Instant::now();
    let stats = sys.solve_into_with_stats(&mut sol, &mut scratch, CG_ITERS, 1e-6);
    let cg_s = t2.elapsed().as_secs_f64();
    SizeResult {
        n,
        nnz,
        build_s,
        incremental_s,
        spmv_s,
        cg_s,
        cg_iters: stats.iterations,
        cg_rel: stats.relative_residual,
    }
}

fn main() {
    println!("# Solver kernels (CSR B2B), min-of-{SPMV_REPS} SpMV, {CG_ITERS}-iter CG budget");
    let results: Vec<SizeResult> = SIZES
        .iter()
        .map(|&n| {
            let r = bench_size(n);
            println!(
                "{:>9} vars: nnz {:>9}, build {:.4}s, incr {:.4}s ({:.1}x), spmv {:.5}s \
             ({:.1} Mnnz/s), cg {:.3}s ({} iters, rel {:.2e})",
                r.n,
                r.nnz,
                r.build_s,
                r.incremental_s,
                r.build_s / r.incremental_s.max(1e-12),
                r.spmv_s,
                r.nnz as f64 / r.spmv_s.max(1e-12) / 1e6,
                r.cg_s,
                r.cg_iters,
                r.cg_rel
            );
            r
        })
        .collect();

    let sizes_json = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"vars\": {}, \"nnz\": {}, \"build_s\": {:.6}, \
                 \"incremental_rebuild_s\": {:.6}, \"spmv_s\": {:.6}, \
                 \"spmv_mnnz_per_s\": {:.2}, \"cg_s\": {:.6}, \"cg_iters\": {}, \
                 \"cg_rel_residual\": {:e}}}",
                r.n,
                r.nnz,
                r.build_s,
                r.incremental_s,
                r.spmv_s,
                r.nnz as f64 / r.spmv_s.max(1e-12) / 1e6,
                r.cg_s,
                r.cg_iters,
                r.cg_rel
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"solver_kernels\",\n  \"detected_cores\": {},\n  \
         \"spmv_reps\": {},\n  \"cg_iter_budget\": {},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        cp_parallel::detected_cores(),
        SPMV_REPS,
        CG_ITERS,
        sizes_json
    );
    std::fs::write("BENCH_solver.json", &json).expect("write BENCH_solver.json");
    println!("\nwrote BENCH_solver.json");
}
