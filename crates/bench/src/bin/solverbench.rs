//! Solver micro-bench (hot-path kernels in isolation): builds synthetic
//! B2B systems at 10k / 100k / 1M variables and times
//!
//! - one CSR SpMV per layout: the row kernel and the dispatched kernel
//!   (cache-blocked column stripes above the nnz threshold), min-of-N,
//! - a full fixed-budget CG solve with fused vs unfused vector kernels
//!   (`CgOptions::fused`), with the non-SpMV share split out,
//! - convergence honesty: iterations and seconds to a relative residual
//!   of ≤ 1e-4 (capped) for plain Jacobi-CG vs IC(0)-preconditioned CG
//!   (factorization timed separately and included in the total),
//! - a full B2B rebuild from scratch vs an incremental rebuild after
//!   moving 1% of the cells (the cached-net fast path).
//!
//! Writes `BENCH_solver.json`. The synthetic netlists are seeded and the
//! kernels bitwise-deterministic, so per-size nnz and CG iteration
//! counts are stable across runs and machines — only the seconds vary.

use cp_graph::Hypergraph;
use cp_netlist::floorplan::Rect;
use cp_place::solver::{Axis, B2bRebuilder, CgOptions, CgScratch, CgStats, IcPreconditioner};
use cp_place::{Object, PlacementProblem};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
const SPMV_REPS: usize = 20;
const CG_ITERS: usize = 60;
/// Convergence target for the iterations-to-tolerance rows.
const TOL: f64 = 1e-4;
/// Iteration cap for the to-tolerance rows: plain Jacobi-CG on the
/// chain-dominated synthetic may simply not get there — that is the
/// point, and the row reports `reached: false` honestly.
const TOL_CAP: usize = 500;
/// The solves are deterministic, so repeated runs differ only in wall
/// time; min-of-N filters scheduler noise out of the timed rows.
const SOLVE_REPS: usize = 3;

/// Synthetic placement problem: `n` movable cells in a square core,
/// `1.5 n` random 2–4-pin nets plus a connectivity chain, seeded
/// positions uniform over the core.
fn synthetic(n: usize, seed: u64) -> (PlacementProblem, Vec<(f64, f64)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (n as f64).sqrt().ceil().max(4.0) * 2.0;
    let mut edges: Vec<(Vec<u32>, f64)> = Vec::with_capacity(n + n / 2);
    // Chain keeps the graph connected so CG sees one coupled system.
    for i in 0..n.saturating_sub(1) {
        edges.push((vec![i as u32, i as u32 + 1], 1.0));
    }
    // IO nets tie a spread of cells to the corner terminals — the
    // boundary conditions that give CG real work to do.
    for i in (0..n).step_by((n / 64).max(1)) {
        edges.push((vec![i as u32, (n + (i % 2)) as u32], 2.0));
    }
    // Random nets may also pick the fixed terminals.
    for _ in 0..n / 2 {
        let pins = 2 + rng.random_range(0..3usize);
        let mut verts: Vec<u32> = (0..pins)
            .map(|_| rng.random_range(0..n + 2) as u32)
            .collect();
        verts.sort_unstable();
        verts.dedup();
        if verts.len() >= 2 {
            edges.push((verts, 0.5 + rng.random::<f64>()));
        }
    }
    let edge_count = edges.len();
    let problem = PlacementProblem {
        movable: vec![
            Object {
                width: 1.0,
                height: 1.0,
            };
            n
        ],
        fixed: vec![(0.0, 0.0), (side, side)],
        hypergraph: Hypergraph::new(n + 2, edges),
        net_weights: vec![1.0; edge_count],
        core: Rect::new(0.0, 0.0, side, side),
        region: vec![None; n],
        seed_positions: None,
        blockages: Vec::new(),
        density_target: 0.9,
    };
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();
    (problem, positions)
}

struct SizeResult {
    n: usize,
    nnz: usize,
    build_s: f64,
    incremental_s: f64,
    /// Dispatched SpMV (blocked above the nnz threshold).
    spmv_s: f64,
    /// Unblocked row-kernel SpMV, for the blocked-vs-rows comparison.
    spmv_rows_s: f64,
    blocked: bool,
    /// Fixed-budget CG, fused kernels (the default path).
    cg_s: f64,
    cg_iters: usize,
    cg_rel: f64,
    /// Fixed-budget CG, unfused kernels (`CgOptions { fused: false }`).
    cg_unfused_s: f64,
    /// Plain Jacobi-CG to TOL (capped at TOL_CAP).
    tol_iters: usize,
    tol_s: f64,
    tol_rel: f64,
    /// IC(0)-preconditioned CG to TOL: factor time + solve time.
    ic_factor_s: f64,
    pcg_iters: usize,
    pcg_s: f64,
    pcg_rel: f64,
}

fn bench_size(n: usize) -> SizeResult {
    let (problem, positions) = synthetic(n, 0x5eed ^ n as u64);

    // Full-rebuild vs incremental-rebuild comparison with the allocator
    // warmth held equal: after a cold first build, alternate an
    // every-cell move (all nets dirty — the full re-derive path, warm
    // arenas) with a 1%-cell move (the cached-net fast path), min over
    // repeats. Timing the cold first build as "full" would flatter the
    // incremental row with allocation noise.
    let mut rb = B2bRebuilder::new(Axis::X);
    let mut cur = positions.clone();
    rb.rebuild(&problem, &cur, None);
    let mut rng = StdRng::seed_from_u64(97);
    let (mut build_s, mut incremental_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..SOLVE_REPS {
        // Uniform shift: every pin coordinate changes (all nets dirty)
        // while the pin ordering — and so the pair topology — stays put.
        for p in &mut cur {
            p.0 += 0.375;
        }
        let t0 = Instant::now();
        rb.rebuild(&problem, &cur, None);
        build_s = build_s.min(t0.elapsed().as_secs_f64());
        for _ in 0..(n / 100).max(1) {
            let i = rng.random_range(0..n);
            cur[i].0 += 0.75;
        }
        let t1 = Instant::now();
        rb.rebuild(&problem, &cur, None);
        incremental_s = incremental_s.min(t1.elapsed().as_secs_f64());
    }
    let nnz = rb.system().nnz();

    let sys = rb.system();
    let x: Vec<f64> = (0..sys.len()).map(|i| (i % 17) as f64 * 0.25).collect();
    let mut out = vec![0.0; sys.len()];
    let mut spmv_s = f64::INFINITY;
    let mut spmv_rows_s = f64::INFINITY;
    for _ in 0..SPMV_REPS {
        let t = Instant::now();
        sys.apply_into(&x, &mut out);
        spmv_s = spmv_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        sys.apply_rows_into(&x, &mut out);
        spmv_rows_s = spmv_rows_s.min(t.elapsed().as_secs_f64());
    }
    assert!(out.iter().all(|v| v.is_finite()));

    // Fixed-budget CG: fused (default) vs unfused vector kernels. The
    // solves are bitwise-identical, so the non-SpMV delta is pure kernel
    // fusion.
    let mut scratch = CgScratch::default();
    let run_budget = |fused: bool, scratch: &mut CgScratch| {
        let mut sol = vec![0.0; sys.len()];
        let t = Instant::now();
        let stats = sys.solve_into_with_options(
            &mut sol,
            scratch,
            CG_ITERS,
            1e-6,
            CgOptions {
                precondition: false,
                fused,
            },
        );
        (t.elapsed().as_secs_f64(), stats)
    };
    // Warm the scratch allocations outside the timed region, then take
    // the min over SOLVE_REPS deterministic repeats of every solve row.
    let _ = run_budget(true, &mut scratch);
    let (mut cg_s, mut cg_unfused_s) = (f64::INFINITY, f64::INFINITY);
    let (mut stats, mut unfused_stats) = (CgStats::default(), CgStats::default());
    for _ in 0..SOLVE_REPS {
        let (s, st) = run_budget(true, &mut scratch);
        if s < cg_s {
            (cg_s, stats) = (s, st);
        }
        let (s, st) = run_budget(false, &mut scratch);
        if s < cg_unfused_s {
            (cg_unfused_s, unfused_stats) = (s, st);
        }
    }
    assert_eq!(
        stats.relative_residual.to_bits(),
        unfused_stats.relative_residual.to_bits(),
        "fused and unfused CG must be bitwise-identical"
    );

    // Convergence honesty: to-tolerance rows. Plain Jacobi first.
    let mut tol_s = f64::INFINITY;
    let mut tol_stats = CgStats::default();
    for _ in 0..SOLVE_REPS {
        let mut sol = vec![0.0; sys.len()];
        let t = Instant::now();
        tol_stats = sys.solve_into_with_stats(&mut sol, &mut scratch, TOL_CAP, TOL);
        tol_s = tol_s.min(t.elapsed().as_secs_f64());
    }

    // IC(0)-preconditioned, factorization timed apart.
    let mut ic_factor_s = f64::INFINITY;
    let mut pcg_s = f64::INFINITY;
    let mut pcg_stats = CgStats::default();
    for _ in 0..SOLVE_REPS {
        let t = Instant::now();
        let ic = IcPreconditioner::new(sys);
        ic_factor_s = ic_factor_s.min(t.elapsed().as_secs_f64());
        let mut sol = vec![0.0; sys.len()];
        let t = Instant::now();
        pcg_stats = sys.solve_into_preconditioned(&mut sol, &mut scratch, TOL_CAP, TOL, &ic);
        pcg_s = pcg_s.min(t.elapsed().as_secs_f64());
    }

    SizeResult {
        n,
        nnz,
        build_s,
        incremental_s,
        spmv_s,
        spmv_rows_s,
        blocked: sys.is_blocked(),
        cg_s,
        cg_iters: stats.iterations,
        cg_rel: stats.relative_residual,
        cg_unfused_s,
        tol_iters: tol_stats.iterations,
        tol_s,
        tol_rel: tol_stats.relative_residual,
        ic_factor_s,
        pcg_iters: pcg_stats.iterations,
        pcg_s,
        pcg_rel: pcg_stats.relative_residual,
    }
}

fn main() {
    println!(
        "# Solver kernels (CSR B2B): min-of-{SPMV_REPS} SpMV, {CG_ITERS}-iter CG budget, \
         to-tolerance rel {TOL:.0e} capped at {TOL_CAP}"
    );
    let results: Vec<SizeResult> = SIZES
        .iter()
        .map(|&n| {
            let r = bench_size(n);
            let non_spmv = |cg: f64| (cg - r.cg_iters as f64 * r.spmv_s).max(0.0);
            println!(
                "{:>9} vars: nnz {:>9}, build {:.4}s, incr {:.4}s ({:.1}x), spmv {:.5}s{} \
                 (rows {:.5}s), cg {:.3}s ({} iters, rel {:.2e}, non-spmv {:.3}s fused vs \
                 {:.3}s unfused)",
                r.n,
                r.nnz,
                r.build_s,
                r.incremental_s,
                r.build_s / r.incremental_s.max(1e-12),
                r.spmv_s,
                if r.blocked { " [blocked]" } else { "" },
                r.spmv_rows_s,
                r.cg_s,
                r.cg_iters,
                r.cg_rel,
                non_spmv(r.cg_s),
                non_spmv(r.cg_unfused_s),
            );
            println!(
                "           to rel {TOL:.0e}: jacobi {} iters {:.3}s (rel {:.2e}{}) | \
                 ic(0) factor {:.4}s + {} iters {:.3}s = {:.3}s (rel {:.2e}{})",
                r.tol_iters,
                r.tol_s,
                r.tol_rel,
                if r.tol_rel <= TOL {
                    ""
                } else {
                    ", NOT reached"
                },
                r.ic_factor_s,
                r.pcg_iters,
                r.pcg_s,
                r.ic_factor_s + r.pcg_s,
                r.pcg_rel,
                if r.pcg_rel <= TOL {
                    ""
                } else {
                    ", NOT reached"
                },
            );
            r
        })
        .collect();

    let sizes_json = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"vars\": {}, \"nnz\": {}, \"build_s\": {:.6}, \
                 \"incremental_rebuild_s\": {:.6}, \"spmv_s\": {:.6}, \
                 \"spmv_rows_s\": {:.6}, \"spmv_blocked\": {}, \
                 \"spmv_mnnz_per_s\": {:.2}, \"cg_s\": {:.6}, \"cg_iters\": {}, \
                 \"cg_rel_residual\": {:e}, \"cg_unfused_s\": {:.6}, \
                 \"cg_non_spmv_s\": {:.6}, \"cg_non_spmv_unfused_s\": {:.6}, \
                 \"to_tol\": {{\"tol\": {:e}, \"cap\": {}, \
                 \"jacobi\": {{\"iters\": {}, \"secs\": {:.6}, \"rel\": {:e}, \"reached\": {}}}, \
                 \"ic0\": {{\"factor_s\": {:.6}, \"iters\": {}, \"solve_s\": {:.6}, \
                 \"total_s\": {:.6}, \"rel\": {:e}, \"reached\": {}}}}}}}",
                r.n,
                r.nnz,
                r.build_s,
                r.incremental_s,
                r.spmv_s,
                r.spmv_rows_s,
                r.blocked,
                r.nnz as f64 / r.spmv_s.max(1e-12) / 1e6,
                r.cg_s,
                r.cg_iters,
                r.cg_rel,
                r.cg_unfused_s,
                (r.cg_s - r.cg_iters as f64 * r.spmv_s).max(0.0),
                (r.cg_unfused_s - r.cg_iters as f64 * r.spmv_s).max(0.0),
                TOL,
                TOL_CAP,
                r.tol_iters,
                r.tol_s,
                r.tol_rel,
                r.tol_rel <= TOL,
                r.ic_factor_s,
                r.pcg_iters,
                r.pcg_s,
                r.ic_factor_s + r.pcg_s,
                r.pcg_rel,
                r.pcg_rel <= TOL,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"solver_kernels\",\n  \"detected_cores\": {},\n  \
         \"spmv_reps\": {},\n  \"cg_iter_budget\": {},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        cp_parallel::detected_cores(),
        SPMV_REPS,
        CG_ITERS,
        sizes_json
    );
    std::fs::write("BENCH_solver.json", &json).expect("write BENCH_solver.json");
    println!("\nwrote BENCH_solver.json");
}
