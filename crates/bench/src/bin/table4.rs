//! Table 4: post-route PPA with the Innovus-like flow.
//!
//! Default (flat) vs ours (PPA-aware clustering + V-P&R shapes + region
//! constraints during incremental placement) on all six designs.

use cp_bench::{
    all_profiles, flow_options, fmt_norm, fmt_power, fmt_tns, fmt_wns, print_table, scale, Bench,
};
use cp_core::flow::{run_default_flow, run_flow, ShapeMode, Tool};

fn main() -> Result<(), cp_core::FlowError> {
    println!(
        "# Table 4 — post-route PPA, Innovus-like (scale {})",
        scale()
    );
    let opts = flow_options()
        .tool(Tool::InnovusLike)
        .shape_mode(ShapeMode::Vpr);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let b = Bench::generate(p);
        let default = run_default_flow(&b.netlist, &b.constraints, &opts)?;
        let ours = run_flow(&b.netlist, &b.constraints, &opts)?;
        for (flow, r) in [("Default", &default), ("Ours", &ours)] {
            rows.push(vec![
                b.name().to_string(),
                flow.to_string(),
                fmt_norm(r.ppa.rwl, default.ppa.rwl),
                fmt_wns(r.ppa.wns),
                fmt_tns(r.ppa.tns),
                fmt_power(r.ppa.power),
            ]);
        }
        eprintln!("{} done", b.name());
    }
    print_table(
        "Post-route PPA (rWL normalized to Default)",
        &["Design", "Flow", "rWL", "WNS (ps)", "TNS (ns)", "Power (W)"],
        &rows,
    );
    Ok(())
}
