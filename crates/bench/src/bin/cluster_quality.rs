//! Classic clustering metrics vs PPA (supports the paper's Section 2
//! argument that cutsize/modularity do not predict PPA).
//!
//! Prints cutsize, K−1, modularity, balance and the Rent score for
//! Leiden, MFC and our PPA-aware clustering — compare against Table 5's
//! post-route PPA ordering.

use cp_bench::{flow_options, print_table, scale, small_profiles, Bench};
use cp_core::baselines::{leiden_assignment, mfc_assignment};
use cp_core::cluster::ppa_aware_clustering;
use cp_core::cluster::quality::clustering_quality;

fn main() -> Result<(), cp_core::FlowError> {
    println!("# Clustering quality metrics (scale {})", scale());
    let opts = flow_options();
    let mut rows = Vec::new();
    for p in small_profiles() {
        let b = Bench::generate(p);
        let hg = b.netlist.to_hypergraph();
        let (leiden, _) = leiden_assignment(&b.netlist, opts.clustering.seed);
        let (mfc, _) = mfc_assignment(&b.netlist, &opts.clustering);
        let ours = ppa_aware_clustering(&b.netlist, &b.constraints, &opts.clustering)?;
        for (name, labels) in [
            ("Leiden", &leiden),
            ("MFC", &mfc),
            ("Ours", &ours.assignment),
        ] {
            let q = clustering_quality(&hg, labels);
            rows.push(vec![
                b.name().to_string(),
                name.to_string(),
                format!("{}", q.cluster_count),
                format!("{}", q.cutsize),
                format!("{}", q.k_minus_one),
                format!("{:.3}", q.modularity),
                format!("{:.2}", q.balance),
                format!("{:.3}", q.rent),
            ]);
        }
        eprintln!("{} done", b.name());
    }
    print_table(
        "Classic criteria per clustering method (lower cut/K−1/Rent and higher modularity are \"better\" classically — compare with Table 5's PPA)",
        &["Design", "Method", "#Clusters", "Cutsize", "K−1", "Modularity", "Balance", "Rent"],
        &rows,
    );
    Ok(())
}
