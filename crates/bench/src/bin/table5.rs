//! Table 5: PPA-relevance of the clustering method.
//!
//! Leiden vs plain multilevel FC (MFC) vs our PPA-aware clustering, each
//! dropped into the same overall flow (OpenROAD-like), post-route PPA.
//! rWL is normalized to the default flat flow as in the paper.

use cp_bench::{
    flow_options, fmt_norm, fmt_power, fmt_tns, fmt_wns, print_table, scale, small_profiles, Bench,
};
use cp_core::baselines::{run_leiden_flow, run_mfc_flow};
use cp_core::flow::{run_default_flow, run_flow, ShapeMode, Tool};

fn main() -> Result<(), cp_core::FlowError> {
    println!("# Table 5 — clustering comparison (scale {})", scale());
    let opts = flow_options()
        .tool(Tool::OpenRoadLike)
        .shape_mode(ShapeMode::Vpr);
    let mut rows = Vec::new();
    for p in small_profiles() {
        let b = Bench::generate(p);
        let default = run_default_flow(&b.netlist, &b.constraints, &opts)?;
        let leiden = run_leiden_flow(&b.netlist, &b.constraints, &opts)?;
        let mfc = run_mfc_flow(&b.netlist, &b.constraints, &opts)?;
        let ours = run_flow(&b.netlist, &b.constraints, &opts)?;
        for (method, r) in [("Leiden", &leiden), ("MFC", &mfc), ("Ours", &ours)] {
            rows.push(vec![
                b.name().to_string(),
                method.to_string(),
                fmt_norm(r.ppa.rwl, default.ppa.rwl),
                fmt_wns(r.ppa.wns),
                fmt_tns(r.ppa.tns),
                fmt_power(r.ppa.power),
            ]);
        }
        eprintln!("{} done", b.name());
    }
    print_table(
        "Post-route PPA by clustering method (rWL normalized to the default flow)",
        &[
            "Design",
            "Method",
            "rWL",
            "WNS (ps)",
            "TNS (ns)",
            "Power (W)",
        ],
        &rows,
    );
    Ok(())
}
