//! Ablation of the PPA-awareness ingredients (DESIGN.md's design-choice
//! study; complements Table 5).
//!
//! Toggles each of the three extra signals the clustering uses — logical
//! hierarchy, timing-path criticality, switching activity — and reports
//! post-route PPA with the OpenROAD-like flow.

use cp_bench::{
    flow_options, fmt_norm, fmt_power, fmt_tns, fmt_wns, print_table, scale, small_profiles, Bench,
};
use cp_core::flow::{run_default_flow, run_flow, Tool};
use cp_core::ClusteringOptions;

type Variant = (
    &'static str,
    Box<dyn Fn(ClusteringOptions) -> ClusteringOptions>,
);

fn main() -> Result<(), cp_core::FlowError> {
    println!("# Ablation — PPA-awareness ingredients (scale {})", scale());
    let base = flow_options().tool(Tool::OpenRoadLike);
    let variants: Vec<Variant> = vec![
        ("full", Box::new(|c| c)),
        (
            "no hierarchy",
            Box::new(|c| ClusteringOptions {
                use_hierarchy: false,
                ..c
            }),
        ),
        (
            "no timing",
            Box::new(|c| ClusteringOptions {
                use_timing: false,
                ..c
            }),
        ),
        (
            "no switching",
            Box::new(|c| ClusteringOptions {
                use_switching: false,
                ..c
            }),
        ),
        (
            "connectivity only",
            Box::new(|c| ClusteringOptions {
                use_hierarchy: false,
                use_timing: false,
                use_switching: false,
                ..c
            }),
        ),
    ];
    let mut rows = Vec::new();
    for p in small_profiles() {
        let b = Bench::generate(p);
        let default = run_default_flow(&b.netlist, &b.constraints, &base)?;
        for (name, f) in &variants {
            let mut opts = base.clone();
            opts.clustering = f(base.clustering);
            let r = run_flow(&b.netlist, &b.constraints, &opts)?;
            rows.push(vec![
                b.name().to_string(),
                name.to_string(),
                fmt_norm(r.hpwl, default.hpwl),
                fmt_norm(r.ppa.rwl, default.ppa.rwl),
                fmt_wns(r.ppa.wns),
                fmt_tns(r.ppa.tns),
                fmt_power(r.ppa.power),
            ]);
        }
        eprintln!("{} done", b.name());
    }
    print_table(
        "Post-route PPA by ablated signal (normalized to the default flat flow)",
        &[
            "Design",
            "Variant",
            "HPWL",
            "rWL",
            "WNS (ps)",
            "TNS (ns)",
            "Power (W)",
        ],
        &rows,
    );
    Ok(())
}
