//! Per-stage runtime breakdown of Algorithm 1 (the paper publishes this
//! in its repository for Table 2's designs).

use cp_bench::{all_profiles, flow_options, print_table, scale, Bench};
use cp_core::cluster::dendrogram::cluster_by_hierarchy;
use cp_core::cluster::ppa_aware_clustering;
use cp_core::flow::Tool;
use cp_netlist::clustered::ClusteredNetlist;
use cp_netlist::Floorplan;
use cp_place::{GlobalPlacer, PlacementProblem};
use cp_timing::activity::propagate_activity;
use cp_timing::sta::Sta;
use cp_timing::wire::WireModel;
use std::time::Instant;

fn secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

fn main() {
    println!("# Runtime breakdown of our approach (scale {})", scale());
    let opts = flow_options().tool(Tool::OpenRoadLike);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let b = Bench::generate(p);
        let (_, t_dendro) = secs(|| cluster_by_hierarchy(&b.netlist));
        let (_, t_sta) = secs(|| {
            let sta = Sta::new(&b.netlist, &b.constraints).expect("generated netlists are acyclic");
            let r = sta.run(&WireModel::Estimate);
            sta.extract_paths(&r, opts.clustering.path_count).len()
        });
        let (_, t_act) = secs(|| propagate_activity(&b.netlist, &b.constraints).iterations);
        let (clustering, t_cluster_total) = secs(|| {
            ppa_aware_clustering(&b.netlist, &b.constraints, &opts.clustering)
                .expect("clustering runs")
        });
        let fp = Floorplan::for_netlist(&b.netlist, opts.utilization, opts.aspect_ratio);
        let (clustered, t_collapse) =
            secs(|| ClusteredNetlist::from_assignment(&b.netlist, &clustering.assignment));
        let (cluster_pl, t_cluster_place) = secs(|| {
            GlobalPlacer::new(opts.placer)
                .place(&PlacementProblem::from_clustered(&clustered, &fp))
                .expect("cluster placement runs")
        });
        let seeds: Vec<(f64, f64)> = clustered
            .cluster_of_cell()
            .iter()
            .map(|&c| cluster_pl.positions[c as usize])
            .collect();
        let (_, t_incremental) = secs(|| {
            let problem = PlacementProblem::from_netlist(&b.netlist, &fp).with_seeds(seeds.clone());
            GlobalPlacer::new(opts.placer)
                .place(&problem)
                .expect("incremental placement runs")
                .hpwl
        });
        rows.push(vec![
            b.name().to_string(),
            format!("{:.2}", t_dendro),
            format!("{:.2}", t_sta),
            format!("{:.2}", t_act),
            format!("{:.2}", t_cluster_total),
            format!("{:.2}", t_collapse),
            format!("{:.2}", t_cluster_place),
            format!("{:.2}", t_incremental),
        ]);
        eprintln!("{} done", b.name());
    }
    print_table(
        "Seconds per stage (FC column includes the dendrogram/STA/activity re-runs inside it)",
        &[
            "Design",
            "Dendrogram",
            "STA+paths",
            "Activity",
            "Clustering total",
            "Collapse",
            "Cluster place",
            "Incremental place",
        ],
        &rows,
    );
}
