//! Table 1: specifications of benchmarks.
//!
//! Prints the paper's reported statistics next to the generated (scaled)
//! designs. Run with `CP_SCALE=1.0` to generate at the paper's sizes.

use cp_bench::{all_profiles, print_table, scale, Bench};

fn main() {
    let s = scale();
    println!("# Table 1 — benchmark specifications (scale {s})");
    let mut rows = Vec::new();
    for p in all_profiles() {
        let b = Bench::generate(p);
        let stats = b.netlist.stats();
        rows.push(vec![
            b.name().to_string(),
            format!("{}", p.table1_insts()),
            format!("{}", p.table1_nets()),
            format!("{}", stats.cells),
            format!("{}", stats.nets),
            format!("{}", stats.flops),
            format!("{}", stats.hier_depth),
            format!("{:.2}", stats.avg_fanout),
            format!("{:.2}", b.constraints.clock_period / 1000.0),
        ]);
    }
    print_table(
        "Benchmark statistics (paper vs generated)",
        &[
            "Design",
            "#Insts (paper)",
            "#Nets (paper)",
            "#Insts (gen)",
            "#Nets (gen)",
            "#FFs",
            "HierDepth",
            "AvgFanout",
            "TCP_OR (ns)",
        ],
        &rows,
    );
}
