//! Shaping fast-path comparison (the surrogate-first tentpole's
//! acceptance artifact): runs the clustered flow with the same cluster
//! assignment under `ShapeMode::Vpr`, `ShapeMode::VprMl` and
//! `ShapeMode::Hybrid`, and writes `BENCH_shaping.json` with each mode's
//! shaping wall-clock, final HPWL and work counters.
//!
//! The claim under test: Hybrid shaping is ≥3× faster than the exact
//! 20-candidate sweep at equal thread count, with final flow HPWL within
//! 2% of the exact result.
//!
//! Knobs: `CP_SCALE` (design size), `CP_SHAPING_TOPK` (candidates
//! surviving into exact V-P&R, default 4), `CP_SHAPING_REPS` (timing
//! repetitions, minimum kept, default 3), `CP_SHAPING_SMOKE` (reduced
//! training effort for CI).

use cp_bench::{flow_options, print_table, scale, Bench};
use cp_core::flow::{run_flow_with_assignment_cached, FlowReport, ShapeMode, ShapingStats};
use cp_core::vpr::ml::{generate_dataset, DatasetConfig, MlShapeSelector};
use cp_core::vpr::subnetlist::SubnetlistCache;
use cp_core::ClusteringOptions;
use cp_gnn::train::TrainOptions;
use cp_netlist::clustered::ClusteredNetlist;
use cp_netlist::generator::DesignProfile;
use std::time::Instant;

struct Run {
    mode: &'static str,
    shaping_s: f64,
    total_s: f64,
    report: FlowReport,
}

fn json_stats(s: &ShapingStats) -> String {
    format!(
        "{{\"clusters_shaped\": {}, \"exact_evals\": {}, \"exact_evals_avoided\": {}, \
         \"proxy_evals\": {}, \"surrogate_batches\": {}, \"surrogate_samples\": {}, \
         \"warm_start_hits\": {}, \"subnetlist_cache_hits\": {}, \"subnetlist_cache_misses\": {}}}",
        s.clusters_shaped,
        s.exact_evals,
        s.exact_evals_avoided,
        s.proxy_evals,
        s.surrogate_batches,
        s.surrogate_samples,
        s.warm_start_hits,
        s.subnetlist_cache_hits,
        s.subnetlist_cache_misses,
    )
}

fn main() -> Result<(), cp_core::FlowError> {
    let smoke = std::env::var("CP_SHAPING_SMOKE").is_ok();
    let top_k: usize = std::env::var("CP_SHAPING_TOPK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let b = Bench::generate(DesignProfile::Aes);
    // Lower the shaping threshold below the scaled cluster sizes so the
    // 20-candidate sweep — the stage under test — actually runs.
    let mut opts = flow_options().shape_mode(ShapeMode::Vpr);
    opts.vpr_min_instances = 60;
    let cores = cp_parallel::detected_cores();
    println!(
        "# Shaping fast path, {} at scale {} ({} cells, {} detected cores, top_k {})",
        b.name(),
        scale(),
        b.netlist.cell_count(),
        cores,
        top_k
    );

    // One clustering for every mode: the comparison is shaping-only.
    let clustering =
        cp_core::cluster::ppa_aware_clustering(&b.netlist, &b.constraints, &opts.clustering)?;

    // Train the surrogate the paper's way (perturbed configs labeled by
    // exact V-P&R) at reduced effort — training is offline, so its cost
    // is reported separately, not counted against any mode's shaping time.
    let t_train = Instant::now();
    let dataset = generate_dataset(
        &b.netlist,
        &b.constraints,
        &DatasetConfig {
            configs: 1,
            min_cells: opts.vpr_min_instances,
            max_clusters_per_config: if smoke { 2 } else { 4 },
            base: ClusteringOptions {
                seed: 41,
                ..opts.clustering
            },
            vpr: opts.vpr,
            seed: 31,
        },
    )?;
    let (selector, _) = MlShapeSelector::train(
        &dataset,
        &TrainOptions {
            epochs: if smoke { 3 } else { 12 },
            ..Default::default()
        },
        13,
    );
    let train_s = t_train.elapsed().as_secs_f64();
    eprintln!(
        "surrogate: {} samples, trained in {train_s:.2}s",
        dataset.len()
    );

    // Pre-warm the shared sub-netlist cache so every mode's shaping time
    // excludes extraction equally (first-run bias would flatter the later
    // modes otherwise).
    let mut cache = SubnetlistCache::new();
    let clustered = ClusteredNetlist::from_assignment(&b.netlist, &clustering.assignment);
    for &c in &clustered.shapeable_clusters(opts.vpr_min_instances) {
        let _ = cache.get_or_extract(&b.netlist, clustered.cells(c));
    }

    // Two hybrid flavors: surrogate-ranked (the paper's regime, where
    // exact V-P&R is expensive enough to dwarf a GNN forward) and
    // proxy-ranked (the headline at bench scale, where the virtual dies
    // are small enough that a 2-iteration placement is the cheaper
    // ranker).
    let modes: Vec<(&'static str, ShapeMode)> = vec![
        ("vpr", ShapeMode::Vpr),
        ("vpr_ml", ShapeMode::VprMl(Box::new(selector.clone()))),
        (
            "hybrid_ml",
            ShapeMode::Hybrid {
                selector: Some(Box::new(selector)),
                top_k,
            },
        ),
        (
            "hybrid",
            ShapeMode::Hybrid {
                selector: None,
                top_k,
            },
        ),
    ];
    // The flow is deterministic, so repeated runs differ only in timing;
    // take the per-mode minimum wall-clock (and assert the metrics agree)
    // so single-core scheduler jitter doesn't skew the speedup ratio.
    let reps: usize = std::env::var("CP_SHAPING_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let mut runs = Vec::new();
    for (name, mode) in modes {
        let run_opts = opts.clone().shape_mode(mode);
        let mut best: Option<Run> = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let report = run_flow_with_assignment_cached(
                &b.netlist,
                &b.constraints,
                &clustering.assignment,
                clustering.runtime,
                &run_opts,
                &mut cache,
            )?;
            let total_s = t0.elapsed().as_secs_f64();
            let shaping_s = report.timings.get("shaping").unwrap_or(0.0);
            match &mut best {
                Some(b) => {
                    assert!(
                        b.report.hpwl.to_bits() == report.hpwl.to_bits(),
                        "{name}: repeated runs disagree on HPWL"
                    );
                    if shaping_s < b.shaping_s {
                        b.shaping_s = shaping_s;
                    }
                    if total_s < b.total_s {
                        b.total_s = total_s;
                    }
                }
                None => {
                    best = Some(Run {
                        mode: name,
                        shaping_s,
                        total_s,
                        report,
                    });
                }
            }
        }
        let run = best.unwrap_or_else(|| unreachable!("reps >= 1"));
        eprintln!(
            "{name}: shaping {:.3}s, total {:.2}s, hpwl {:.0} (min of {reps})",
            run.shaping_s, run.total_s, run.report.hpwl
        );
        runs.push(run);
    }

    let vpr = &runs[0];
    let hybrid = runs
        .iter()
        .find(|r| r.mode == "hybrid")
        .expect("hybrid mode ran");
    let speedup = vpr.shaping_s / hybrid.shaping_s.max(1e-9);
    let delta_pct = (hybrid.report.hpwl - vpr.report.hpwl) / vpr.report.hpwl * 100.0;

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.3}", r.shaping_s),
                format!("{:.2}", vpr.shaping_s / r.shaping_s.max(1e-9)),
                format!("{:.0}", r.report.hpwl),
                format!(
                    "{:+.2}%",
                    (r.report.hpwl - vpr.report.hpwl) / vpr.report.hpwl * 100.0
                ),
                r.report.shaping.exact_evals.to_string(),
                r.report.shaping.warm_start_hits.to_string(),
            ]
        })
        .collect();
    print_table(
        "Shaping wall-clock by mode (same clustering, shared sub-netlist cache)",
        &[
            "Mode",
            "Shaping s",
            "Speedup vs Vpr",
            "HPWL",
            "ΔHPWL",
            "Exact evals",
            "Warm starts",
        ],
        &rows,
    );
    println!(
        "\nhybrid vs exact: {speedup:.2}x shaping speedup, {delta_pct:+.2}% final HPWL \
         (target: >=3x within 2%)"
    );

    let runs_json = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"shaping_s\": {:.6}, \"total_s\": {:.6}, \
                 \"hpwl\": {:.3}, \"stats\": {}}}",
                r.mode,
                r.shaping_s,
                r.total_s,
                r.report.hpwl,
                json_stats(&r.report.shaping)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"shaping_fast_path\",\n  \"design\": \"{}\",\n  \"scale\": {},\n  \
         \"cells\": {},\n  \"detected_cores\": {},\n  \"threads\": {},\n  \"top_k\": {},\n  \
         \"surrogate_train_s\": {:.6},\n  \"runs\": [\n{}\n  ],\n  \
         \"hybrid_speedup_vs_vpr\": {:.3},\n  \"hybrid_hpwl_delta_pct\": {:.4}\n}}\n",
        b.name(),
        scale(),
        b.netlist.cell_count(),
        cores,
        cp_parallel::current_threads(),
        top_k,
        train_s,
        runs_json,
        speedup,
        delta_pct
    );
    std::fs::write("BENCH_shaping.json", &json).expect("write BENCH_shaping.json");
    println!("\nwrote BENCH_shaping.json");
    Ok(())
}
