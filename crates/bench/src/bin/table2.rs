//! Table 2: post-place HPWL and CPU with the OpenROAD-like flow.
//!
//! Compares blob placement [9] (Louvain + IO-weight-×4 seeded placement)
//! and our PPA-aware clustered flow against the default flat flow. HPWL
//! and CPU (clustering + seeded placement) are normalized to the default
//! flow, exactly as the paper reports them. The paper lists "NA" for blob
//! placement on MegaBoom and MemPool Group (its clustering runtime
//! explodes); we honor that.

use cp_bench::{all_profiles, flow_options, fmt_norm, print_table, scale, Bench};
use cp_core::baselines::run_blob_flow;
use cp_core::flow::{run_default_flow, run_flow, Tool};
use cp_netlist::generator::DesignProfile;

fn main() -> Result<(), cp_core::FlowError> {
    println!("# Table 2 — post-place HPWL / CPU (scale {})", scale());
    let opts = flow_options().tool(Tool::OpenRoadLike);
    let mut rows = Vec::new();
    for p in all_profiles() {
        let b = Bench::generate(p);
        let default = run_default_flow(&b.netlist, &b.constraints, &opts)?;
        let ours = run_flow(&b.netlist, &b.constraints, &opts)?;
        let ours_cpu = ours.clustering_runtime + ours.placement_runtime;
        let (blob_hpwl, blob_cpu) =
            if matches!(p, DesignProfile::MegaBoom | DesignProfile::MemPoolGroup) {
                ("NA".to_string(), "NA".to_string())
            } else {
                let blob = run_blob_flow(&b.netlist, &b.constraints, &opts)?;
                (
                    fmt_norm(blob.hpwl, default.hpwl),
                    fmt_norm(
                        blob.clustering_runtime + blob.placement_runtime,
                        default.placement_runtime,
                    ),
                )
            };
        rows.push(vec![
            b.name().to_string(),
            blob_hpwl,
            blob_cpu,
            fmt_norm(ours.hpwl, default.hpwl),
            fmt_norm(ours_cpu, default.placement_runtime),
            format!("{}", ours.cluster_count),
        ]);
        eprintln!(
            "{}: default {:.1}s, ours {:.1}s ({} clusters)",
            b.name(),
            default.placement_runtime,
            ours_cpu,
            ours.cluster_count
        );
    }
    print_table(
        "Post-place results, normalized to the default flow",
        &[
            "Design",
            "[9] HPWL",
            "[9] CPU",
            "Ours HPWL",
            "Ours CPU",
            "#Clusters",
        ],
        &rows,
    );
    Ok(())
}
