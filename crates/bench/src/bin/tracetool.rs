//! Trace analytics CLI: summarize, diff, flamegraph and QoR-gate
//! cp-trace reports.
//!
//! ```text
//! tracetool summarize <report.json>
//! tracetool diff <base.json> <new.json> [--rel R] [--abs S] [--metric-rel M]
//! tracetool flamegraph <report.json> [-o out.folded]
//! tracetool gate [--baseline FILE] [--from report.json] [--reps N] [--write] [--timeout-s S] [--large]
//! tracetool chaos [--seeds N] [--timeout-s S] [--site SUBSTR]
//! tracetool bench <report.json> [-o BENCH_analysis.json]
//! tracetool harvest [TRACE_report.json ...] [--run PROFILE@SCALE] [--ledger F] [--design NAME] [--doctor qor.NAME=FACTOR]
//! tracetool trend [--ledger F] [--format table|tsv|json] [--metric-rel M] [--rel R] [--abs S]
//! tracetool explain <report.json> [--fields F.json] [--base B.json] [--base-fields BF.json]
//! tracetool explain --run PROFILE@SCALE [--fields-out F] [--report-out R] [--doctor stall]
//! tracetool render <fields.json> [--out-dir DIR] [--name SUBSTR]
//! ```
//!
//! `gate` runs the pinned gate flow (Aes at scale 0.02, exact V-P&R,
//! fully traced; see `cp_bench::qor_gate`) `--reps` times, min-of-N
//! reduces the runtimes, and checks the run's `qor.*` gauges and
//! per-stage self-time shares against `baselines/QOR_baseline.json`,
//! exiting 1 on any violation. `--from` gates an existing report file
//! instead of running the flow; `--write` (re)records the baseline;
//! `--timeout-s` bounds the flow's wall-clock and exits 3 (distinct
//! from the gate-fail exit 1) when exceeded; `--large` swaps in the
//! large gate flow (Ariane at scale 0.5, ~60k cells, uniform shapes)
//! gated against `baselines/QOR_large.json` — the scale-smoke guard
//! for the solver/spreading/clustering hot paths. `chaos` sweeps the
//! fault-injection sites (needs `--features fault-injection`) and exits
//! 1 when any case violates the resilience contract. `diff` exits 1
//! when regressions survive the tolerances; `summarize` and
//! `flamegraph` are read-only.
//!
//! `harvest` backfills the run ledger (`runs/ledger.jsonl` by default)
//! from existing TRACE report artifacts — fingerprinted by FNV-1a over
//! the artifact bytes so re-harvests of the same report group together —
//! or runs a fresh hermetic gate-options flow with `--run aes@0.02`
//! (checkpoint fingerprint, so repeat runs of the same profile@scale
//! form one trend group). `--doctor qor.NAME=FACTOR` multiplies one QoR
//! value before appending — the self-test knob for the trend gate.
//! `trend` compares each fingerprint group's latest completed run
//! against the best earlier one using the TraceDiff noise model and
//! exits 1 on any QoR regression (wall time is reported but advisory).
//!
//! `explain` is the convergence doctor's front door: it diagnoses one
//! run (a report file plus optional field frames, or a fresh hermetic
//! `--run` with frame capture on) and prints structured verdicts —
//! stall, oscillation, divergence, persistent hotspot bins,
//! spreading-vs-legalization displacement conflict — exiting 1 when any
//! is Critical. With `--base` it compares two runs instead and
//! localizes each regression to a stage and, when frames are given, a
//! grid region. `--doctor stall` flattens the `place.outer` series
//! in-memory before diagnosis — the CI self-test knob. `render` turns a
//! frames artifact into per-frame SVG heatmaps; `summarize --ledger`
//! prints per-fingerprint run groups with their latest QoR snapshot.

use cp_bench::qor_gate::{self, Baseline};
use cp_trace::json::{fmt_f64, parse, validate};
use cp_trace::ledger::{self, Direction};
use cp_trace::{
    analysis, Analysis, DecodedFrame, DiffOptions, Doctor, Severity, TraceDiff, Verdict,
    VerdictKind,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Exit code when `gate --timeout-s` expires — distinct from the
/// gate-fail exit (1) and the usage/error exit (2).
const EXIT_TIMEOUT: u8 = 3;

/// Repo-root-relative path, resolved from this crate's manifest so the
/// bin works from any working directory.
fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn load_analysis(path: &str) -> Result<Analysis, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = parse(&src).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    Analysis::from_json(&doc).map_err(|e| format!("`{path}` is not a trace report: {e}"))
}

/// Parses `--flag value` style options out of `args`, returning the
/// positional arguments. Unknown flags are an error.
fn split_args(
    args: &[String],
    flags: &mut [(&str, &mut Option<String>)],
    switches: &mut [(&str, &mut bool)],
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut i = 0;
    'outer: while i < args.len() {
        let a = &args[i];
        for (name, slot) in switches.iter_mut() {
            if a == name {
                **slot = true;
                i += 1;
                continue 'outer;
            }
        }
        for (name, slot) in flags.iter_mut() {
            if a == name {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("`{name}` needs a value"))?;
                **slot = Some(v.clone());
                i += 2;
                continue 'outer;
            }
        }
        if a.starts_with('-') {
            return Err(format!("unknown option `{a}`"));
        }
        positional.push(a.clone());
        i += 1;
    }
    Ok(positional)
}

fn summarize(args: &[String]) -> Result<(), String> {
    let mut ledger_path = None;
    let pos = split_args(args, &mut [("--ledger", &mut ledger_path)], &mut [])?;
    if let Some(lp) = ledger_path {
        if !pos.is_empty() {
            return Err(format!(
                "summarize --ledger takes no positional arguments, got {pos:?}"
            ));
        }
        return summarize_ledger(&lp);
    }
    let [path] = pos.as_slice() else {
        return Err(
            "usage: tracetool summarize <report.json> | summarize --ledger <ledger.jsonl>".into(),
        );
    };
    let a = load_analysis(path)?;
    println!(
        "# {} — {:.3}s, {} spans, {} dropped events",
        a.root_name(),
        a.duration_seconds(),
        a.span_count(),
        a.dropped_events
    );
    println!("\n## Self-time by span name\n");
    println!("| span | count | wall s | self s | self % |");
    println!("|---|---|---|---|---|");
    let total = a.duration_seconds().max(1e-12);
    for row in a.self_time_by_name().iter().take(20) {
        println!(
            "| {} | {} | {:.4} | {:.4} | {:.1}% |",
            row.name,
            row.count,
            row.wall_s,
            row.self_s,
            row.self_s / total * 100.0
        );
    }
    println!("\n## Critical path\n");
    for step in a.critical_path() {
        println!(
            "{}- {} ({:.4}s wall, {:.4}s self, thread {})",
            "  ".repeat(step.depth),
            step.name,
            step.wall_s,
            step.self_s,
            step.thread
        );
    }
    let qor = a.gauges_with_prefix("qor.");
    if !qor.is_empty() {
        println!("\n## QoR gauges\n");
        for (name, value) in qor {
            println!("- {name}: {value}");
        }
    }
    let mem = a.gauges_with_prefix("mem.");
    if !mem.is_empty() {
        println!("\n## Memory gauges (alloc-telemetry)\n");
        for (name, value) in mem {
            println!("- {name}: {value}");
        }
    }
    Ok(())
}

/// `summarize --ledger`: per-fingerprint run groups in first-appearance
/// order — run count, last status, and the latest entry's `qor.*`
/// snapshot.
fn summarize_ledger(path: &str) -> Result<(), String> {
    let entries = ledger::load(std::path::Path::new(path))?;
    let mut order: Vec<u64> = Vec::new();
    let mut groups: std::collections::BTreeMap<u64, Vec<&ledger::LedgerEntry>> =
        std::collections::BTreeMap::new();
    for e in &entries {
        if !groups.contains_key(&e.fingerprint) {
            order.push(e.fingerprint);
        }
        groups.entry(e.fingerprint).or_default().push(e);
    }
    println!(
        "# {path} — {} entries, {} fingerprint group(s)",
        entries.len(),
        order.len()
    );
    for fp in order {
        let group = &groups[&fp];
        let Some(last) = group.last() else { continue };
        println!(
            "\n## {:016x} — {} ({} run{}, last: {}, {} threads)",
            fp,
            last.design,
            group.len(),
            if group.len() == 1 { "" } else { "s" },
            last.status,
            last.threads
        );
        if last.qor.is_empty() {
            println!("- (no qor gauges captured)");
        }
        for (name, value) in &last.qor {
            println!("- {name}: {}", fmt_f64(*value));
        }
    }
    Ok(())
}

fn diff(args: &[String]) -> Result<bool, String> {
    let (mut rel, mut abs, mut metric_rel) = (None, None, None);
    let pos = split_args(
        args,
        &mut [
            ("--rel", &mut rel),
            ("--abs", &mut abs),
            ("--metric-rel", &mut metric_rel),
        ],
        &mut [],
    )?;
    let [base_path, new_path] = pos.as_slice() else {
        return Err(
            "usage: tracetool diff <base.json> <new.json> [--rel R] [--abs S] [--metric-rel M]"
                .into(),
        );
    };
    let parse_f = |s: Option<String>, what: &str| -> Result<Option<f64>, String> {
        s.map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("`{what}` must be a number, got `{v}`"))
        })
        .transpose()
    };
    let mut opts = DiffOptions::default();
    if let Some(v) = parse_f(rel, "--rel")? {
        opts.time_rel_tol = v;
    }
    if let Some(v) = parse_f(abs, "--abs")? {
        opts.time_abs_tol_s = v;
    }
    if let Some(v) = parse_f(metric_rel, "--metric-rel")? {
        opts.metric_rel_tol = v;
    }
    let base = load_analysis(base_path)?;
    let new = load_analysis(new_path)?;
    let d = TraceDiff::between(&base, &new, &opts);
    if d.is_empty() {
        println!("no differences beyond tolerances");
        return Ok(false);
    }
    println!("| kind | name | base | new | delta |");
    println!("|---|---|---|---|---|");
    for e in &d.entries {
        println!(
            "| {:?} | {} | {:.6} | {:.6} | {:+.6} |",
            e.kind,
            e.name,
            e.base,
            e.new,
            e.delta()
        );
    }
    let regressions = d.regressions().len();
    println!(
        "\n{} entries, {} regression(s)",
        d.entries.len(),
        regressions
    );
    Ok(regressions > 0)
}

fn flamegraph(args: &[String]) -> Result<(), String> {
    let mut out = None;
    let pos = split_args(args, &mut [("-o", &mut out)], &mut [])?;
    let [path] = pos.as_slice() else {
        return Err("usage: tracetool flamegraph <report.json> [-o out.folded]".into());
    };
    let folded = load_analysis(path)?.folded();
    match out {
        Some(dest) => {
            std::fs::write(&dest, &folded).map_err(|e| format!("cannot write `{dest}`: {e}"))?;
            eprintln!(
                "wrote {} ({} stacks) — load it in speedscope or inferno-flamegraph",
                dest,
                folded.lines().count()
            );
        }
        None => print!("{folded}"),
    }
    Ok(())
}

/// Runs the min-of-N gate flow reps, optionally bounded by a wall-clock
/// deadline enforced from a watchdog thread. `Ok(None)` means the
/// deadline expired before every rep finished.
fn gate_reps(
    reps: usize,
    timeout: Option<Duration>,
    large: bool,
) -> Result<Option<Vec<Analysis>>, String> {
    let run_all = move || -> Result<Vec<Analysis>, String> {
        let mut out = Vec::new();
        for rep in 0..reps {
            let t0 = Instant::now();
            let report = if large {
                qor_gate::run_gate_flow_large()
            } else {
                qor_gate::run_gate_flow()
            }
            .map_err(|e| format!("gate flow: {e}"))?;
            let trace = report.trace.as_ref().ok_or("gate flow produced no trace")?;
            eprintln!(
                "gate rep {}/{}: {:.3}s, hpwl {}",
                rep + 1,
                reps,
                t0.elapsed().as_secs_f64(),
                report.hpwl
            );
            out.push(Analysis::from_report(trace).map_err(|e| format!("analyze gate trace: {e}"))?);
        }
        Ok(out)
    };
    match timeout {
        None => run_all().map(Some),
        Some(limit) => {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                let _ = tx.send(run_all());
            });
            match rx.recv_timeout(limit) {
                Ok(result) => result.map(Some),
                Err(_) => Ok(None),
            }
        }
    }
}

fn gate(args: &[String]) -> Result<u8, String> {
    let (mut baseline_path, mut from, mut reps, mut timeout_s) = (None, None, None, None);
    let (mut write, mut large) = (false, false);
    let pos = split_args(
        args,
        &mut [
            ("--baseline", &mut baseline_path),
            ("--from", &mut from),
            ("--reps", &mut reps),
            ("--timeout-s", &mut timeout_s),
        ],
        &mut [("--write", &mut write), ("--large", &mut large)],
    )?;
    if !pos.is_empty() {
        return Err(format!("gate takes no positional arguments, got {pos:?}"));
    }
    let baseline_path = baseline_path
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            repo_path(if large {
                "baselines/QOR_large.json"
            } else {
                "baselines/QOR_baseline.json"
            })
        });
    let reps: usize = reps
        .map(|v| {
            v.parse()
                .map_err(|_| format!("`--reps` must be an integer, got `{v}`"))
        })
        .transpose()?
        .unwrap_or(2)
        .max(1);
    let timeout = timeout_s
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("`--timeout-s` must be a number, got `{v}`"))
        })
        .transpose()?
        .map(Duration::from_secs_f64);

    // Collect the run(s) to gate: an existing report file, or fresh
    // min-of-N executions of the pinned gate flow.
    let analyses: Vec<Analysis> = match &from {
        Some(path) => vec![load_analysis(path)?],
        None => match gate_reps(reps, timeout, large)? {
            Some(out) => out,
            None => {
                println!(
                    "gate TIMEOUT: {} rep(s) did not finish within {}s",
                    reps,
                    timeout.map_or(0.0, |t| t.as_secs_f64())
                );
                return Ok(EXIT_TIMEOUT);
            }
        },
    };
    // QoR gauges are bitwise-deterministic, so any rep represents them;
    // the runtime check wants the fastest rep. Pick the one with the
    // smallest traced duration.
    let best = analyses
        .iter()
        .min_by(|a, b| {
            a.duration_seconds()
                .partial_cmp(&b.duration_seconds())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .ok_or("no runs to gate")?;

    if write {
        let (design, scale) = if large {
            ("ariane", qor_gate::GATE_LARGE_SCALE)
        } else {
            ("aes", qor_gate::GATE_SCALE)
        };
        let b = Baseline::from_analysis(best, design, scale);
        if let Some(dir) = baseline_path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(&baseline_path, b.to_json())
            .map_err(|e| format!("cannot write `{}`: {e}", baseline_path.display()))?;
        println!(
            "wrote baseline {} ({} qor gauges, {} stage shares)",
            baseline_path.display(),
            b.qor.len(),
            b.self_shares.len()
        );
        return Ok(0);
    }

    let src = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read `{}`: {e} (generate it with `tracetool gate --write`)",
            baseline_path.display()
        )
    })?;
    let baseline =
        Baseline::from_json(&src).map_err(|e| format!("`{}`: {e}", baseline_path.display()))?;
    let failures = baseline.check(best);
    if failures.is_empty() {
        println!(
            "gate PASS: {} qor gauges and {} stage shares within tolerance of {}",
            baseline.qor.len(),
            baseline.self_shares.len(),
            baseline_path.display()
        );
        return Ok(0);
    }
    println!("gate FAIL vs {}:", baseline_path.display());
    for f in &failures {
        println!("- {f}");
    }
    Ok(1)
}

/// Deterministic fault-injection sweep: arm each site at seed-derived
/// hit indices and assert the resilience contract (typed error, clean
/// recorded recovery, or bitwise-identical resume — never a panic, hang
/// or silent QoR drift). Needs `--features fault-injection`.
fn chaos(args: &[String]) -> Result<u8, String> {
    let (mut seeds, mut timeout_s, mut site) = (None, None, None);
    let pos = split_args(
        args,
        &mut [
            ("--seeds", &mut seeds),
            ("--timeout-s", &mut timeout_s),
            ("--site", &mut site),
        ],
        &mut [],
    )?;
    if !pos.is_empty() {
        return Err(format!("chaos takes no positional arguments, got {pos:?}"));
    }
    let seeds: u64 = seeds
        .map(|v| {
            v.parse()
                .map_err(|_| format!("`--seeds` must be an integer, got `{v}`"))
        })
        .transpose()?
        .unwrap_or(3)
        .max(1);
    let timeout = timeout_s
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("`--timeout-s` must be a number, got `{v}`"))
        })
        .transpose()?
        .map_or(Duration::from_secs(120), Duration::from_secs_f64);
    let report = cp_bench::chaos::run_chaos(seeds, timeout, site.as_deref())?;
    print!("{}", report.render());
    Ok(u8::from(report.failures() > 0))
}

/// Analysis-cost bench on an existing report (satellite of the PR-4
/// overhead table): wall-clock of parse, self-time aggregation and a
/// self-diff, written as `BENCH_analysis.json`.
fn bench(args: &[String]) -> Result<(), String> {
    let mut out = None;
    let pos = split_args(args, &mut [("-o", &mut out)], &mut [])?;
    let [path] = pos.as_slice() else {
        return Err("usage: tracetool bench <report.json> [-o BENCH_analysis.json]".into());
    };
    let out = out.unwrap_or_else(|| "BENCH_analysis.json".to_string());
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;

    let t0 = Instant::now();
    let doc = parse(&src).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    let parse_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let a = Analysis::from_json(&doc).map_err(|e| format!("`{path}`: {e}"))?;
    let build_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let rows = a.self_time_by_name();
    let folded = a.folded();
    let self_time_s = t2.elapsed().as_secs_f64();

    let t3 = Instant::now();
    let d = TraceDiff::between(&a, &a, &DiffOptions::default());
    let diff_s = t3.elapsed().as_secs_f64();
    if !d.is_empty() {
        return Err("self-diff must be empty".into());
    }

    let json = format!(
        "{{\n  \"bench\": \"trace_analysis\",\n  \"report\": \"{}\",\n  \
         \"report_bytes\": {},\n  \"spans\": {},\n  \"span_names\": {},\n  \
         \"folded_stacks\": {},\n  \"parse_s\": {:.6},\n  \"build_s\": {:.6},\n  \
         \"self_time_s\": {:.6},\n  \"diff_s\": {:.6}\n}}\n",
        cp_trace::json::escape(path),
        src.len(),
        a.span_count(),
        rows.len(),
        folded.lines().count(),
        parse_s,
        build_s,
        self_time_s,
        diff_s,
    );
    std::fs::write(&out, &json).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    println!(
        "analyzed {} spans: parse {:.3}ms, build {:.3}ms, self-time+folded {:.3}ms, diff {:.3}ms -> {}",
        a.span_count(),
        parse_s * 1e3,
        build_s * 1e3,
        self_time_s * 1e3,
        diff_s * 1e3,
        out
    );
    Ok(())
}

/// FNV-1a 64 over a byte slice — the artifact-identity fingerprint used
/// when harvesting existing TRACE reports (there is no netlist to run
/// the checkpoint fingerprint over, but the same bytes must land in the
/// same trend group, doctored or not).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const HARVEST_USAGE: &str = "usage: tracetool harvest [TRACE_report.json ...] \
     [--run PROFILE@SCALE] [--ledger F] [--design NAME] [--doctor qor.NAME=FACTOR]";

/// Backfills ledger entries from existing TRACE report artifacts and/or
/// a fresh hermetic flow, appending to the run ledger.
fn harvest(args: &[String]) -> Result<(), String> {
    let (mut ledger_path, mut run, mut doctor, mut design) = (None, None, None, None);
    let pos = split_args(
        args,
        &mut [
            ("--ledger", &mut ledger_path),
            ("--run", &mut run),
            ("--doctor", &mut doctor),
            ("--design", &mut design),
        ],
        &mut [],
    )?;
    if pos.is_empty() && run.is_none() {
        return Err(HARVEST_USAGE.into());
    }
    let ledger_path =
        std::path::PathBuf::from(ledger_path.unwrap_or_else(|| "runs/ledger.jsonl".to_string()));
    let doctor = doctor
        .map(|spec| -> Result<(String, f64), String> {
            let (name, factor) = spec
                .split_once('=')
                .ok_or_else(|| format!("`--doctor` wants qor.NAME=FACTOR, got `{spec}`"))?;
            let factor = factor
                .parse::<f64>()
                .map_err(|_| format!("`--doctor` factor must be a number, got `{factor}`"))?;
            Ok((name.to_string(), factor))
        })
        .transpose()?;

    let mut entries: Vec<ledger::LedgerEntry> = Vec::new();
    for path in &pos {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let src = String::from_utf8_lossy(&bytes);
        let doc = parse(&src).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
        let label = design.clone().unwrap_or_else(|| {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.clone())
        });
        let entry = ledger::entry_from_report_json(&doc, fnv1a64(&bytes), &label)
            .map_err(|e| format!("`{path}`: {e}"))?;
        entries.push(entry);
    }
    if let Some(spec) = &run {
        let (profile_name, scale) = spec
            .split_once('@')
            .ok_or_else(|| format!("`--run` wants PROFILE@SCALE (e.g. aes@0.02), got `{spec}`"))?;
        let profile = qor_gate::parse_profile(profile_name)
            .ok_or_else(|| format!("unknown profile `{profile_name}`"))?;
        let scale: f64 = scale
            .parse()
            .map_err(|_| format!("`--run` scale must be a number, got `{scale}`"))?;
        let t0 = Instant::now();
        let (report, fingerprint) =
            qor_gate::run_hermetic(profile, scale).map_err(|e| format!("hermetic flow: {e}"))?;
        let trace = report
            .trace
            .as_ref()
            .ok_or("hermetic flow produced no trace")?;
        let label = design
            .clone()
            .unwrap_or_else(|| format!("{}@{scale}", profile.name()));
        let threads = u32::try_from(report.timings.threads).unwrap_or(u32::MAX);
        entries.push(
            ledger::LedgerEntry::new(fingerprint, &label, "harvest")
                .with_threads(threads)
                .with_options(&format!("gate_options scale={scale}"))
                .capture_trace(trace),
        );
        eprintln!(
            "hermetic {} @ {scale}: {:.3}s, hpwl {}",
            profile.name(),
            t0.elapsed().as_secs_f64(),
            report.hpwl
        );
    }
    for entry in entries {
        let entry = match &doctor {
            Some((name, factor)) => entry.doctor(name, *factor),
            None => entry,
        };
        ledger::append(&ledger_path, &entry).map_err(|e| format!("append: {e}"))?;
        println!(
            "appended {:016x} {} ({}, {} qor gauges, {} stage rows) -> {}",
            entry.fingerprint,
            entry.design,
            entry.status,
            entry.qor.len(),
            entry.stages.len(),
            ledger_path.display()
        );
    }
    Ok(())
}

/// Cross-run trend gate over the ledger: prints the per-group metric
/// movements and reports whether any QoR metric regressed.
fn trend_cmd(args: &[String]) -> Result<bool, String> {
    let (mut ledger_path, mut format, mut metric_rel, mut rel, mut abs) =
        (None, None, None, None, None);
    let pos = split_args(
        args,
        &mut [
            ("--ledger", &mut ledger_path),
            ("--format", &mut format),
            ("--metric-rel", &mut metric_rel),
            ("--rel", &mut rel),
            ("--abs", &mut abs),
        ],
        &mut [],
    )?;
    if !pos.is_empty() {
        return Err(format!("trend takes no positional arguments, got {pos:?}"));
    }
    let ledger_path =
        std::path::PathBuf::from(ledger_path.unwrap_or_else(|| "runs/ledger.jsonl".to_string()));
    let parse_f = |s: Option<String>, what: &str| -> Result<Option<f64>, String> {
        s.map(|v| {
            v.parse::<f64>()
                .map_err(|_| format!("`{what}` must be a number, got `{v}`"))
        })
        .transpose()
    };
    let mut opts = DiffOptions::default();
    if let Some(v) = parse_f(metric_rel, "--metric-rel")? {
        opts.metric_rel_tol = v;
    }
    if let Some(v) = parse_f(rel, "--rel")? {
        opts.time_rel_tol = v;
    }
    if let Some(v) = parse_f(abs, "--abs")? {
        opts.time_abs_tol_s = v;
    }
    let entries = ledger::load(&ledger_path)?;
    let report = ledger::trend(&entries, &opts);
    let dir_label = |d: Direction| match d {
        Direction::LowerIsBetter => "lower",
        Direction::HigherIsBetter => "higher",
        Direction::Informational => "info",
    };
    let verdict = |r: &ledger::TrendRow| {
        if r.regressed {
            "REGRESSED"
        } else if r.improved {
            "improved"
        } else {
            "ok"
        }
    };
    match format.as_deref().unwrap_or("table") {
        "table" => {
            if report.rows.is_empty() {
                println!("no multi-run fingerprint groups to compare");
            } else {
                println!("| fingerprint | design | metric | baseline | latest | delta % | runs | dir | verdict |");
                println!("|---|---|---|---|---|---|---|---|---|");
                for r in &report.rows {
                    println!(
                        "| {:016x} | {} | {} | {:.6} | {:.6} | {:+.3} | {} | {} | {} |",
                        r.fingerprint,
                        r.design,
                        r.metric,
                        r.baseline,
                        r.latest,
                        r.delta_pct(),
                        r.runs,
                        dir_label(r.direction),
                        verdict(r)
                    );
                }
            }
            println!(
                "\n{} entries, {} group(s) ({} singleton), {} regression(s)",
                entries.len(),
                report.groups,
                report.singletons,
                report.regressions().len()
            );
        }
        "tsv" => {
            println!(
                "fingerprint\tdesign\tmetric\tbaseline\tlatest\tdelta_pct\truns\tdir\tverdict"
            );
            for r in &report.rows {
                println!(
                    "{:016x}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    r.fingerprint,
                    r.design,
                    r.metric,
                    fmt_f64(r.baseline),
                    fmt_f64(r.latest),
                    fmt_f64(r.delta_pct()),
                    r.runs,
                    dir_label(r.direction),
                    verdict(r)
                );
            }
        }
        "json" => {
            let mut out = String::new();
            out.push_str(&format!(
                "{{\"entries\": {}, \"groups\": {}, \"singletons\": {}, \"regressions\": {}, \"rows\": [",
                entries.len(),
                report.groups,
                report.singletons,
                report.regressions().len()
            ));
            for (i, r) in report.rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"fingerprint\": \"{:016x}\", \"design\": \"{}\", \"metric\": \"{}\", \
                     \"baseline\": {}, \"latest\": {}, \"delta_pct\": {}, \"runs\": {}, \
                     \"direction\": \"{}\", \"regressed\": {}, \"improved\": {}}}",
                    r.fingerprint,
                    cp_trace::json::escape(&r.design),
                    cp_trace::json::escape(&r.metric),
                    fmt_f64(r.baseline),
                    fmt_f64(r.latest),
                    fmt_f64(r.delta_pct()),
                    r.runs,
                    dir_label(r.direction),
                    r.regressed,
                    r.improved
                ));
            }
            out.push_str("]}\n");
            print!("{out}");
        }
        other => {
            return Err(format!(
                "`--format` must be table, tsv or json, got `{other}`"
            ))
        }
    }
    Ok(!report.regressions().is_empty())
}

/// Loads a `field_frames.schema.json`-shaped artifact and decodes every
/// frame to its dense grid.
fn load_frames(path: &str) -> Result<Vec<DecodedFrame>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = parse(&src).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    cp_trace::fields::decode_json(&doc).map_err(|e| format!("`{path}`: {e}"))
}

fn print_verdicts(verdicts: &[Verdict]) {
    if verdicts.is_empty() {
        println!("no anomalies detected");
        return;
    }
    for v in verdicts {
        println!(
            "[{}] {} @ {}",
            v.severity.as_str(),
            v.kind.as_str(),
            v.stage
        );
        println!("  evidence:   {}", v.evidence);
        println!("  suggestion: {}", v.suggestion);
    }
}

/// The `--doctor stall` self-test knob: flattens the named columns of
/// every `series_name` row to the first row's value within each
/// emitting-span group, so the doctor sees a converged-but-stuck run.
fn flatten_series(trace: &mut cp_trace::TraceReport, series_name: &str, keys: &[&str]) {
    let mut first: std::collections::BTreeMap<u64, Vec<(&'static str, f64)>> =
        std::collections::BTreeMap::new();
    for row in trace.series.iter_mut().filter(|r| r.name == series_name) {
        let f = first.entry(row.span).or_insert_with(|| row.values.clone());
        for (k, v) in row.values.iter_mut() {
            if keys.contains(&(*k as &str)) {
                if let Some(&(_, fv)) = f.iter().find(|(fk, _)| fk == k) {
                    *v = fv;
                }
            }
        }
    }
}

const EXPLAIN_USAGE: &str = "usage: tracetool explain <report.json> [--fields F.json] [--base B.json] [--base-fields BF.json]\n\
     \x20      tracetool explain --run PROFILE@SCALE [--fields-out F] [--report-out R] [--doctor stall]";

/// The convergence doctor: diagnose one run (exit 1 on any Critical
/// verdict), or compare two and localize regressions (exit 1 on any
/// Regression verdict).
fn explain(args: &[String]) -> Result<bool, String> {
    let (mut fields, mut base, mut base_fields) = (None, None, None);
    let (mut run, mut fields_out, mut report_out, mut doctor) = (None, None, None, None);
    let pos = split_args(
        args,
        &mut [
            ("--fields", &mut fields),
            ("--base", &mut base),
            ("--base-fields", &mut base_fields),
            ("--run", &mut run),
            ("--fields-out", &mut fields_out),
            ("--report-out", &mut report_out),
            ("--doctor", &mut doctor),
        ],
        &mut [],
    )?;
    if let Some(d) = &doctor {
        if d != "stall" {
            return Err(format!("`--doctor` only knows `stall`, got `{d}`"));
        }
        if run.is_none() {
            return Err("`--doctor` needs `--run`".into());
        }
    }

    // Fresh hermetic run with frame capture on.
    if let Some(spec) = run {
        if !pos.is_empty() || base.is_some() || fields.is_some() {
            return Err(EXPLAIN_USAGE.into());
        }
        let (profile_name, scale) = spec
            .split_once('@')
            .ok_or_else(|| format!("`--run` wants PROFILE@SCALE (e.g. aes@0.02), got `{spec}`"))?;
        let profile = qor_gate::parse_profile(profile_name)
            .ok_or_else(|| format!("unknown profile `{profile_name}`"))?;
        let scale: f64 = scale
            .parse()
            .map_err(|_| format!("`--run` scale must be a number, got `{scale}`"))?;
        let t0 = Instant::now();
        let (report, capture, _) = qor_gate::run_hermetic_fields(profile, scale)
            .map_err(|e| format!("hermetic flow: {e}"))?;
        let mut trace = report
            .trace
            .clone()
            .ok_or("hermetic flow produced no trace")?;
        if doctor.is_some() {
            flatten_series(&mut trace, "place.outer", &["hpwl", "overflow"]);
        }
        eprintln!(
            "hermetic {} @ {scale}: {:.3}s, {} field frame(s) ({} dropped)",
            profile.name(),
            t0.elapsed().as_secs_f64(),
            capture.frames.len(),
            capture.dropped_frames
        );
        if let Some(dest) = fields_out {
            let json = cp_trace::fields::to_json(&capture);
            std::fs::write(&dest, json).map_err(|e| format!("cannot write `{dest}`: {e}"))?;
            eprintln!("wrote {dest}");
        }
        if let Some(dest) = report_out {
            std::fs::write(&dest, trace.to_json())
                .map_err(|e| format!("cannot write `{dest}`: {e}"))?;
            eprintln!("wrote {dest}");
        }
        let frames = cp_trace::fields::decode(&capture);
        let verdicts = Doctor::default().diagnose_report(&trace, &frames);
        print_verdicts(&verdicts);
        return Ok(verdicts.iter().any(|v| v.severity == Severity::Critical));
    }

    let [report_path] = pos.as_slice() else {
        return Err(EXPLAIN_USAGE.into());
    };
    if fields_out.is_some() || report_out.is_some() {
        return Err("`--fields-out`/`--report-out` need `--run`".into());
    }
    let new_frames = fields
        .as_deref()
        .map(load_frames)
        .transpose()?
        .unwrap_or_default();

    // Two-run comparison: localize regressions to a stage and region.
    if let Some(base_path) = base {
        let base_a = load_analysis(&base_path)?;
        let new_a = load_analysis(report_path)?;
        let base_frames = base_fields
            .as_deref()
            .map(load_frames)
            .transpose()?
            .unwrap_or_default();
        let verdicts = analysis::compare_runs(
            &base_a,
            &new_a,
            &base_frames,
            &new_frames,
            &DiffOptions::default(),
        );
        print_verdicts(&verdicts);
        return Ok(verdicts.iter().any(|v| v.kind == VerdictKind::Regression));
    }

    // Single-run diagnosis from a report artifact.
    if base_fields.is_some() {
        return Err("`--base-fields` needs `--base`".into());
    }
    let src = std::fs::read_to_string(report_path)
        .map_err(|e| format!("cannot read `{report_path}`: {e}"))?;
    let doc = parse(&src).map_err(|e| format!("`{report_path}` is not valid JSON: {e}"))?;
    let verdicts = Doctor::default()
        .diagnose_json(&doc, &new_frames)
        .map_err(|e| format!("`{report_path}`: {e}"))?;
    print_verdicts(&verdicts);
    Ok(verdicts.iter().any(|v| v.severity == Severity::Critical))
}

/// Linear three-stop color ramp for heatmap cells: quiet bins match the
/// placement SVG's core fill, mid bins its cell blue, hot bins its red.
fn heat_color(t: f64) -> String {
    const STOPS: [(f64, f64, f64); 3] = [
        (245.0, 245.0, 245.0), // #f5f5f5
        (78.0, 121.0, 167.0),  // #4e79a7
        (225.0, 87.0, 89.0),   // #e15759
    ];
    let t = if t.is_finite() {
        t.clamp(0.0, 1.0)
    } else {
        0.0
    } * 2.0;
    let (lo, hi, f) = if t <= 1.0 {
        (STOPS[0], STOPS[1], t)
    } else {
        (STOPS[1], STOPS[2], t - 1.0)
    };
    let ch = |a: f64, b: f64| (a + (b - a) * f).round() as u8;
    format!(
        "#{:02x}{:02x}{:02x}",
        ch(lo.0, hi.0),
        ch(lo.1, hi.1),
        ch(lo.2, hi.2)
    )
}

/// Renders one decoded frame as an SVG heatmap, `max` being the
/// sequence-wide normalization ceiling. Bin (0, 0) sits at the lower
/// left, matching the placer's grid origin (SVG y grows downward, so
/// rows are flipped).
fn frame_svg(frame: &DecodedFrame, max: f64) -> String {
    use std::fmt::Write as _;
    let (nx, ny) = (frame.nx.max(1), frame.ny.max(1));
    let cell = 800.0 / nx.max(ny) as f64;
    let (w, h) = (nx as f64 * cell, ny as f64 * cell);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" viewBox=\"0 0 {w:.1} {h:.1}\">"
    );
    let _ = writeln!(
        out,
        "<title>{} @ {} iter {}</title>",
        cp_trace::json::escape(&frame.name),
        cp_trace::json::escape(&frame.stage),
        frame.iter
    );
    let _ = writeln!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"#f5f5f5\" stroke=\"#222222\"/>"
    );
    let norm = if max > 0.0 { max } else { 1.0 };
    for by in 0..ny {
        for bx in 0..nx {
            let v = f64::from(frame.values[by * nx + bx]);
            if v <= 0.0 {
                continue;
            }
            let x = bx as f64 * cell;
            let y = (ny - 1 - by) as f64 * cell;
            let _ = writeln!(
                out,
                "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{cell:.2}\" height=\"{cell:.2}\" fill=\"{}\"/>",
                heat_color(v / norm)
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// `render`: SVG heatmap sequences from a field-frames artifact, one
/// file per frame, normalized per (name, stage) sequence.
fn render(args: &[String]) -> Result<(), String> {
    let (mut out_dir, mut name_filter) = (None, None);
    let pos = split_args(
        args,
        &mut [("--out-dir", &mut out_dir), ("--name", &mut name_filter)],
        &mut [],
    )?;
    let [path] = pos.as_slice() else {
        return Err("usage: tracetool render <fields.json> [--out-dir DIR] [--name SUBSTR]".into());
    };
    let frames = load_frames(path)?;
    let out_dir = std::path::PathBuf::from(out_dir.unwrap_or_else(|| "frames_svg".to_string()));
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", out_dir.display()))?;

    // Group into (name, stage) sequences in first-appearance order.
    let mut sequences: Vec<((String, String), Vec<&DecodedFrame>)> = Vec::new();
    for f in &frames {
        if let Some(filter) = &name_filter {
            if !f.name.contains(filter.as_str()) {
                continue;
            }
        }
        let key = (f.name.clone(), f.stage.clone());
        match sequences.iter_mut().find(|(k, _)| *k == key) {
            Some((_, seq)) => seq.push(f),
            None => sequences.push((key, vec![f])),
        }
    }
    if sequences.is_empty() {
        return Err(match name_filter {
            Some(filter) => format!("no frames match `--name {filter}` in `{path}`"),
            None => format!("no frames in `{path}`"),
        });
    }
    let mut written = 0usize;
    for (si, ((name, stage), seq)) in sequences.iter().enumerate() {
        let max = seq
            .iter()
            .flat_map(|f| f.values.iter())
            .fold(0.0f64, |m, &v| m.max(f64::from(v)));
        for (fi, frame) in seq.iter().enumerate() {
            let file = out_dir.join(format!(
                "{si:02}_{}_{}_{fi:04}.svg",
                sanitize(name),
                sanitize(stage)
            ));
            std::fs::write(&file, frame_svg(frame, max))
                .map_err(|e| format!("cannot write `{}`: {e}", file.display()))?;
            written += 1;
        }
        println!(
            "{name} @ {stage}: {} frame(s), {}x{}, max {}",
            seq.len(),
            seq.first().map_or(0, |f| f.nx),
            seq.first().map_or(0, |f| f.ny),
            fmt_f64(max)
        );
    }
    println!("wrote {written} SVG(s) -> {}", out_dir.display());
    Ok(())
}

/// Validates a JSON file against a repo schema (used by CI for the
/// committed baseline).
fn check_schema(args: &[String]) -> Result<bool, String> {
    let pos = split_args(args, &mut [], &mut [])?;
    let [doc_path, schema_path] = pos.as_slice() else {
        return Err("usage: tracetool check-schema <doc.json> <schema.json>".into());
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read `{p}`: {e}"));
    let doc = parse(&read(doc_path)?).map_err(|e| format!("`{doc_path}`: {e}"))?;
    let schema = parse(&read(schema_path)?).map_err(|e| format!("`{schema_path}`: {e}"))?;
    let violations = validate(&doc, &schema);
    if violations.is_empty() {
        println!("{doc_path} conforms to {schema_path}");
        return Ok(false);
    }
    println!("{doc_path} violates {schema_path}:");
    for v in &violations {
        println!("- {v}");
    }
    Ok(true)
}

const USAGE: &str = "usage: tracetool <summarize|diff|flamegraph|gate|chaos|bench|harvest|trend|explain|render|check-schema> ...\n\
     \n\
     summarize <report.json>                    self-time table, critical path, QoR gauges\n\
     summarize --ledger <ledger.jsonl>          per-fingerprint run groups + latest QoR snapshot\n\
     diff <base.json> <new.json>                span/metric diff (--rel/--abs/--metric-rel)\n\
     flamegraph <report.json> [-o out.folded]   collapsed stacks for speedscope/inferno\n\
     gate [--baseline F] [--from R] [--reps N] [--write] [--timeout-s S] [--large]\n\
     \x20                                          run the pinned flow and gate vs the baseline\n\
     \x20                                          (exit 3 when the wall-clock timeout expires;\n\
     \x20                                          --large gates the ~60k-cell Ariane flow vs\n\
     \x20                                          baselines/QOR_large.json)\n\
     chaos [--seeds N] [--timeout-s S] [--site SUBSTR]\n\
     \x20                                          fault-injection sweep (needs --features fault-injection)\n\
     bench <report.json> [-o out.json]          analysis-cost bench -> BENCH_analysis.json\n\
     harvest [REPORT.json ...] [--run PROFILE@SCALE] [--ledger F] [--design NAME] [--doctor qor.NAME=FACTOR]\n\
     \x20                                          backfill run-ledger entries from TRACE artifacts\n\
     \x20                                          or a fresh hermetic flow (default ledger:\n\
     \x20                                          runs/ledger.jsonl; --doctor is the trend-gate\n\
     \x20                                          self-test knob)\n\
     trend [--ledger F] [--format table|tsv|json] [--metric-rel M] [--rel R] [--abs S]\n\
     \x20                                          cross-run QoR trend gate over the ledger\n\
     \x20                                          (exit 1 on regression; wall time advisory)\n\
     explain <report.json> [--fields F.json] [--base B.json] [--base-fields BF.json]\n\
     explain --run PROFILE@SCALE [--fields-out F] [--report-out R] [--doctor stall]\n\
     \x20                                          convergence doctor: stall/oscillation/divergence/\n\
     \x20                                          hotspot/displacement verdicts (exit 1 on Critical);\n\
     \x20                                          --base compares two runs and localizes regressions\n\
     \x20                                          to a stage and grid region (exit 1 on Regression)\n\
     render <fields.json> [--out-dir DIR] [--name SUBSTR]\n\
     \x20                                          SVG heatmap sequences from a field-frames artifact\n\
     check-schema <doc.json> <schema.json>      validate a JSON file against a repo schema";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let outcome = match cmd.as_str() {
        "summarize" => summarize(rest).map(|()| 0),
        "diff" => diff(rest).map(u8::from),
        "flamegraph" => flamegraph(rest).map(|()| 0),
        "gate" => gate(rest),
        "chaos" => chaos(rest),
        "bench" => bench(rest).map(|()| 0),
        "harvest" => harvest(rest).map(|()| 0),
        "trend" => trend_cmd(rest).map(u8::from),
        "explain" => explain(rest).map(u8::from),
        "render" => render(rest).map(|()| 0),
        "check-schema" => check_schema(rest).map(u8::from),
        _ => {
            eprintln!("unknown subcommand `{cmd}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("tracetool {cmd}: {e}");
            ExitCode::from(2)
        }
    }
}
