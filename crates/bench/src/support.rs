//! Experiment support: scaled designs, flow presets and table printing.

use cp_core::flow::FlowOptions;
use cp_core::ClusteringOptions;
use cp_netlist::generator::{DesignProfile, GeneratorConfig};
use cp_netlist::netlist::Netlist;
use cp_netlist::Constraints;
use cp_place::PlacerOptions;

/// The default fraction of the paper's instance counts.
pub const DEFAULT_SCALE: f64 = 1.0 / 32.0;

/// Reads the experiment scale from `CP_SCALE` (default [`DEFAULT_SCALE`]).
pub fn scale() -> f64 {
    std::env::var("CP_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(DEFAULT_SCALE)
}

/// A generated benchmark with its constraints.
#[derive(Debug, Clone)]
pub struct Bench {
    /// The Table 1 profile.
    pub profile: DesignProfile,
    /// The generated netlist.
    pub netlist: Netlist,
    /// Its constraints.
    pub constraints: Constraints,
}

impl Bench {
    /// Generates one benchmark at the harness scale.
    pub fn generate(profile: DesignProfile) -> Self {
        Self::generate_at(profile, scale())
    }

    /// Generates one benchmark at an explicit scale.
    pub fn generate_at(profile: DesignProfile, scale: f64) -> Self {
        let (netlist, constraints) = GeneratorConfig::from_profile(profile)
            .scale(scale)
            .generate_with_constraints();
        Self {
            profile,
            netlist,
            constraints,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self.profile {
            DesignProfile::BlackParrot => "BP",
            DesignProfile::MegaBoom => "MB",
            DesignProfile::MemPoolGroup => "MP-G",
            p => p.name(),
        }
    }
}

/// The small designs used by Tables 3 and 5 (routable in OpenROAD per the
/// paper).
pub fn small_profiles() -> Vec<DesignProfile> {
    vec![
        DesignProfile::Aes,
        DesignProfile::Jpeg,
        DesignProfile::Ariane,
    ]
}

/// All six Table 1 profiles.
pub fn all_profiles() -> Vec<DesignProfile> {
    DesignProfile::ALL.to_vec()
}

/// The flow preset used across the experiments, scaled to the harness
/// design sizes (cluster sizes and V-P&R thresholds shrink with the
/// netlists so cluster counts match the paper's regime).
pub fn flow_options() -> FlowOptions {
    let s = scale();
    // The paper shapes clusters above 200 instances and clusters average a
    // few hundred instances at full scale; scale both down, with floors
    // that keep the stages meaningful at 1/32 scale.
    let avg = ((250.0 * s * 8.0) as usize).clamp(40, 400);
    FlowOptions {
        clustering: ClusteringOptions {
            avg_cluster_size: avg,
            path_count: 20_000,
            ..Default::default()
        },
        // The paper's tuned threshold (footnote 3): shaping clusters below
        // ~200 instances hurts PPA — that held in our substrate too.
        vpr_min_instances: 200,
        placer: PlacerOptions::default(),
        ..Default::default()
    }
}

/// Prints a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a ratio like the paper's normalized columns.
pub fn fmt_norm(value: f64, baseline: f64) -> String {
    if baseline.abs() < 1e-12 {
        "NA".to_string()
    } else {
        format!("{:.3}", value / baseline)
    }
}

/// Formats WNS/TNS in the paper's units (ps / ns).
pub fn fmt_wns(ps: f64) -> String {
    format!("{:.0}", ps)
}

/// TNS is reported in ns in the paper's tables.
pub fn fmt_tns(ps: f64) -> String {
    format!("{:.2}", ps / 1000.0)
}

/// Power in W.
pub fn fmt_power(w: f64) -> String {
    format!("{:.3}", w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_positive() {
        assert!(scale() > 0.0);
    }

    #[test]
    fn bench_generation() {
        let b = Bench::generate_at(DesignProfile::Aes, 0.01);
        assert_eq!(b.name(), "aes");
        assert!(b.netlist.cell_count() > 50);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_norm(2.0, 4.0), "0.500");
        assert_eq!(fmt_norm(1.0, 0.0), "NA");
        assert_eq!(fmt_tns(-32080.0), "-32.08");
        assert_eq!(fmt_wns(-220.0), "-220");
    }

    #[test]
    fn flow_options_scale_sanely() {
        let f = flow_options();
        assert!(f.clustering.avg_cluster_size >= 40);
        assert!(f.vpr_min_instances == 200);
    }
}
