//! Shared harness for the table/figure reproduction binaries and benches.
//!
//! Every experiment binary (`table1` … `table6`, `fig5`, `gnn_eval`) pulls
//! its designs and flow settings from here so results are consistent and
//! reproducible. The global design scale comes from the `CP_SCALE`
//! environment variable (default 1/32 of the paper's instance counts) —
//! crank it up on a bigger machine to approach the paper's sizes.

pub mod chaos;
pub mod qor_gate;
pub mod support;

pub use support::*;
