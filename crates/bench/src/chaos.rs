//! Deterministic chaos sweep over the flow's fault-injection sites.
//!
//! `tracetool chaos` arms each [`cp_resilience::sites::FAULTS`] site at a
//! seed-derived hit index, runs the resilient flow under a watchdog, and
//! asserts the resilience contract: every faulted run must end in a typed
//! error, a clean recorded recovery, or a resumable checkpoint that —
//! once the fault is disarmed — resumes to a report bitwise-identical to
//! the fault-free reference. A panic that escapes the flow, a hang, or a
//! silently different QoR (report drifted with clean diagnostics) is a
//! harness failure.
//!
//! The sweep is deterministic: hit indices come from a splitmix-style
//! hash of `(site, seed)` folded over the number of times the reference
//! run actually hit the site, so `chaos --seeds 3` names the same fault
//! schedule on every machine and thread count.

use std::time::Duration;

/// Pinned design scale for chaos runs — small enough that a full
/// sites × seeds sweep stays in CI smoke-test territory.
pub const CHAOS_SCALE: f64 = 0.01;

/// One chaos case: a fault site armed at a specific hit index.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Fault site that was armed.
    pub site: &'static str,
    /// Sweep seed the hit index was derived from.
    pub seed: u64,
    /// 1-based hit index the fault fired on (0 = site never reached).
    pub at_hit: u64,
    /// Human-readable outcome classification.
    pub outcome: String,
    /// `true` when the case violated the resilience contract.
    pub failed: bool,
}

/// Aggregate result of a chaos sweep.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Every case that ran, in deterministic sweep order.
    pub cases: Vec<CaseReport>,
}

impl ChaosReport {
    /// Number of failed cases.
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| c.failed).count()
    }

    /// One line per case plus a summary tail, ready to print.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.cases {
            out.push_str(&format!(
                "{} {:<24} seed {:>2} hit {:>5}  {}\n",
                if c.failed { "FAIL" } else { "  ok" },
                c.site,
                c.seed,
                c.at_hit,
                c.outcome
            ));
        }
        out.push_str(&format!(
            "chaos: {} cases, {} failed\n",
            self.cases.len(),
            self.failures()
        ));
        out
    }
}

#[cfg(not(feature = "fault-injection"))]
mod imp {
    use super::{ChaosReport, Duration};

    /// Stub: the registry is compiled out of this build.
    ///
    /// # Errors
    ///
    /// Always — rebuild with `--features fault-injection`.
    pub fn run_chaos(
        _seeds: u64,
        _timeout: Duration,
        _site_filter: Option<&str>,
    ) -> Result<ChaosReport, String> {
        Err(
            "chaos needs the fault-injection feature: rerun with `cargo run -p cp-bench \
             --features fault-injection --bin tracetool -- chaos`"
                .to_string(),
        )
    }
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::{CaseReport, ChaosReport, Duration, CHAOS_SCALE};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;
    use std::sync::mpsc;

    use cp_core::flow::{FlowOptions, FlowReport, ShapeMode};
    use cp_core::{run_flow_resilient, FlowError, ResilienceOptions, RunControl};
    use cp_netlist::generator::DesignProfile;
    use cp_resilience::{fault, sites};

    use crate::support::Bench;

    /// The pinned chaos design (Aes at [`CHAOS_SCALE`]).
    fn chaos_bench() -> Bench {
        Bench::generate_at(DesignProfile::Aes, CHAOS_SCALE)
    }

    /// Exact V-P&R sweep so the parallel shaping region (and its
    /// `parallel.worker.panic` site) is exercised.
    fn chaos_options() -> FlowOptions {
        FlowOptions::fast().shape_mode(ShapeMode::Vpr)
    }

    /// Splitmix64 finalizer — deterministic `(site, seed)` mixing.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// FNV-1a over the site name, as the per-site stream selector.
    fn site_key(site: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in site.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    /// What a watchdogged flow run produced: the inner flow result, or
    /// the panic payload `catch_unwind` captured.
    type RunOutcome = std::thread::Result<Result<FlowReport, FlowError>>;

    /// Runs `f` on a watchdog thread; `None` means it outlived `timeout`.
    fn with_watchdog<F>(timeout: Duration, f: F) -> Option<RunOutcome>
    where
        F: FnOnce() -> Result<FlowReport, FlowError> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let out = catch_unwind(AssertUnwindSafe(f));
            let _ = tx.send(out);
        });
        rx.recv_timeout(timeout).ok()
    }

    fn ckpt_path(site: &str, seed: u64) -> PathBuf {
        let dir = std::env::temp_dir().join("cp-chaos");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(format!(
            "ckpt-{}-{}-s{}.json",
            std::process::id(),
            site.replace('.', "_"),
            seed
        ))
    }

    fn resilient_once(
        checkpoint: Option<PathBuf>,
        resume_from: Option<PathBuf>,
    ) -> Result<FlowReport, FlowError> {
        let b = chaos_bench();
        let res = ResilienceOptions {
            control: RunControl::unlimited(),
            checkpoint,
            resume_from,
        };
        run_flow_resilient(&b.netlist, &b.constraints, &chaos_options(), &res)
    }

    /// Hit count observed per fault site during the reference run.
    type SiteHits = Vec<(&'static str, u64)>;

    /// Fault-free reference run that also counts how often each fault
    /// site is hit (armed at a hit index that can never be reached).
    fn reference_run(timeout: Duration) -> Result<(FlowReport, SiteHits), String> {
        fault::disarm_all();
        for site in sites::FAULTS {
            fault::arm(site, u64::MAX);
        }
        let outcome = with_watchdog(timeout, || resilient_once(None, None));
        let hits: Vec<(&'static str, u64)> =
            sites::FAULTS.iter().map(|&s| (s, fault::hits(s))).collect();
        fault::disarm_all();
        match outcome {
            None => Err("reference run hung".to_string()),
            Some(Err(_)) => Err("reference run panicked".to_string()),
            Some(Ok(Err(e))) => Err(format!("reference run failed: {e}")),
            Some(Ok(Ok(report))) => Ok((report, hits)),
        }
    }

    fn classify_ok(report: &FlowReport, reference: &FlowReport, fired: bool) -> (String, bool) {
        if !fired {
            return (
                "fault armed past the run's hit count (not reached)".to_string(),
                false,
            );
        }
        if report.deterministic_eq(reference) {
            return (
                "absorbed: report bitwise-identical to reference".to_string(),
                false,
            );
        }
        if report.diagnostics.is_clean() {
            (
                "SILENT CORRUPTION: report drifted from reference with clean diagnostics"
                    .to_string(),
                true,
            )
        } else {
            (
                "recovered: drift recorded on diagnostics".to_string(),
                false,
            )
        }
    }

    /// A typed interrupt with a checkpoint must resume — fault disarmed —
    /// to a report bitwise-identical to the fault-free reference.
    fn verify_resume(
        path: &std::path::Path,
        reference: &FlowReport,
        timeout: Duration,
    ) -> (String, bool) {
        if !path.exists() {
            return ("interrupted with no checkpoint on disk".to_string(), true);
        }
        let resume = path.to_path_buf();
        let outcome = with_watchdog(timeout, move || resilient_once(None, Some(resume)));
        match outcome {
            None => ("resume hung".to_string(), true),
            Some(Err(_)) => ("resume panicked".to_string(), true),
            Some(Ok(Err(e))) => (format!("resume failed: {e}"), true),
            Some(Ok(Ok(resumed))) => {
                if resumed.deterministic_eq(reference) {
                    (
                        "typed interrupt; resumed bitwise-identical".to_string(),
                        false,
                    )
                } else {
                    (
                        "resume completed but drifted from reference".to_string(),
                        true,
                    )
                }
            }
        }
    }

    fn classify_err(
        error: &FlowError,
        reference: &FlowReport,
        timeout: Duration,
    ) -> (String, bool) {
        if let Some(flow) = error.interrupted() {
            match flow.checkpoint.as_ref() {
                Some(path) => verify_resume(path, reference, timeout),
                None => (
                    format!("typed interrupt without checkpoint: {error}"),
                    false,
                ),
            }
        } else {
            (format!("typed error: {error}"), false)
        }
    }

    /// Sweeps `sites::FAULTS` (optionally filtered by substring) across
    /// `seeds` seeds. Deterministic for a fixed (seeds, design, options).
    ///
    /// # Errors
    ///
    /// When the fault-free reference run itself fails, or the filter
    /// matches no site.
    /// Keeps injected worker panics (which the pool contains and
    /// re-raises as typed errors) from spraying backtraces over the
    /// sweep output; genuine panics still reach the default hook.
    fn silence_injected_panics() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(|m| m.contains("injected fault:")) {
                prev(info);
            }
        }));
    }

    pub fn run_chaos(
        seeds: u64,
        timeout: Duration,
        site_filter: Option<&str>,
    ) -> Result<ChaosReport, String> {
        silence_injected_panics();
        let (reference, hit_counts) = reference_run(timeout)?;
        let swept: Vec<&'static str> = sites::FAULTS
            .into_iter()
            .filter(|s| site_filter.is_none_or(|f| s.contains(f)))
            .collect();
        if swept.is_empty() {
            return Err(format!(
                "no fault site matches `{}` (known: {})",
                site_filter.unwrap_or(""),
                sites::FAULTS.join(", ")
            ));
        }
        let mut report = ChaosReport::default();
        for site in swept {
            let max_hits = hit_counts
                .iter()
                .find(|(s, _)| *s == site)
                .map_or(0, |&(_, h)| h);
            for seed in 1..=seeds.max(1) {
                let at_hit = if max_hits == 0 {
                    0
                } else {
                    1 + mix(site_key(site) ^ seed) % max_hits
                };
                if at_hit == 0 {
                    report.cases.push(CaseReport {
                        site,
                        seed,
                        at_hit,
                        outcome: "site never reached by the reference run".to_string(),
                        failed: false,
                    });
                    continue;
                }
                let ckpt = ckpt_path(site, seed);
                let _ = std::fs::remove_file(&ckpt);
                fault::disarm_all();
                fault::arm(site, at_hit);
                let run_ckpt = ckpt.clone();
                let outcome = with_watchdog(timeout, move || resilient_once(Some(run_ckpt), None));
                let fired = fault::fired(site) > 0;
                fault::disarm_all();
                let (outcome, failed) = match outcome {
                    None => ("HANG: run exceeded the watchdog timeout".to_string(), true),
                    Some(Err(_)) => ("PANIC escaped the flow".to_string(), true),
                    Some(Ok(Ok(r))) => classify_ok(&r, &reference, fired),
                    Some(Ok(Err(e))) => classify_err(&e, &reference, timeout),
                };
                let _ = std::fs::remove_file(&ckpt);
                report.cases.push(CaseReport {
                    site,
                    seed,
                    at_hit,
                    outcome,
                    failed,
                });
            }
        }
        Ok(report)
    }
}

pub use imp::run_chaos;
