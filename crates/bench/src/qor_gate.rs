//! QoR regression gating against a committed baseline.
//!
//! `tracetool gate` runs the pinned gate flow (or loads an existing
//! `TRACE_report.json`), extracts every `qor.*` gauge plus per-stage
//! runtime self-time shares from the trace, and compares them against
//! [`Baseline`] as committed in `baselines/QOR_baseline.json`.
//!
//! The noise model is per-quantity:
//!
//! - **QoR gauges** are compared two-sided with a per-metric relative
//!   tolerance (default [`QOR_REL_TOL`], near-exact). The flow is
//!   bitwise-deterministic across thread counts, so any drift means the
//!   algorithm changed — improvements fail the gate too, on purpose: the
//!   baseline must be regenerated (`tracetool gate --write`) so the
//!   change is visible in review.
//! - **Runtime** is gated one-sided (only slower fails) on total traced
//!   seconds with a generous relative tolerance, and on per-name
//!   self-time *work shares* (see [`self_shares`]) with an absolute
//!   tolerance — shares are independent of both machine speed and thread
//!   count, and min-of-N reduction across repetitions rejects scheduling
//!   jitter.

use cp_core::flow::{run_flow, FlowOptions, FlowReport, ShapeMode};
use cp_core::{stages, FlowError};
use cp_netlist::generator::DesignProfile;
use cp_trace::json::{escape, fmt_f64, parse, Json};
use cp_trace::{Analysis, Level};

use crate::support::Bench;

/// Pinned design scale for the gate flow — independent of `CP_SCALE`, so
/// the committed baseline means the same thing on every machine.
pub const GATE_SCALE: f64 = 0.02;
/// Pinned scale of the large gate flow (`--large`): Ariane at half the
/// paper's instance count, ~60k cells — big enough that the CSR solver,
/// the SoA kernels and the clustering coarsener all carry real load,
/// small enough for a CI smoke job.
pub const GATE_LARGE_SCALE: f64 = 0.5;
/// Default two-sided relative tolerance on QoR gauges. Near-exact: it
/// absorbs last-ulp libm variance across toolchains, nothing more.
pub const QOR_REL_TOL: f64 = 1e-6;
/// Default one-sided absolute tolerance on per-stage self-time shares.
pub const SHARE_ABS_TOL: f64 = 0.35;
/// Default one-sided relative tolerance on total traced seconds. Loose —
/// the baseline records one machine's wall-clock; the share gates carry
/// the real signal. This only catches order-of-magnitude blowups.
pub const TOTAL_REL_TOL: f64 = 25.0;

/// The pinned gate design (Aes at [`GATE_SCALE`], generator defaults).
pub fn gate_bench() -> Bench {
    Bench::generate_at(DesignProfile::Aes, GATE_SCALE)
}

/// The pinned large-gate design (Ariane at [`GATE_LARGE_SCALE`]).
pub fn gate_bench_large() -> Bench {
    Bench::generate_at(DesignProfile::Ariane, GATE_LARGE_SCALE)
}

/// The pinned gate flow configuration: reduced-effort settings with the
/// exact V-P&R sweep, so every stage (and its `qor.*` gauges) runs.
/// Deterministic — no environment knobs consulted.
pub fn gate_options() -> FlowOptions {
    FlowOptions::fast().shape_mode(ShapeMode::Vpr)
}

/// The large gate flow's configuration: reduced-effort with uniform
/// shapes — the large gate exists to pin the scaling hot paths (solver,
/// spreading, clustering), not the V-P&R sweep the small gate already
/// covers, and skipping the sweep keeps the ~60k-cell run inside a CI
/// smoke budget.
pub fn gate_large_options() -> FlowOptions {
    FlowOptions::fast()
}

/// Runs a flow once at [`Level::Full`] and returns the report (its
/// `trace` is always present).
fn run_traced(b: &Bench, options: &FlowOptions) -> Result<FlowReport, FlowError> {
    cp_trace::set_level(Level::Full);
    let r = run_flow(&b.netlist, &b.constraints, options);
    cp_trace::set_level(Level::Off);
    cp_trace::clear();
    r
}

/// Runs the gate flow once at [`Level::Full`] and returns the report
/// (its `trace` is always present).
///
/// # Errors
///
/// Propagates any [`FlowError`] from the flow.
pub fn run_gate_flow() -> Result<FlowReport, FlowError> {
    run_traced(&gate_bench(), &gate_options())
}

/// Runs the large gate flow ([`gate_bench_large`]) once at
/// [`Level::Full`].
///
/// # Errors
///
/// Propagates any [`FlowError`] from the flow.
pub fn run_gate_flow_large() -> Result<FlowReport, FlowError> {
    run_traced(&gate_bench_large(), &gate_large_options())
}

/// Parses a profile name as accepted by `tracetool harvest --run`
/// (case-insensitive: `aes`, `jpeg`, `ariane`, `blackparrot`,
/// `megaboom`, `mempool`/`mempoolgroup`).
pub fn parse_profile(name: &str) -> Option<DesignProfile> {
    match name.to_ascii_lowercase().as_str() {
        "aes" => Some(DesignProfile::Aes),
        "jpeg" => Some(DesignProfile::Jpeg),
        "ariane" => Some(DesignProfile::Ariane),
        "blackparrot" => Some(DesignProfile::BlackParrot),
        "megaboom" => Some(DesignProfile::MegaBoom),
        "mempool" | "mempoolgroup" => Some(DesignProfile::MemPoolGroup),
        _ => None,
    }
}

/// Runs one hermetic, fully-traced flow of `profile` at `scale` with the
/// pinned gate options, returning the report (its `trace` is always
/// present) and the run's checkpoint fingerprint. This is the
/// `tracetool harvest --run` backend — the ledger-smoke corpus seeder.
///
/// # Errors
///
/// Propagates any [`FlowError`] from the flow.
pub fn run_hermetic(profile: DesignProfile, scale: f64) -> Result<(FlowReport, u64), FlowError> {
    let b = Bench::generate_at(profile, scale);
    let options = gate_options();
    let fingerprint = cp_core::checkpoint::fingerprint(&b.netlist, &options);
    let report = run_traced(&b, &options)?;
    Ok((report, fingerprint))
}

/// [`run_hermetic`] with spatial field-frame capture enabled: returns
/// the report, the captured [`FrameCapture`](cp_trace::FrameCapture)
/// and the checkpoint fingerprint. This is the `tracetool explain
/// --run` backend. Frames are drained *before* the trace buffers are
/// cleared — [`cp_trace::clear`] wipes buffered frames too.
///
/// # Errors
///
/// Propagates any [`FlowError`] from the flow.
pub fn run_hermetic_fields(
    profile: DesignProfile,
    scale: f64,
) -> Result<(FlowReport, cp_trace::FrameCapture, u64), FlowError> {
    let b = Bench::generate_at(profile, scale);
    let options = gate_options();
    let fingerprint = cp_core::checkpoint::fingerprint(&b.netlist, &options);
    cp_trace::fields::enable(cp_trace::fields::DEFAULT_FRAME_BUDGET);
    cp_trace::set_level(Level::Full);
    let r = run_flow(&b.netlist, &b.constraints, &options);
    cp_trace::set_level(Level::Off);
    let capture = cp_trace::fields::take();
    cp_trace::fields::disable();
    cp_trace::clear();
    Ok((r?, capture, fingerprint))
}

/// One gated QoR gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct QorEntry {
    /// Gauge name (`qor.*`).
    pub name: String,
    /// Baseline value.
    pub value: f64,
    /// Two-sided relative tolerance.
    pub rel_tol: f64,
}

/// One gated per-stage self-time share.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareEntry {
    /// Span name (a stage from [`stages::ALL`] or a heavy leaf span).
    pub name: String,
    /// Baseline work share (see [`self_shares`]), in `[0, 1]`.
    pub share: f64,
    /// One-sided absolute tolerance (only a larger share fails).
    pub abs_tol: f64,
}

/// The committed QoR/runtime baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Design short name (informational).
    pub design: String,
    /// Design scale the baseline was recorded at.
    pub scale: f64,
    /// Gated QoR gauges, sorted by name.
    pub qor: Vec<QorEntry>,
    /// Total traced seconds on the recording machine.
    pub total_s: f64,
    /// One-sided relative tolerance on `total_s`.
    pub total_rel_tol: f64,
    /// Gated per-stage self-time shares, sorted by name.
    pub self_shares: Vec<ShareEntry>,
}

/// Self-time share of a span name below which it is not worth gating
/// (unless it is a stage name): tiny spans carry no runtime signal.
pub const SHARE_FLOOR: f64 = 0.02;

/// Per-name *work shares*: each name's clamped-positive self-time over
/// the total clamped-positive self-time of the whole tree. The
/// denominator is the work the run performed, which — unlike root
/// wall-clock — is invariant under the thread count: spans running in
/// parallel sum their self-time regardless of how they overlap. Covers
/// every stage name plus any span name at or above [`SHARE_FLOOR`] — the
/// leaf spans (solver, V-P&R evaluations) hold most of the work, so
/// gating only stage wrappers would miss real regressions. Sorted by
/// name.
pub fn self_shares(a: &Analysis) -> Vec<(String, f64)> {
    let rows = a.self_time_by_name();
    let total: f64 = rows.iter().map(|g| g.self_s.max(0.0)).sum();
    let total = total.max(1e-12);
    let mut out: Vec<(String, f64)> = rows
        .into_iter()
        .map(|g| (g.name, g.self_s.max(0.0) / total))
        .filter(|(name, share)| stages::ALL.contains(&name.as_str()) || *share >= SHARE_FLOOR)
        .collect();
    out.sort_by(|x, y| x.0.cmp(&y.0));
    out
}

impl Baseline {
    /// Records a fresh baseline from an analyzed gate run, with the
    /// default tolerances.
    pub fn from_analysis(a: &Analysis, design: &str, scale: f64) -> Self {
        let mut qor: Vec<QorEntry> = a
            .gauges_with_prefix(cp_core::qor::PREFIX)
            .into_iter()
            .map(|(name, value)| QorEntry {
                name,
                value,
                rel_tol: QOR_REL_TOL,
            })
            .collect();
        qor.sort_by(|x, y| x.name.cmp(&y.name));
        let self_shares = self_shares(a)
            .into_iter()
            .map(|(name, share)| ShareEntry {
                name,
                share,
                abs_tol: SHARE_ABS_TOL,
            })
            .collect();
        Self {
            design: design.to_string(),
            scale,
            qor,
            total_s: a.duration_seconds(),
            total_rel_tol: TOTAL_REL_TOL,
            self_shares,
        }
    }

    /// Checks an analyzed run against the baseline. Returns one line per
    /// violation; empty means the gate passes.
    pub fn check(&self, a: &Analysis) -> Vec<String> {
        let mut failures = Vec::new();
        let gauges = a.gauges_with_prefix(cp_core::qor::PREFIX);
        for e in &self.qor {
            let Some(&(_, new)) = gauges.iter().find(|(n, _)| *n == e.name) else {
                failures.push(format!("qor gauge `{}` missing from the run", e.name));
                continue;
            };
            let limit = (e.rel_tol * e.value.abs()).max(1e-12);
            if !new.is_finite() || (new - e.value).abs() > limit {
                failures.push(format!(
                    "qor gauge `{}` changed: baseline {} -> run {} (tol ±{})",
                    e.name,
                    fmt_f64(e.value),
                    fmt_f64(new),
                    fmt_f64(limit)
                ));
            }
        }
        for (name, _) in &gauges {
            if !self.qor.iter().any(|e| &e.name == name) {
                failures.push(format!(
                    "qor gauge `{name}` not in the baseline — regenerate with `tracetool gate --write`"
                ));
            }
        }
        let total = a.duration_seconds();
        if total > self.total_s * (1.0 + self.total_rel_tol) {
            failures.push(format!(
                "total traced runtime regressed: baseline {:.3}s -> run {:.3}s (limit {:.3}s)",
                self.total_s,
                total,
                self.total_s * (1.0 + self.total_rel_tol)
            ));
        }
        let shares = self_shares(a);
        for e in &self.self_shares {
            let new = shares
                .iter()
                .find(|(n, _)| *n == e.name)
                .map_or(0.0, |&(_, s)| s);
            if new > e.share + e.abs_tol {
                failures.push(format!(
                    "stage `{}` self-time share regressed: baseline {:.3} -> run {:.3} (tol +{:.3})",
                    e.name, e.share, new, e.abs_tol
                ));
            }
        }
        failures
    }

    /// Serializes the baseline (validates against
    /// `schemas/qor_baseline.schema.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 1.0,\n");
        out.push_str(&format!("  \"design\": \"{}\",\n", escape(&self.design)));
        out.push_str(&format!("  \"scale\": {},\n", fmt_f64(self.scale)));
        out.push_str("  \"qor\": [\n");
        for (i, e) in self.qor.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {}, \"rel_tol\": {}}}{}\n",
                escape(&e.name),
                fmt_f64(e.value),
                fmt_f64(e.rel_tol),
                if i + 1 < self.qor.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"runtime\": {\n");
        out.push_str(&format!("    \"total_s\": {},\n", fmt_f64(self.total_s)));
        out.push_str(&format!(
            "    \"total_rel_tol\": {},\n",
            fmt_f64(self.total_rel_tol)
        ));
        out.push_str("    \"self_shares\": [\n");
        for (i, e) in self.self_shares.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"share\": {}, \"abs_tol\": {}}}{}\n",
                escape(&e.name),
                fmt_f64(e.share),
                fmt_f64(e.abs_tol),
                if i + 1 < self.self_shares.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("    ]\n");
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Parses a committed baseline.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let doc = parse(src)?;
        let str_at = |j: &Json, k: &str| -> Result<String, String> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        let num_at = |j: &Json, k: &str| -> Result<f64, String> {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number field `{k}`"))
        };
        let design = str_at(&doc, "design")?;
        let scale = num_at(&doc, "scale")?;
        let mut qor = Vec::new();
        for e in doc
            .get("qor")
            .and_then(Json::as_array)
            .ok_or("missing array field `qor`")?
        {
            qor.push(QorEntry {
                name: str_at(e, "name")?,
                value: num_at(e, "value")?,
                rel_tol: num_at(e, "rel_tol")?,
            });
        }
        let rt = doc.get("runtime").ok_or("missing object field `runtime`")?;
        let mut self_shares = Vec::new();
        for e in rt
            .get("self_shares")
            .and_then(Json::as_array)
            .ok_or("missing array field `runtime.self_shares`")?
        {
            self_shares.push(ShareEntry {
                name: str_at(e, "name")?,
                share: num_at(e, "share")?,
                abs_tol: num_at(e, "abs_tol")?,
            });
        }
        Ok(Self {
            design,
            scale,
            qor,
            total_s: num_at(rt, "total_s")?,
            total_rel_tol: num_at(rt, "total_rel_tol")?,
            self_shares,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_baseline() -> Baseline {
        Baseline {
            design: "aes".into(),
            scale: 0.02,
            qor: vec![
                QorEntry {
                    name: "qor.legalized.hpwl".into(),
                    value: 1000.0,
                    rel_tol: 1e-6,
                },
                QorEntry {
                    name: "qor.timing.wns".into(),
                    value: -50.0,
                    rel_tol: 1e-6,
                },
            ],
            total_s: 1.0,
            total_rel_tol: 25.0,
            self_shares: vec![ShareEntry {
                name: "flat placement".into(),
                share: 0.4,
                abs_tol: 0.35,
            }],
        }
    }

    #[test]
    fn baseline_json_round_trips() {
        let b = sample_baseline();
        let parsed = Baseline::from_json(&b.to_json()).expect("round trip parses");
        assert_eq!(b, parsed);
    }

    #[test]
    fn baseline_json_matches_schema() {
        let schema_src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/qor_baseline.schema.json"
        ))
        .expect("read qor baseline schema");
        let schema = parse(&schema_src).expect("schema parses");
        let doc = parse(&sample_baseline().to_json()).expect("baseline parses");
        let violations = cp_trace::json::validate(&doc, &schema);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
