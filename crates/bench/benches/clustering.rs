//! Criterion bench for the clustering stages: dendrogram (Alg. 2),
//! enhanced multilevel FC, and the Louvain/Leiden baselines.

use cp_bench::{flow_options, Bench};
use cp_core::baselines::{leiden_assignment, louvain_assignment, mfc_assignment};
use cp_core::cluster::dendrogram::cluster_by_hierarchy;
use cp_core::cluster::ppa_aware_clustering;
use cp_netlist::generator::DesignProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_clustering(c: &mut Criterion) {
    let b = Bench::generate_at(DesignProfile::Jpeg, 1.0 / 64.0);
    let opts = flow_options();
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    group.bench_function("dendrogram", |bench| {
        bench.iter(|| black_box(cluster_by_hierarchy(&b.netlist).cluster_count))
    });
    group.bench_function("ppa_aware", |bench| {
        bench.iter(|| {
            black_box(
                ppa_aware_clustering(&b.netlist, &b.constraints, &opts.clustering)
                    .expect("clustering runs")
                    .cluster_count,
            )
        })
    });
    group.bench_function("mfc", |bench| {
        bench.iter(|| black_box(mfc_assignment(&b.netlist, &opts.clustering).0.len()))
    });
    group.bench_function("louvain", |bench| {
        bench.iter(|| black_box(louvain_assignment(&b.netlist, 1).0.len()))
    });
    group.bench_function("leiden", |bench| {
        bench.iter(|| black_box(leiden_assignment(&b.netlist, 1).0.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
