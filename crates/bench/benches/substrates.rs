//! Criterion bench for the substrates: STA, activity propagation, power,
//! global routing, CTS and a GNN training step.

use cp_bench::Bench;
use cp_gnn::model::{ModelConfig, TotalCostModel};
use cp_gnn::optim::AdamOptions;
use cp_gnn::sparse::SparseSym;
use cp_gnn::tensor::Matrix;
use cp_gnn::GraphSample;
use cp_netlist::generator::DesignProfile;
use cp_netlist::Floorplan;
use cp_place::cts::{synthesize_clock_tree, CtsOptions};
use cp_place::{GlobalPlacer, PlacementProblem, PlacerOptions};
use cp_route::{route_placed_netlist, RouterOptions};
use cp_timing::activity::propagate_activity;
use cp_timing::power::power_report;
use cp_timing::sta::Sta;
use cp_timing::wire::WireModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let b = Bench::generate_at(DesignProfile::Jpeg, 1.0 / 64.0);
    let fp = Floorplan::for_netlist(&b.netlist, 0.6, 1.0);
    let problem = PlacementProblem::from_netlist(&b.netlist, &fp);
    let placed = GlobalPlacer::new(PlacerOptions::default())
        .place(&problem)
        .expect("placement runs");
    let mut positions = placed.positions.clone();
    positions.extend_from_slice(&fp.port_positions);

    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.bench_function("sta_full", |bench| {
        let sta = Sta::new(&b.netlist, &b.constraints).expect("acyclic netlist");
        bench.iter(|| black_box(sta.run(&WireModel::Placed(&positions)).tns))
    });
    group.bench_function("sta_paths_1k", |bench| {
        let sta = Sta::new(&b.netlist, &b.constraints).expect("acyclic netlist");
        let report = sta.run(&WireModel::Placed(&positions));
        bench.iter(|| black_box(sta.extract_paths(&report, 1000).len()))
    });
    group.bench_function("activity", |bench| {
        bench.iter(|| black_box(propagate_activity(&b.netlist, &b.constraints).iterations))
    });
    group.bench_function("power", |bench| {
        let act = propagate_activity(&b.netlist, &b.constraints);
        bench.iter(|| {
            black_box(
                power_report(
                    &b.netlist,
                    &b.constraints,
                    &act,
                    &WireModel::Placed(&positions),
                )
                .total(),
            )
        })
    });
    group.bench_function("global_route", |bench| {
        bench.iter(|| {
            black_box(
                route_placed_netlist(&b.netlist, &positions, &fp, &RouterOptions::default())
                    .expect("routing runs")
                    .wirelength,
            )
        })
    });
    group.bench_function("cts", |bench| {
        bench.iter(|| {
            black_box(
                synthesize_clock_tree(&b.netlist, &positions, &CtsOptions::default())
                    .expect("CTS runs")
                    .skew,
            )
        })
    });
    group.bench_function("gnn_train_batch", |bench| {
        let cfg = ModelConfig::default();
        let mut model = TotalCostModel::new(&cfg, 3);
        let samples: Vec<(GraphSample, f64)> = (0..8)
            .map(|i| {
                let n = 40 + i * 5;
                let edges: Vec<(u32, u32, f64)> = (1..n as u32).map(|k| (k - 1, k, 1.0)).collect();
                (
                    GraphSample {
                        adj: SparseSym::normalized_from_edges(n, &edges),
                        features: Matrix::from_fn(n, cfg.in_dim, |r, c| {
                            ((r * 7 + c) % 13) as f64 / 13.0
                        }),
                    },
                    1.0 + i as f64 / 8.0,
                )
            })
            .collect();
        let batch: Vec<(&GraphSample, f64)> = samples.iter().map(|(s, l)| (s, *l)).collect();
        bench.iter(|| black_box(model.train_batch(&batch, &AdamOptions::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
