//! Criterion bench behind Table 2: global placement runtime, flat vs
//! clustered+seeded (the paper's headline 36% average speedup).

use cp_bench::{flow_options, Bench};
use cp_core::cluster::ppa_aware_clustering;
use cp_core::flow::{run_default_flow, run_flow_with_assignment, Tool};
use cp_netlist::generator::DesignProfile;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_placement");
    group.sample_size(10);
    for profile in [DesignProfile::Aes, DesignProfile::Jpeg] {
        let b = Bench::generate_at(profile, 1.0 / 64.0);
        let opts = flow_options().tool(Tool::OpenRoadLike);
        // Clustering runs once; the bench isolates the placement phases.
        let clustering = ppa_aware_clustering(&b.netlist, &b.constraints, &opts.clustering)
            .expect("clustering runs");
        group.bench_function(format!("flat/{}", b.name()), |bench| {
            bench.iter(|| {
                black_box(
                    run_default_flow(&b.netlist, &b.constraints, &opts)
                        .expect("flow runs")
                        .hpwl,
                )
            })
        });
        group.bench_function(format!("seeded/{}", b.name()), |bench| {
            bench.iter(|| {
                black_box(
                    run_flow_with_assignment(
                        &b.netlist,
                        &b.constraints,
                        &clustering.assignment,
                        0.0,
                        &opts,
                    )
                    .expect("flow runs")
                    .hpwl,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
