//! Criterion bench for V-P&R: one exact shape evaluation, the 20-shape
//! sweep, feature extraction, and GNN inference (the 30× claim of
//! Section 3.2 is the sweep/inference ratio).

use cp_bench::{flow_options, Bench};
use cp_core::cluster::ppa_aware_clustering;
use cp_core::flow::cluster_members;
use cp_core::vpr::ml::{cluster_features, MlShapeSelector};
use cp_core::vpr::{best_shape, evaluate_shape, extract_subnetlist};
use cp_gnn::model::{ModelConfig, TotalCostModel};
use cp_gnn::GraphSample;
use cp_netlist::generator::DesignProfile;
use cp_netlist::ClusterShape;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_vpr(c: &mut Criterion) {
    let b = Bench::generate_at(DesignProfile::Aes, 1.0 / 32.0);
    let opts = flow_options();
    let clustering = ppa_aware_clustering(&b.netlist, &b.constraints, &opts.clustering)
        .expect("clustering runs");
    let cluster = cluster_members(&clustering.assignment, clustering.cluster_count)
        .into_iter()
        .max_by_key(|m| m.len())
        .expect("clusters exist");
    let sub = extract_subnetlist(&b.netlist, &cluster).expect("valid sub-netlist");
    // Untrained weights are fine for timing inference.
    let selector = MlShapeSelector::from_model(TotalCostModel::new(&ModelConfig::default(), 3));

    let mut group = c.benchmark_group("vpr");
    group.sample_size(10);
    group.bench_function("evaluate_one_shape", |bench| {
        bench.iter(|| {
            black_box(
                evaluate_shape(&sub, ClusterShape::UNIFORM, &opts.vpr)
                    .expect("shape evaluates")
                    .total,
            )
        })
    });
    group.bench_function("exact_sweep_20", |bench| {
        bench.iter(|| black_box(best_shape(&sub, &opts.vpr).expect("sweep runs").0))
    });
    group.bench_function("feature_extraction", |bench| {
        bench.iter(|| black_box(cluster_features(&sub)))
    });
    group.bench_function("ml_select_20", |bench| {
        bench.iter(|| black_box(selector.select_shape(&sub)))
    });
    group.bench_function("ml_inference_only", |bench| {
        let feats = cluster_features(&sub);
        let samples: Vec<GraphSample> = ClusterShape::candidates()
            .iter()
            .map(|&s| feats.with_shape(s))
            .collect();
        bench.iter(|| black_box(selector.model().predict(&samples)))
    });
    group.finish();
}

criterion_group!(benches, bench_vpr);
criterion_main!(benches);
