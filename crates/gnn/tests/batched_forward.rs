//! Property tests pinning the batched forward pass to the per-sample
//! reference: packing any set of graphs into one block-diagonal sample
//! must produce bit-identical predictions, at any thread count.

use cp_gnn::model::{ModelConfig, TotalCostModel};
use cp_gnn::optim::AdamOptions;
use cp_gnn::sample::GraphSample;
use cp_gnn::sparse::SparseSym;
use cp_gnn::tensor::Matrix;
use proptest::prelude::*;

const CFG: ModelConfig = ModelConfig {
    in_dim: 6,
    hidden_dim: 8,
    out_dim: 4,
    branches: 2,
    head_hidden: 8,
};

/// A random small graph sample with `CFG.in_dim`-wide features.
fn arb_sample() -> impl Strategy<Value = GraphSample> {
    (
        1usize..10,
        prop::collection::vec((0u32..16, 0u32..16, 0.1f64..4.0), 0..24),
        -2.0f64..2.0,
    )
        .prop_map(|(n, edges, bias)| {
            let edges: Vec<(u32, u32, f64)> = edges
                .into_iter()
                .map(|(u, v, w)| (u % n as u32, v % n as u32, w))
                .collect();
            GraphSample {
                adj: SparseSym::normalized_from_edges(n, &edges),
                features: Matrix::from_fn(n, CFG.in_dim, |r, c| {
                    bias + 0.13 * r as f64 - 0.07 * c as f64
                }),
            }
        })
}

fn assert_bitwise_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "prediction {i} differs: {x:?} vs {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_equals_per_sample_bitwise(
        samples in prop::collection::vec(arb_sample(), 1..6),
        seed in 0u64..64,
    ) {
        let model = TotalCostModel::new(&CFG, seed);
        let per_sample = model.predict(&samples);
        let batched = model.predict_batched(&samples);
        assert_bitwise_eq(&per_sample, &batched);
    }

    #[test]
    fn batched_equals_per_sample_after_training(
        samples in prop::collection::vec(arb_sample(), 1..5),
        seed in 0u64..64,
    ) {
        // A few training steps move the batch-norm running statistics off
        // their initialization, so the eval path is exercised with
        // non-trivial state.
        let mut model = TotalCostModel::new(&CFG, seed);
        let batch: Vec<(&GraphSample, f64)> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| (s, 0.25 * i as f64))
            .collect();
        for _ in 0..3 {
            model.train_batch(&batch, &AdamOptions::default());
        }
        let per_sample = model.predict(&samples);
        let batched = model.predict_batched(&samples);
        assert_bitwise_eq(&per_sample, &batched);
    }

    #[test]
    fn batched_forward_is_thread_count_invariant(
        samples in prop::collection::vec(arb_sample(), 1..5),
        seed in 0u64..64,
    ) {
        let model = TotalCostModel::new(&CFG, seed);
        let seq = cp_parallel::with_threads(1, || model.predict_batched(&samples));
        let par = cp_parallel::with_threads(4, || model.predict_batched(&samples));
        assert_bitwise_eq(&seq, &par);
    }
}
