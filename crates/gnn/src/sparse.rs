//! Symmetric sparse matrices (CSR) for graph propagation.

use crate::tensor::Matrix;

/// A sparse symmetric matrix in CSR form, used as the normalized
/// propagation operator `Â = D^{-1/2} (A + I) D^{-1/2}`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSym {
    n: usize,
    row_ptr: Vec<u32>,
    col: Vec<u32>,
    val: Vec<f64>,
}

impl SparseSym {
    /// Builds the symmetrically normalized propagation operator from an
    /// undirected weighted edge list, adding self-loops of weight 1
    /// (the hypergraph-convolution operator of Bai et al. applied to the
    /// clique-expanded cluster graph).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn normalized_from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        // Accumulate adjacency with self-loops.
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (i, list) in adj.iter_mut().enumerate() {
            list.push((i as u32, 1.0));
        }
        for &(u, v, w) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if u == v {
                adj[u as usize].push((v, w));
            } else {
                adj[u as usize].push((v, w));
                adj[v as usize].push((u, w));
            }
        }
        // Merge duplicates.
        for list in &mut adj {
            list.sort_by_key(|&(c, _)| c);
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(list.len());
            for &(c, w) in list.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == c => last.1 += w,
                    _ => merged.push((c, w)),
                }
            }
            *list = merged;
        }
        let degree: Vec<f64> = adj
            .iter()
            .map(|l| l.iter().map(|&(_, w)| w).sum::<f64>().max(1e-12))
            .collect();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        row_ptr.push(0u32);
        for (i, list) in adj.iter().enumerate() {
            for &(j, w) in list {
                col.push(j);
                val.push(w / (degree[i].sqrt() * degree[j as usize].sqrt()));
            }
            row_ptr.push(col.len() as u32);
        }
        Self {
            n,
            row_ptr,
            col,
            val,
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block-diagonal concatenation (PyG-style graph batching). Because the
    /// symmetric normalization is local to each edge's endpoints, the block
    /// diagonal of normalized operators equals the normalized operator of
    /// the disjoint union.
    pub fn block_diag(parts: &[&SparseSym]) -> SparseSym {
        let n: usize = parts.iter().map(|p| p.n).sum();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        let mut val = Vec::new();
        row_ptr.push(0u32);
        let mut offset = 0u32;
        for p in parts {
            for i in 0..p.n {
                let (s, e) = (p.row_ptr[i] as usize, p.row_ptr[i + 1] as usize);
                for k in s..e {
                    col.push(p.col[k] + offset);
                    val.push(p.val[k]);
                }
                row_ptr.push(col.len() as u32);
            }
            offset += p.n as u32;
        }
        SparseSym {
            n,
            row_ptr,
            col,
            val,
        }
    }

    /// Sparse × dense: `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows != n`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows, self.n, "row mismatch");
        let mut out = Matrix::zeros(self.n, x.cols);
        // Row-parallel with per-row accumulation order unchanged — output
        // is bit-identical to the serial loop at any thread count.
        out.for_each_row_mut(|i, orow| {
            let (s, e) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
            for k in s..e {
                let j = self.col[k] as usize;
                let w = self.val[k];
                for (c, &v) in x.row(j).iter().enumerate() {
                    orow[c] += w * v;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_spectrally_stable() {
        // Â has spectral radius ≤ 1: repeated propagation must not blow up.
        let a = SparseSym::normalized_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let mut x = Matrix::from_fn(3, 1, |_, _| 1.0);
        for _ in 0..50 {
            x = a.spmm(&x);
        }
        for r in 0..3 {
            assert!(x.get(r, 0) > 0.0 && x.get(r, 0) <= 1.5, "{}", x.get(r, 0));
        }
    }

    #[test]
    fn block_diag_equals_disjoint_union() {
        let a = SparseSym::normalized_from_edges(2, &[(0, 1, 1.0)]);
        let b = SparseSym::normalized_from_edges(3, &[(0, 2, 2.0)]);
        let merged = SparseSym::block_diag(&[&a, &b]);
        assert_eq!(merged.n(), 5);
        let direct = SparseSym::normalized_from_edges(5, &[(0, 1, 1.0), (2, 4, 2.0)]);
        let x = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(merged.spmm(&x), direct.spmm(&x));
    }

    #[test]
    fn isolated_node_keeps_self_signal() {
        let a = SparseSym::normalized_from_edges(2, &[]);
        let x = Matrix::from_vec(2, 1, vec![3.0, 5.0]);
        let y = a.spmm(&x);
        // Self-loop only, degree 1 ⇒ identity.
        assert!((y.get(0, 0) - 3.0).abs() < 1e-12);
        assert!((y.get(1, 0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn propagation_mixes_neighbors() {
        let a = SparseSym::normalized_from_edges(2, &[(0, 1, 1.0)]);
        let x = Matrix::from_vec(2, 1, vec![1.0, 0.0]);
        let y = a.spmm(&x);
        assert!(y.get(1, 0) > 0.0, "signal should reach the neighbor");
    }

    #[test]
    fn duplicate_edges_merge() {
        let a = SparseSym::normalized_from_edges(2, &[(0, 1, 0.5), (0, 1, 0.5)]);
        let b = SparseSym::normalized_from_edges(2, &[(0, 1, 1.0)]);
        let x = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        assert_eq!(a.spmm(&x), b.spmm(&x));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        SparseSym::normalized_from_edges(2, &[(0, 5, 1.0)]);
    }
}
