//! The training loop with per-epoch validation.

use crate::metrics::{mae, r2_score};
use crate::model::TotalCostModel;
use crate::optim::AdamOptions;
use crate::sample::GraphSample;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Epoch count.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam settings.
    pub adam: AdamOptions,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 16,
            adam: AdamOptions::default(),
            seed: 17,
        }
    }
}

/// Per-split evaluation after training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Final epoch's mean training loss (MSE).
    pub final_loss: f64,
    /// MAE on the training split.
    pub train_mae: f64,
    /// R² on the training split.
    pub train_r2: f64,
}

/// Trains `model` on `(sample, label)` pairs.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn train(
    model: &mut TotalCostModel,
    data: &[(GraphSample, f64)],
    options: &TrainOptions,
) -> TrainStats {
    assert!(!data.is_empty(), "no training data");
    let _span = cp_trace::span_with(
        "gnn.train",
        &[
            ("samples", cp_trace::ArgValue::U(data.len() as u64)),
            ("epochs", cp_trace::ArgValue::U(options.epochs as u64)),
        ],
    );
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut final_loss = 0.0;
    for epoch in 0..options.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(options.batch_size.max(1)) {
            let batch: Vec<(&GraphSample, f64)> =
                chunk.iter().map(|&i| (&data[i].0, data[i].1)).collect();
            epoch_loss += model.train_batch(&batch, &options.adam);
            batches += 1;
        }
        final_loss = epoch_loss / batches.max(1) as f64;
        cp_trace::series("gnn.train.loss", epoch as u64, &[("loss", final_loss)]);
    }
    let (samples, labels): (Vec<_>, Vec<f64>) = data.iter().map(|(s, l)| (s.clone(), *l)).unzip();
    let pred = model.predict(&samples);
    TrainStats {
        final_loss,
        train_mae: mae(&pred, &labels),
        train_r2: r2_score(&pred, &labels),
    }
}

/// Evaluates a trained model on a held-out split, returning `(MAE, R²)`.
pub fn evaluate(model: &TotalCostModel, data: &[(GraphSample, f64)]) -> (f64, f64) {
    let (samples, labels): (Vec<_>, Vec<f64>) = data.iter().map(|(s, l)| (s.clone(), *l)).unzip();
    let pred = model.predict(&samples);
    (mae(&pred, &labels), r2_score(&pred, &labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::sparse::SparseSym;
    use crate::tensor::Matrix;

    fn dataset(n: usize, cfg: &ModelConfig, seed_shift: f64) -> Vec<(GraphSample, f64)> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 + seed_shift;
                let nodes = 4 + i % 5;
                let edges: Vec<(u32, u32, f64)> =
                    (1..nodes as u32).map(|k| (k - 1, k, 1.0)).collect();
                let s = GraphSample {
                    adj: SparseSym::normalized_from_edges(nodes, &edges),
                    features: Matrix::from_fn(nodes, cfg.in_dim, |r, c| {
                        t + 0.02 * r as f64 - 0.01 * c as f64
                    }),
                };
                (s, 1.0 + t)
            })
            .collect()
    }

    #[test]
    fn training_fits_and_generalizes_to_similar_data() {
        let cfg = ModelConfig {
            in_dim: 6,
            hidden_dim: 12,
            out_dim: 6,
            branches: 2,
            head_hidden: 12,
        };
        let mut model = TotalCostModel::new(&cfg, 21);
        let train_data = dataset(48, &cfg, 0.0);
        let test_data = dataset(12, &cfg, 0.013);
        let stats = train(
            &mut model,
            &train_data,
            &TrainOptions {
                epochs: 60,
                batch_size: 8,
                adam: AdamOptions {
                    lr: 3e-3,
                    ..Default::default()
                },
                seed: 4,
            },
        );
        assert!(stats.train_r2 > 0.5, "train R² {}", stats.train_r2);
        let (test_mae, test_r2) = evaluate(&model, &test_data);
        assert!(test_r2 > 0.3, "test R² {test_r2}");
        assert!(test_mae < 0.4, "test MAE {test_mae}");
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = ModelConfig {
            in_dim: 4,
            hidden_dim: 8,
            out_dim: 4,
            branches: 1,
            head_hidden: 8,
        };
        let data = dataset(10, &cfg, 0.0);
        let run = || {
            let mut m = TotalCostModel::new(&cfg, 9);
            train(
                &mut m,
                &data,
                &TrainOptions {
                    epochs: 3,
                    ..Default::default()
                },
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn empty_dataset_panics() {
        let cfg = ModelConfig::default();
        let mut m = TotalCostModel::new(&cfg, 1);
        train(&mut m, &[], &TrainOptions::default());
    }
}

/// K-fold cross-validation: trains `k` fresh models, each holding out one
/// fold, and returns the per-fold `(MAE, R²)` on the held-out fold.
///
/// # Panics
///
/// Panics unless `k >= 2` and `data.len() >= k`.
pub fn cross_validate(
    config: &crate::model::ModelConfig,
    data: &[(GraphSample, f64)],
    options: &TrainOptions,
    k: usize,
    model_seed: u64,
) -> Vec<(f64, f64)> {
    assert!(k >= 2, "need at least two folds");
    assert!(data.len() >= k, "need at least one sample per fold");
    let fold_size = data.len() / k;
    let mut out = Vec::with_capacity(k);
    for fold in 0..k {
        let lo = fold * fold_size;
        let hi = if fold + 1 == k {
            data.len()
        } else {
            lo + fold_size
        };
        let held: Vec<(GraphSample, f64)> = data[lo..hi].to_vec();
        let train_data: Vec<(GraphSample, f64)> = data[..lo]
            .iter()
            .chain(data[hi..].iter())
            .cloned()
            .collect();
        let mut model = TotalCostModel::new(config, model_seed + fold as u64);
        let _ = train(&mut model, &train_data, options);
        out.push(evaluate(&model, &held));
    }
    out
}

#[cfg(test)]
mod cv_tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::sparse::SparseSym;
    use crate::tensor::Matrix;

    #[test]
    fn cross_validation_returns_k_folds() {
        let cfg = ModelConfig {
            in_dim: 4,
            hidden_dim: 8,
            out_dim: 4,
            branches: 1,
            head_hidden: 8,
        };
        let data: Vec<(GraphSample, f64)> = (0..12)
            .map(|i| {
                let t = i as f64 / 12.0;
                (
                    GraphSample {
                        adj: SparseSym::normalized_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]),
                        features: Matrix::from_fn(3, 4, |r, c| t + 0.01 * (r + c) as f64),
                    },
                    t,
                )
            })
            .collect();
        let folds = cross_validate(
            &cfg,
            &data,
            &TrainOptions {
                epochs: 5,
                batch_size: 4,
                ..Default::default()
            },
            3,
            1,
        );
        assert_eq!(folds.len(), 3);
        for (mae, r2) in folds {
            assert!(mae.is_finite());
            assert!(r2.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn one_fold_panics() {
        let cfg = ModelConfig::default();
        cross_validate(&cfg, &[], &TrainOptions::default(), 1, 0);
    }
}
