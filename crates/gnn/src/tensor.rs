//! Dense row-major matrices with the handful of ops a small GNN needs.
//!
//! The matmul kernels are row-parallel: each output row keeps exactly the
//! serial loop's accumulation order, so results are bit-identical to the
//! sequential implementation at any `CP_THREADS` setting.

/// Output rows per parallel chunk in the matmul kernels.
const ROW_CHUNK: usize = 8;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Runs `f(row_index, row_slice)` over every row, parallel over fixed
    /// row chunks. Rows are disjoint, so this is the deterministic
    /// backbone of the matmul kernels below (and of CSR propagation in
    /// [`crate::sparse`]).
    pub(crate) fn for_each_row_mut(&mut self, f: impl Fn(usize, &mut [f64]) + Sync) {
        let cols = self.cols;
        if cols == 0 || self.rows == 0 {
            return;
        }
        cp_parallel::par_chunks_mut(&mut self.data, cols * ROW_CHUNK, |_, offset, slice| {
            for (k, row) in slice.chunks_mut(cols).enumerate() {
                f(offset / cols + k, row);
            }
        });
    }

    /// `self · other` (`rows × other.cols`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, other.cols);
        out.for_each_row_mut(|i, out_row| {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for (j, &b) in other.row(k).iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        });
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must match");
        let mut out = Matrix::zeros(self.cols, other.cols);
        out.for_each_row_mut(|i, out_row| {
            for r in 0..self.rows {
                let a = self.get(r, i);
                if a == 0.0 {
                    continue;
                }
                for (j, &b) in other.row(r).iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        });
        out
    }

    /// `self · otherᵀ`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column counts must match");
        let mut out = Matrix::zeros(self.rows, other.rows);
        out.for_each_row_mut(|i, out_row| {
            let a = self.row(i);
            for (j, oj) in out_row.iter_mut().enumerate() {
                let b = other.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a[k] * b[k];
                }
                *oj = acc;
            }
        });
        out
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Mean of each column (length `cols`).
    pub fn column_means(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out[c] += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for v in &mut out {
            *v /= n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = a.matmul_tn(&b); // aᵀ (2×3) × b (3×2)
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀb = [[1+5, 3+5],[2+6, 4+6]]
        assert_eq!(c.data(), &[6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_nt_matches() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        // a × bᵀ = [[1*5+2*6, 1*7+2*8],[3*5+4*6, 3*7+4*8]]
        assert_eq!(a.matmul_nt(&b).data(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn column_means() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 10.0, 3.0, 20.0]);
        assert_eq!(a.column_means(), vec![2.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_is_thread_count_invariant() {
        let a = Matrix::from_fn(37, 23, |r, c| {
            ((r * 31 + c * 17) % 101) as f64 * 0.013 - 0.5
        });
        let b = Matrix::from_fn(23, 29, |r, c| ((r * 13 + c * 7) % 97) as f64 * 0.021 - 1.0);
        let seq = cp_parallel::with_threads(1, || (a.matmul(&b), a.matmul_tn(&a), a.matmul_nt(&a)));
        let par = cp_parallel::with_threads(4, || (a.matmul(&b), a.matmul_tn(&a), a.matmul_nt(&a)));
        assert_eq!(seq, par);
    }
}
