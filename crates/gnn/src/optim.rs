//! Parameters with accumulated gradients and the Adam optimizer.

/// A learnable parameter tensor (flat) with gradient and Adam state.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Weights.
    pub w: Vec<f64>,
    /// Accumulated gradient.
    pub g: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Param {
    /// Wraps initial weights.
    pub fn new(init: Vec<f64>) -> Self {
        let n = init.len();
        Self {
            w: init,
            g: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.g.fill(0.0);
    }

    /// One Adam update; `t` is the 1-based step count.
    pub fn adam_step(&mut self, opt: &AdamOptions, t: usize) {
        let b1t = 1.0 - opt.beta1.powi(t as i32);
        let b2t = 1.0 - opt.beta2.powi(t as i32);
        for i in 0..self.w.len() {
            self.m[i] = opt.beta1 * self.m[i] + (1.0 - opt.beta1) * self.g[i];
            self.v[i] = opt.beta2 * self.v[i] + (1.0 - opt.beta2) * self.g[i] * self.g[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            self.w[i] -= opt.lr * mhat / (vhat.sqrt() + opt.eps);
        }
    }
}

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamOptions {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
}

impl Default for AdamOptions {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // f(w) = (w - 3)², gradient 2(w - 3).
        let mut p = Param::new(vec![0.0]);
        let opt = AdamOptions {
            lr: 0.1,
            ..Default::default()
        };
        for t in 1..=300 {
            p.zero_grad();
            p.g[0] = 2.0 * (p.w[0] - 3.0);
            p.adam_step(&opt, t);
        }
        assert!((p.w[0] - 3.0).abs() < 0.05, "w = {}", p.w[0]);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(vec![1.0, 2.0]);
        p.g = vec![5.0, 5.0];
        p.zero_grad();
        assert_eq!(p.g, vec![0.0, 0.0]);
    }
}
