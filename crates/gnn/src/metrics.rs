//! Regression metrics: MAE and R².

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot`.
///
/// Returns 0 when the truth has no variance.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn r2_score(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(r2_score(&t, &t), 1.0);
    }

    #[test]
    fn mean_prediction_scores_zero_r2() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!((r2_score(&pred, &truth)).abs() < 1e-12);
        assert!((mae(&pred, &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn worse_than_mean_is_negative() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert!(r2_score(&pred, &truth) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}
