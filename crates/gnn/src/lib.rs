//! A pure-Rust graph neural network — the PyTorch-Geometric stand-in for
//! the paper's Total-Cost predictor (Section 3.2, Figure 4).
//!
//! The architecture matches the paper: four convolution branches of three
//! hypergraph-convolution blocks each (dims 35 → 64 → 32, batch
//! normalization, skip connections where dims match), branch outputs
//! accumulated, global mean pooling to a 32-d cluster embedding, and a
//! prediction head of two linear layers (32 → 64 → 1) with batch norm.
//! Training is Adam + MSE with manual backpropagation.
//!
//! Everything here is deterministic given the seed.
//!
//! # Examples
//!
//! ```
//! use cp_gnn::model::{ModelConfig, TotalCostModel};
//! use cp_gnn::sample::GraphSample;
//! use cp_gnn::tensor::Matrix;
//! use cp_gnn::sparse::SparseSym;
//!
//! let cfg = ModelConfig::default();
//! let model = TotalCostModel::new(&cfg, 1);
//! // A 3-node toy graph with 35 features per node.
//! let adj = SparseSym::normalized_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
//! let x = Matrix::zeros(3, cfg.in_dim);
//! let sample = GraphSample { adj, features: x };
//! let y = model.predict(&[sample]);
//! assert_eq!(y.len(), 1);
//! assert!(y[0].is_finite());
//! ```

pub mod layers;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod sample;
pub mod sparse;
pub mod tensor;
pub mod train;

pub use crate::metrics::{mae, r2_score};
pub use crate::model::{ModelConfig, TotalCostModel};
pub use crate::sample::GraphSample;
pub use crate::train::{train, TrainOptions, TrainStats};
