//! Network layers with explicit forward caches and manual backprop.

use crate::optim::{AdamOptions, Param};
use crate::sparse::SparseSym;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Xavier-uniform initialization.
fn xavier(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<f64> {
    let bound = (6.0 / (rows + cols) as f64).sqrt();
    (0..rows * cols)
        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * bound)
        .collect()
}

/// A dense affine layer `y = x W + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Weights, `in_dim × out_dim` flattened row-major.
    pub w: Param,
    /// Bias, length `out_dim`.
    pub b: Param,
}

/// Forward cache for [`Linear`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Matrix,
}

impl Linear {
    /// A randomly initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            in_dim,
            out_dim,
            w: Param::new(xavier(rng, in_dim, out_dim)),
            b: Param::new(vec![0.0; out_dim]),
        }
    }

    /// `y = x W + b`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LinearCache) {
        let w = Matrix::from_vec(self.in_dim, self.out_dim, self.w.w.clone());
        let mut y = x.matmul(&w);
        for r in 0..y.rows {
            for (c, &bc) in self.b.w.iter().enumerate() {
                *y.get_mut(r, c) += bc;
            }
        }
        (y, LinearCache { x: x.clone() })
    }

    /// Accumulates `dW`, `db`; returns `dx`.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Matrix) -> Matrix {
        // dW = xᵀ dy
        let dw = cache.x.matmul_tn(dy);
        for (g, &v) in self.w.g.iter_mut().zip(dw.data()) {
            *g += v;
        }
        for r in 0..dy.rows {
            for (c, g) in self.b.g.iter_mut().enumerate() {
                *g += dy.get(r, c);
            }
        }
        // dx = dy Wᵀ
        let w = Matrix::from_vec(self.in_dim, self.out_dim, self.w.w.clone());
        dy.matmul_nt(&w)
    }

    /// Visits all parameters (for the optimizer).
    pub fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        [&mut self.w, &mut self.b].into_iter()
    }
}

/// Batch normalization over rows, per feature.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    /// Feature width.
    pub dim: usize,
    /// Scale γ.
    pub gamma: Param,
    /// Shift β.
    pub beta: Param,
    running_mean: Vec<f64>,
    running_var: Vec<f64>,
    momentum: f64,
    eps: f64,
}

/// Forward cache for [`BatchNorm`].
#[derive(Debug, Clone)]
pub struct BnCache {
    xhat: Matrix,
    inv_std: Vec<f64>,
}

impl BatchNorm {
    /// A fresh layer (γ = 1, β = 0).
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            gamma: Param::new(vec![1.0; dim]),
            beta: Param::new(vec![0.0; dim]),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Training-mode forward: batch statistics, running stats updated.
    pub fn forward_train(&mut self, x: &Matrix) -> (Matrix, BnCache) {
        let n = x.rows.max(1) as f64;
        let mean = x.column_means();
        let mut var = vec![0.0; self.dim];
        for r in 0..x.rows {
            for (c, &v) in x.row(r).iter().enumerate() {
                let d = v - mean[c];
                var[c] += d * d;
            }
        }
        for v in &mut var {
            *v /= n;
        }
        for c in 0..self.dim {
            self.running_mean[c] =
                (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
            self.running_var[c] =
                (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
        }
        let inv_std: Vec<f64> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Matrix::zeros(x.rows, x.cols);
        let mut y = Matrix::zeros(x.rows, x.cols);
        for r in 0..x.rows {
            for c in 0..x.cols {
                let h = (x.get(r, c) - mean[c]) * inv_std[c];
                *xhat.get_mut(r, c) = h;
                *y.get_mut(r, c) = self.gamma.w[c] * h + self.beta.w[c];
            }
        }
        (y, BnCache { xhat, inv_std })
    }

    /// Inference-mode forward with running statistics.
    pub fn forward_eval(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(x.rows, x.cols);
        for r in 0..x.rows {
            for c in 0..x.cols {
                let h =
                    (x.get(r, c) - self.running_mean[c]) / (self.running_var[c] + self.eps).sqrt();
                *y.get_mut(r, c) = self.gamma.w[c] * h + self.beta.w[c];
            }
        }
        y
    }

    /// Accumulates `dγ`, `dβ`; returns `dx`.
    pub fn backward(&mut self, cache: &BnCache, dy: &Matrix) -> Matrix {
        let n = dy.rows.max(1) as f64;
        let mut sum_dy = vec![0.0; self.dim];
        let mut sum_dy_xhat = vec![0.0; self.dim];
        for r in 0..dy.rows {
            for c in 0..self.dim {
                sum_dy[c] += dy.get(r, c);
                sum_dy_xhat[c] += dy.get(r, c) * cache.xhat.get(r, c);
            }
        }
        for c in 0..self.dim {
            self.gamma.g[c] += sum_dy_xhat[c];
            self.beta.g[c] += sum_dy[c];
        }
        let mut dx = Matrix::zeros(dy.rows, dy.cols);
        for r in 0..dy.rows {
            for c in 0..self.dim {
                let term = n * dy.get(r, c) - sum_dy[c] - cache.xhat.get(r, c) * sum_dy_xhat[c];
                *dx.get_mut(r, c) = self.gamma.w[c] * cache.inv_std[c] * term / n;
            }
        }
        dx
    }

    /// Visits all parameters.
    pub fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        [&mut self.gamma, &mut self.beta].into_iter()
    }
}

/// ReLU with mask cache.
pub fn relu_forward(x: &Matrix) -> (Matrix, Vec<bool>) {
    let mut y = x.clone();
    let mut mask = Vec::with_capacity(x.rows * x.cols);
    for r in 0..y.rows {
        for c in 0..y.cols {
            let v = y.get(r, c);
            mask.push(v > 0.0);
            if v <= 0.0 {
                *y.get_mut(r, c) = 0.0;
            }
        }
    }
    (y, mask)
}

/// ReLU backward: zeroes gradients where the input was ≤ 0.
pub fn relu_backward(dy: &Matrix, mask: &[bool]) -> Matrix {
    let mut dx = dy.clone();
    let mut k = 0;
    for r in 0..dx.rows {
        for c in 0..dx.cols {
            if !mask[k] {
                *dx.get_mut(r, c) = 0.0;
            }
            k += 1;
        }
    }
    dx
}

/// One hypergraph-convolution block: `y = ReLU(BN(Â x W)) (+ x if dims
/// match — the paper's skip connections)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvBlock {
    /// The affine part.
    pub lin: Linear,
    /// Normalization after the convolution.
    pub bn: BatchNorm,
    /// Whether a residual skip is applied.
    pub skip: bool,
}

/// Forward cache for [`ConvBlock`].
#[derive(Debug, Clone)]
pub struct ConvCache {
    lin: LinearCache,
    bn: BnCache,
    mask: Vec<bool>,
}

impl ConvBlock {
    /// A block mapping `in_dim → out_dim`; the skip engages iff they match.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            lin: Linear::new(in_dim, out_dim, rng),
            bn: BatchNorm::new(out_dim),
            skip: in_dim == out_dim,
        }
    }

    /// Training-mode forward.
    pub fn forward_train(&mut self, adj: &SparseSym, x: &Matrix) -> (Matrix, ConvCache) {
        let ax = adj.spmm(x);
        let (z, lin_cache) = self.lin.forward(&ax);
        let (b, bn_cache) = self.bn.forward_train(&z);
        let (mut y, mask) = relu_forward(&b);
        if self.skip {
            y.add_assign(x);
        }
        (
            y,
            ConvCache {
                lin: lin_cache,
                bn: bn_cache,
                mask,
            },
        )
    }

    /// Inference-mode forward.
    pub fn forward_eval(&self, adj: &SparseSym, x: &Matrix) -> Matrix {
        let ax = adj.spmm(x);
        let (z, _) = self.lin.forward(&ax);
        let b = self.bn.forward_eval(&z);
        let (mut y, _) = relu_forward(&b);
        if self.skip {
            y.add_assign(x);
        }
        y
    }

    /// Backward; returns `dx`.
    pub fn backward(&mut self, adj: &SparseSym, cache: &ConvCache, dy: &Matrix) -> Matrix {
        let db = relu_backward(dy, &cache.mask);
        let dz = self.bn.backward(&cache.bn, &db);
        let dax = self.lin.backward(&cache.lin, &dz);
        // Â is symmetric, so dX = Â · dAX.
        let mut dx = adj.spmm(&dax);
        if self.skip {
            dx.add_assign(dy);
        }
        dx
    }

    /// Visits all parameters.
    pub fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.lin.params_mut().chain(self.bn.params_mut())
    }
}

/// Convenience: seeded RNG for initialization.
pub fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Optimizer sweep over a parameter iterator.
pub fn adam_step_all<'a>(params: impl Iterator<Item = &'a mut Param>, opt: &AdamOptions, t: usize) {
    for p in params {
        p.adam_step(opt, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_grad(f: &mut dyn FnMut(f64) -> f64, x: f64) -> f64 {
        let h = 1e-5;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn linear_gradient_check() {
        let mut rng = init_rng(3);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);
        // Loss = sum(y²)/2; dL/dy = y.
        let (y, cache) = lin.forward(&x);
        let dx = lin.backward(&cache, &y);
        // Check dL/dW[0] numerically.
        let w0 = lin.w.w[0];
        let mut f = |w: f64| {
            let mut l2 = lin.clone();
            l2.w.w[0] = w;
            let (y2, _) = l2.forward(&x);
            y2.data().iter().map(|v| v * v).sum::<f64>() / 2.0
        };
        let num = numeric_grad(&mut f, w0);
        assert!(
            (lin.w.g[0] - num).abs() < 1e-6,
            "analytic {} vs numeric {num}",
            lin.w.g[0]
        );
        // Check dx numerically for one element.
        let mut fx = |v: f64| {
            let mut x2 = x.clone();
            *x2.get_mut(0, 0) = v;
            let (y2, _) = lin.forward(&x2);
            y2.data().iter().map(|u| u * u).sum::<f64>() / 2.0
        };
        let numx = numeric_grad(&mut fx, x.get(0, 0));
        assert!((dx.get(0, 0) - numx).abs() < 1e-6);
    }

    #[test]
    fn batchnorm_normalizes_and_backprops() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let (y, cache) = bn.forward_train(&x);
        // Output columns are standardized.
        let means = y.column_means();
        assert!(means.iter().all(|m| m.abs() < 1e-9), "{means:?}");
        // Backward of a constant gradient is ~0 (mean removal).
        let dy = Matrix::from_fn(4, 2, |_, _| 1.0);
        let dx = bn.backward(&cache, &dy);
        assert!(dx.data().iter().all(|v| v.abs() < 1e-9), "{:?}", dx.data());
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let x = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        for _ in 0..200 {
            let _ = bn.forward_train(&x);
        }
        let y = bn.forward_eval(&Matrix::from_vec(1, 1, vec![2.5]));
        // 2.5 is the running mean ⇒ output ≈ β = 0.
        assert!(y.get(0, 0).abs() < 0.05, "{}", y.get(0, 0));
    }

    #[test]
    fn relu_masks() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let (y, mask) = relu_forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let dy = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let dx = relu_backward(&dy, &mask);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn conv_block_skip_engages_on_matching_dims() {
        let mut rng = init_rng(5);
        assert!(ConvBlock::new(8, 8, &mut rng).skip);
        assert!(!ConvBlock::new(8, 16, &mut rng).skip);
    }

    #[test]
    fn conv_block_gradient_check() {
        let mut rng = init_rng(7);
        let mut block = ConvBlock::new(2, 2, &mut rng);
        let adj = SparseSym::normalized_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let x = Matrix::from_vec(3, 2, vec![0.5, -0.2, 1.0, 0.8, -0.4, 0.1]);
        // Use eval-mode-free path: train forward once and backprop sum(y²)/2.
        let (y, cache) = block.forward_train(&adj, &x);
        let _ = block.backward(&adj, &cache, &y);
        let analytic = block.lin.w.g[0];
        let base = block.clone();
        let mut f = |w: f64| {
            let mut b2 = base.clone();
            b2.lin.w.w[0] = w;
            let (y2, _) = b2.forward_train(&adj, &x);
            y2.data().iter().map(|v| v * v).sum::<f64>() / 2.0
        };
        let num = numeric_grad(&mut f, base.lin.w.w[0]);
        assert!(
            (analytic - num).abs() < 1e-5,
            "analytic {analytic} vs numeric {num}"
        );
    }
}
