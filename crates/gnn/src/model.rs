//! The Total-Cost predictor (Figure 4 of the paper).

use crate::layers::{
    adam_step_all, init_rng, relu_backward, relu_forward, BatchNorm, BnCache, ConvBlock, ConvCache,
    Linear, LinearCache,
};
use crate::optim::{AdamOptions, Param};
use crate::sample::GraphSample;
use crate::tensor::Matrix;

/// Architecture hyperparameters. Defaults match the paper: 4 branches × 3
/// blocks, conv dims 35/64/32, head dims 32/64/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Node feature width (35 in the paper).
    pub in_dim: usize,
    /// Conv hidden width (64).
    pub hidden_dim: usize,
    /// Embedding width (32).
    pub out_dim: usize,
    /// Number of convolution branches (4).
    pub branches: usize,
    /// Prediction-head hidden width (64).
    pub head_hidden: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            in_dim: 35,
            hidden_dim: 64,
            out_dim: 32,
            branches: 4,
            head_hidden: 64,
        }
    }
}

/// One convolution branch: three blocks `in → hidden → hidden → out`
/// (skip connections engage on the middle block where dims match).
#[derive(Debug, Clone, PartialEq)]
struct Branch {
    blocks: Vec<ConvBlock>,
}

struct BranchCache {
    caches: Vec<ConvCache>,
}

impl Branch {
    fn new(cfg: &ModelConfig, rng: &mut rand::rngs::StdRng) -> Self {
        Self {
            blocks: vec![
                ConvBlock::new(cfg.in_dim, cfg.hidden_dim, rng),
                ConvBlock::new(cfg.hidden_dim, cfg.hidden_dim, rng),
                ConvBlock::new(cfg.hidden_dim, cfg.out_dim, rng),
            ],
        }
    }

    fn forward_train(&mut self, sample: &GraphSample) -> (Matrix, BranchCache) {
        let mut x = sample.features.clone();
        let mut caches = Vec::with_capacity(self.blocks.len());
        for b in &mut self.blocks {
            let (y, c) = b.forward_train(&sample.adj, &x);
            caches.push(c);
            x = y;
        }
        (x, BranchCache { caches })
    }

    fn forward_eval(&self, sample: &GraphSample) -> Matrix {
        let mut x = sample.features.clone();
        for b in &self.blocks {
            x = b.forward_eval(&sample.adj, &x);
        }
        x
    }

    fn backward(&mut self, sample: &GraphSample, cache: &BranchCache, dy: &Matrix) -> Matrix {
        let mut d = dy.clone();
        for (b, c) in self.blocks.iter_mut().zip(&cache.caches).rev() {
            d = b.backward(&sample.adj, c, &d);
        }
        d
    }

    fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.blocks.iter_mut().flat_map(|b| b.params_mut())
    }
}

/// The prediction head: `Linear(out→hidden) → BN → ReLU → Linear(hidden→1)`.
#[derive(Debug, Clone, PartialEq)]
struct Head {
    l1: Linear,
    bn: BatchNorm,
    l2: Linear,
}

struct HeadCache {
    c1: LinearCache,
    bn: BnCache,
    mask: Vec<bool>,
    c2: LinearCache,
}

impl Head {
    fn new(cfg: &ModelConfig, rng: &mut rand::rngs::StdRng) -> Self {
        Self {
            l1: Linear::new(cfg.out_dim, cfg.head_hidden, rng),
            bn: BatchNorm::new(cfg.head_hidden),
            l2: Linear::new(cfg.head_hidden, 1, rng),
        }
    }

    fn forward_train(&mut self, emb: &Matrix) -> (Matrix, HeadCache) {
        let (z1, c1) = self.l1.forward(emb);
        let (b, bn) = self.bn.forward_train(&z1);
        let (h, mask) = relu_forward(&b);
        let (y, c2) = self.l2.forward(&h);
        (y, HeadCache { c1, bn, mask, c2 })
    }

    fn forward_eval(&self, emb: &Matrix) -> Matrix {
        let (z1, _) = self.l1.forward(emb);
        let b = self.bn.forward_eval(&z1);
        let (h, _) = relu_forward(&b);
        let (y, _) = self.l2.forward(&h);
        y
    }

    fn backward(&mut self, cache: &HeadCache, dy: &Matrix) -> Matrix {
        let dh = self.l2.backward(&cache.c2, dy);
        let db = relu_backward(&dh, &cache.mask);
        let dz1 = self.bn.backward(&cache.bn, &db);
        self.l1.backward(&cache.c1, &dz1)
    }

    fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.l1
            .params_mut()
            .chain(self.bn.params_mut())
            .chain(self.l2.params_mut())
    }
}

/// The full model: branches → accumulate → mean pool → head.
#[derive(Debug, Clone, PartialEq)]
pub struct TotalCostModel {
    cfg: ModelConfig,
    branches: Vec<Branch>,
    head: Head,
    step: usize,
}

impl TotalCostModel {
    /// A randomly initialized model.
    pub fn new(cfg: &ModelConfig, seed: u64) -> Self {
        let mut rng = init_rng(seed);
        Self {
            cfg: *cfg,
            branches: (0..cfg.branches)
                .map(|_| Branch::new(cfg, &mut rng))
                .collect(),
            head: Head::new(cfg, &mut rng),
            step: 0,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Inference: predicted Total Cost per sample, one forward pass per
    /// sample. [`Self::predict_batched`] is the fast path; this per-sample
    /// loop is kept as the reference implementation the batched kernel is
    /// pinned against (bitwise, see the `batched_forward` proptests).
    ///
    /// # Panics
    ///
    /// Panics if a sample's feature width differs from `cfg.in_dim`.
    pub fn predict(&self, samples: &[GraphSample]) -> Vec<f64> {
        samples
            .iter()
            .map(|s| {
                assert_eq!(s.features.cols, self.cfg.in_dim, "feature width mismatch");
                let emb = self.embed_eval(s);
                let y = self
                    .head
                    .forward_eval(&Matrix::from_vec(1, self.cfg.out_dim, emb));
                y.get(0, 0)
            })
            .collect()
    }

    /// Batched inference: packs all samples into one block-diagonal
    /// sample ([`GraphSample::batch`]) and runs a single forward pass, so
    /// the row-parallel matmul kernels see `Σ nodes` rows instead of one
    /// small matrix per sample. Output is bit-identical to [`Self::predict`]:
    /// block-diagonal propagation touches the same values in the same
    /// order, the segment mean pool reproduces `column_means` per segment,
    /// and every head kernel is row-independent.
    ///
    /// # Panics
    ///
    /// Panics if a sample's feature width differs from `cfg.in_dim`.
    pub fn predict_batched(&self, samples: &[GraphSample]) -> Vec<f64> {
        if samples.is_empty() {
            return Vec::new();
        }
        for s in samples {
            assert_eq!(s.features.cols, self.cfg.in_dim, "feature width mismatch");
        }
        let refs: Vec<&GraphSample> = samples.iter().collect();
        let (merged, seg) = GraphSample::batch(&refs);
        let mut acc = Matrix::zeros(merged.node_count(), self.cfg.out_dim);
        for b in &self.branches {
            acc.add_assign(&b.forward_eval(&merged));
        }
        // Segment-wise mean pool: sum rows in order, divide once at the
        // end — the exact operation order of `Matrix::column_means` on the
        // per-sample slice.
        let bsz = samples.len();
        let mut emb = Matrix::zeros(bsz, self.cfg.out_dim);
        for gi in 0..bsz {
            let (s, e) = (seg[gi], seg[gi + 1]);
            let n = (e - s).max(1) as f64;
            for r in s..e {
                for c in 0..self.cfg.out_dim {
                    *emb.get_mut(gi, c) += acc.get(r, c);
                }
            }
            for c in 0..self.cfg.out_dim {
                *emb.get_mut(gi, c) /= n;
            }
        }
        let y = self.head.forward_eval(&emb);
        (0..bsz).map(|gi| y.get(gi, 0)).collect()
    }

    fn embed_eval(&self, s: &GraphSample) -> Vec<f64> {
        let mut acc = Matrix::zeros(s.node_count(), self.cfg.out_dim);
        for b in &self.branches {
            acc.add_assign(&b.forward_eval(s));
        }
        acc.column_means()
    }

    /// One training step over a minibatch; returns the batch MSE.
    ///
    /// Graphs are batched PyG-style — block-diagonal adjacency, features
    /// stacked — so batch normalization sees all nodes of the minibatch
    /// (keeping training and running-stat inference consistent).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty.
    pub fn train_batch(&mut self, batch: &[(&GraphSample, f64)], opt: &AdamOptions) -> f64 {
        assert!(!batch.is_empty(), "empty batch");
        let bsz = batch.len();
        // Merge the minibatch into one disjoint-union graph.
        let samples: Vec<&GraphSample> = batch.iter().map(|(s, _)| *s).collect();
        let (merged, seg_start) = GraphSample::batch(&samples);
        let total_nodes = merged.node_count();
        // Forward through all branches, accumulating node embeddings.
        let mut branch_caches = Vec::with_capacity(self.branches.len());
        let mut acc = Matrix::zeros(total_nodes, self.cfg.out_dim);
        for b in &mut self.branches {
            let (y, c) = b.forward_train(&merged);
            acc.add_assign(&y);
            branch_caches.push(c);
        }
        // Segment-wise mean pooling.
        let mut emb = Matrix::zeros(bsz, self.cfg.out_dim);
        for gi in 0..bsz {
            let (s, e) = (seg_start[gi], seg_start[gi + 1]);
            let n = (e - s).max(1) as f64;
            for r in s..e {
                for c in 0..self.cfg.out_dim {
                    *emb.get_mut(gi, c) += acc.get(r, c) / n;
                }
            }
        }
        let (pred, head_cache) = self.head.forward_train(&emb);
        // MSE loss and gradient.
        let mut dpred = Matrix::zeros(bsz, 1);
        let mut loss = 0.0;
        for (gi, (_, label)) in batch.iter().enumerate() {
            let err = pred.get(gi, 0) - label;
            loss += err * err;
            *dpred.get_mut(gi, 0) = 2.0 * err / bsz as f64;
        }
        loss /= bsz as f64;
        // Backward.
        self.zero_grads();
        let demb = self.head.backward(&head_cache, &dpred);
        let mut dnode = Matrix::zeros(total_nodes, self.cfg.out_dim);
        for gi in 0..bsz {
            let (s, e) = (seg_start[gi], seg_start[gi + 1]);
            let n = (e - s).max(1) as f64;
            for r in s..e {
                for c in 0..self.cfg.out_dim {
                    *dnode.get_mut(r, c) = demb.get(gi, c) / n;
                }
            }
        }
        for (b, c) in self.branches.iter_mut().zip(&branch_caches) {
            let _ = b.backward(&merged, c, &dnode);
        }
        self.step += 1;
        let step = self.step;
        adam_step_all(self.params_mut(), opt, step);
        loss
    }

    fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    fn params_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        let head = &mut self.head;
        self.branches
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .chain(head.params_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseSym;

    fn toy_sample(n: usize, bias: f64, cfg: &ModelConfig) -> GraphSample {
        let edges: Vec<(u32, u32, f64)> = (1..n as u32).map(|i| (i - 1, i, 1.0)).collect();
        GraphSample {
            adj: SparseSym::normalized_from_edges(n, &edges),
            features: Matrix::from_fn(n, cfg.in_dim, |r, c| {
                bias + 0.01 * (r as f64) - 0.005 * (c as f64)
            }),
        }
    }

    #[test]
    fn prediction_is_deterministic() {
        let cfg = ModelConfig::default();
        let m1 = TotalCostModel::new(&cfg, 11);
        let m2 = TotalCostModel::new(&cfg, 11);
        let s = toy_sample(6, 0.5, &cfg);
        assert_eq!(m1.predict(std::slice::from_ref(&s)), m2.predict(&[s]));
    }

    #[test]
    fn training_reduces_loss_on_a_separable_task() {
        let cfg = ModelConfig {
            in_dim: 8,
            hidden_dim: 16,
            out_dim: 8,
            branches: 2,
            head_hidden: 16,
        };
        let mut model = TotalCostModel::new(&cfg, 3);
        let data: Vec<(GraphSample, f64)> = (0..16)
            .map(|i| {
                let bias = i as f64 / 16.0;
                (toy_sample(5, bias, &cfg), 2.0 * bias)
            })
            .collect();
        let opt = AdamOptions {
            lr: 5e-3,
            ..Default::default()
        };
        let batch: Vec<(&GraphSample, f64)> = data.iter().map(|(s, l)| (s, *l)).collect();
        let first = model.train_batch(&batch, &opt);
        let mut last = first;
        for _ in 0..150 {
            last = model.train_batch(&batch, &opt);
        }
        assert!(
            last < first * 0.3,
            "loss did not drop: first {first}, last {last}"
        );
    }

    #[test]
    fn different_graphs_get_different_predictions() {
        let cfg = ModelConfig::default();
        let model = TotalCostModel::new(&cfg, 5);
        let a = toy_sample(4, 0.0, &cfg);
        let b = toy_sample(9, 1.0, &cfg);
        let y = model.predict(&[a, b]);
        assert_ne!(y[0], y[1]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_feature_width_panics() {
        let cfg = ModelConfig::default();
        let model = TotalCostModel::new(&cfg, 1);
        let bad = GraphSample {
            adj: SparseSym::normalized_from_edges(2, &[]),
            features: Matrix::zeros(2, 7),
        };
        let _ = model.predict(&[bad]);
    }
}
