//! Model inputs: one graph per cluster-shape candidate.

use crate::sparse::SparseSym;
use crate::tensor::Matrix;

/// One model input: a normalized cluster graph plus per-node features
/// (which already include the candidate shape as the two design
/// parameters, per the paper's feature list).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSample {
    /// Normalized propagation operator over the cluster graph.
    pub adj: SparseSym,
    /// `n × in_dim` node features.
    pub features: Matrix,
}

impl GraphSample {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.n()
    }

    /// Packs samples into one block-diagonal sample (PyG-style graph
    /// batching): adjacencies concatenate on the block diagonal, feature
    /// matrices stack row-wise. Returns the merged sample and the segment
    /// starts (`len = samples.len() + 1`), so row `r` of the merged
    /// matrices belongs to sample `gi` iff `seg[gi] <= r < seg[gi + 1]`.
    ///
    /// Because the normalized propagation operator is local to each edge's
    /// endpoints, propagating through the merged sample touches exactly
    /// the same values in the same order as propagating each part on its
    /// own — batched forwards are bit-identical to per-sample forwards.
    ///
    /// # Panics
    ///
    /// Panics if the samples disagree on feature width.
    pub fn batch(samples: &[&GraphSample]) -> (GraphSample, Vec<usize>) {
        let cols = samples.first().map_or(0, |s| s.features.cols);
        let total_nodes: usize = samples.iter().map(|s| s.node_count()).sum();
        let parts: Vec<&SparseSym> = samples.iter().map(|s| &s.adj).collect();
        let adj = SparseSym::block_diag(&parts);
        let mut features = Matrix::zeros(total_nodes, cols);
        let mut seg = Vec::with_capacity(samples.len() + 1);
        let mut row = 0;
        for s in samples {
            assert_eq!(s.features.cols, cols, "feature width mismatch in batch");
            seg.push(row);
            for r in 0..s.node_count() {
                features.row_mut(row).copy_from_slice(s.features.row(r));
                row += 1;
            }
        }
        seg.push(row);
        (GraphSample { adj, features }, seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count() {
        let s = GraphSample {
            adj: SparseSym::normalized_from_edges(4, &[(0, 1, 1.0)]),
            features: Matrix::zeros(4, 35),
        };
        assert_eq!(s.node_count(), 4);
    }
}
