//! Model inputs: one graph per cluster-shape candidate.

use crate::sparse::SparseSym;
use crate::tensor::Matrix;

/// One model input: a normalized cluster graph plus per-node features
/// (which already include the candidate shape as the two design
/// parameters, per the paper's feature list).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSample {
    /// Normalized propagation operator over the cluster graph.
    pub adj: SparseSym,
    /// `n × in_dim` node features.
    pub features: Matrix,
}

impl GraphSample {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count() {
        let s = GraphSample {
            adj: SparseSym::normalized_from_edges(4, &[(0, 1, 1.0)]),
            features: Matrix::zeros(4, 35),
        };
        assert_eq!(s.node_count(), 4);
    }
}
