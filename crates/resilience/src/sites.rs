//! Canonical names for check sites and fault-injection sites.
//!
//! Check sites label where a [`RunControl`](crate::RunControl) check
//! observed an interrupt; fault sites are the `faultpoint!` locations the
//! chaos harness arms. One constant per site, so the harness, the flow
//! and the docs can never drift apart on names.

/// Pre-flight check before any stage runs.
pub const FLOW_START: &str = "flow.start";
/// Boundary check before the shaping stage.
pub const FLOW_SHAPING: &str = "flow.shaping";
/// Boundary check before cluster placement.
pub const FLOW_CLUSTER_PLACEMENT: &str = "flow.cluster_placement";
/// Boundary check before the flat placement.
pub const FLOW_FLAT_PLACEMENT: &str = "flow.flat_placement";
/// Boundary check before legalization + refinement.
pub const FLOW_LEGALIZE: &str = "flow.legalize";
/// Boundary check before CTS/route/STA.
pub const FLOW_PPA: &str = "flow.ppa";
/// Per-outer-iteration check inside the global placer's CG loop.
pub const PLACE_OUTER: &str = "place.outer";
/// Per-candidate check inside the V-P&R shape sweep.
pub const VPR_CANDIDATE: &str = "vpr.candidate";
/// Uncounted per-chunk poll inside `cp-parallel` worker loops.
pub const POOL_CHUNK: &str = "parallel.chunk";

/// Fault: poison the global placer's solve with a NaN.
pub const SOLVER_NAN: &str = "place.solver.nan";
/// Fault: fail one V-P&R candidate evaluation with a typed error.
pub const VPR_CANDIDATE_FAIL: &str = "vpr.candidate.fail";
/// Fault: panic inside a fallible `cp-parallel` chunk (contained by the
/// pool's `catch_unwind` and re-raised as a typed error).
pub const WORKER_PANIC: &str = "parallel.worker.panic";
/// Fault: force a budget interrupt at the next counted check.
pub const FAULT_BUDGET_TRIP: &str = "flow.budget.trip";
/// Fault: request cancellation at the next counted check.
pub const FAULT_CANCEL: &str = "flow.cancel";
/// Fault: force a deadline interrupt at the next counted check.
pub const FAULT_DEADLINE: &str = "flow.deadline";

/// Every fault-injection site the chaos harness sweeps.
pub const FAULTS: [&str; 6] = [
    SOLVER_NAN,
    VPR_CANDIDATE_FAIL,
    WORKER_PANIC,
    FAULT_BUDGET_TRIP,
    FAULT_CANCEL,
    FAULT_DEADLINE,
];
