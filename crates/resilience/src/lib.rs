//! Resilient execution primitives for the placement flow.
//!
//! The flow is a long multi-stage pipeline; running it as a service means
//! it must be interruptible without being killable only by `SIGKILL`.
//! This crate is the dependency-free substrate the rest of the workspace
//! threads through its loops:
//!
//! - [`RunControl`] — a cloneable handle carrying a cooperative
//!   cancellation token, a monotonic deadline and an optional memory
//!   budget. Long-running code calls [`RunControl::check`] at natural
//!   boundaries (flow stages, placer outer iterations, V-P&R candidates)
//!   and unwinds with a typed [`Interrupt`] when the run should stop.
//! - [`Interrupt`] / [`InterruptKind`] — why a run was stopped, and at
//!   which checkpoint site. Higher layers wrap these into their own typed
//!   errors (`FlowError::Cancelled` and friends in `cp-core`).
//! - [`faultpoint!`] and [`fault_fires`] — deterministic fault-injection
//!   sites, compiled to a constant `false` unless the `fault-injection`
//!   feature is enabled. The chaos harness (`tracetool chaos`) arms sites
//!   by global hit index, so a given `(site, hit)` pair reproduces the
//!   same fault on every run.
//!
//! The crate is intentionally free of any workspace dependency so every
//! layer (including `cp-parallel`, the bottom of the stack) can use it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

pub mod sites;

#[cfg(feature = "fault-injection")]
pub mod fault;

/// `true` when this build carries the fault-injection registry.
pub const FAULT_INJECTION_COMPILED: bool = cfg!(feature = "fault-injection");

/// Returns whether the armed fault at `site` fires on this hit.
///
/// Every call counts as one *hit* of the site; a site armed at hit `n`
/// (see [`fault::arm`]) returns `true` exactly on its `n`-th hit and
/// `false` otherwise. Without the `fault-injection` feature this is a
/// constant `false` the optimizer removes together with the guarded
/// fault code.
#[cfg(feature = "fault-injection")]
pub fn fault_fires(site: &str) -> bool {
    fault::fires(site)
}

/// Fault-injection disabled: every site is permanently cold.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fault_fires(_site: &str) -> bool {
    false
}

/// Marks a fault-injection site. Expands to [`fault_fires`], so the call
/// compiles out entirely when the `fault-injection` feature is off.
///
/// ```
/// if cp_resilience::faultpoint!(cp_resilience::sites::SOLVER_NAN) {
///     // inject the fault
/// }
/// ```
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        $crate::fault_fires($site)
    };
}

/// Why a run was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptKind {
    /// [`RunControl::cancel`] was called (or a cancel fault fired).
    Cancelled,
    /// The monotonic deadline passed.
    DeadlineExceeded,
    /// The memory budget was exceeded.
    BudgetExceeded,
}

impl InterruptKind {
    /// Short stable label (`cancelled` / `deadline` / `budget`).
    pub fn label(self) -> &'static str {
        match self {
            Self::Cancelled => "cancelled",
            Self::DeadlineExceeded => "deadline",
            Self::BudgetExceeded => "budget",
        }
    }
}

/// A typed interruption: what stopped the run and where it was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct Interrupt {
    /// Why the run stopped.
    pub kind: InterruptKind,
    /// The check site that observed the interruption (see [`sites`]).
    pub site: &'static str,
    /// Seconds the run had been going when the interrupt was observed.
    pub elapsed_s: f64,
    /// Live heap bytes at the check ([`InterruptKind::BudgetExceeded`]
    /// only; 0 when unknown).
    pub heap_bytes: u64,
    /// The configured budget in bytes (`BudgetExceeded` only; 0 otherwise).
    pub budget_bytes: u64,
}

impl Interrupt {
    /// Canonical machine-readable status label for run-ledger entries:
    /// `interrupted:<kind>@<site>` (e.g. `interrupted:deadline@place.outer`).
    pub fn status_label(&self) -> String {
        format!("interrupted:{}@{}", self.kind.label(), self.site)
    }
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            InterruptKind::Cancelled => {
                write!(
                    f,
                    "cancelled at `{}` after {:.3}s",
                    self.site, self.elapsed_s
                )
            }
            InterruptKind::DeadlineExceeded => write!(
                f,
                "deadline exceeded at `{}` after {:.3}s",
                self.site, self.elapsed_s
            ),
            InterruptKind::BudgetExceeded => write!(
                f,
                "memory budget exceeded at `{}`: {} bytes live > {} budget",
                self.site, self.heap_bytes, self.budget_bytes
            ),
        }
    }
}

/// The process-wide heap probe the budget check consults: returns live
/// heap bytes. Installed once (e.g. by `cp-core`'s counting allocator
/// when `alloc-telemetry` is enabled); without a probe — and without a
/// per-control override — budgets never trip.
static HEAP_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the global heap probe. The first install wins; later calls
/// are ignored (the probe is process-wide state, not per-run).
pub fn install_heap_probe(probe: fn() -> u64) {
    let _ = HEAP_PROBE.set(probe);
}

fn global_heap_probe() -> Option<fn() -> u64> {
    HEAP_PROBE.get().copied()
}

struct ControlState {
    cancelled: AtomicBool,
    started: Instant,
    deadline: Option<Instant>,
    budget_bytes: Option<u64>,
    /// Probe override for this control (deterministic tests); falls back
    /// to the global probe when `None`.
    probe: Option<fn() -> u64>,
    /// Deterministic test/chaos knob: auto-cancel on the n-th counted
    /// check (0 = disabled).
    cancel_after_checks: u64,
    checks: AtomicU64,
}

/// A cloneable cancellation/deadline/budget handle threaded through one
/// run of the flow.
///
/// Clones share state: cancelling any clone interrupts every holder. The
/// handle is cheap to clone (one `Arc`) and safe to poll from worker
/// threads.
///
/// Two probes exist on purpose:
///
/// - [`RunControl::check`] — the *counted* check used at deterministic
///   sites (stage boundaries, placer outer iterations, V-P&R candidates).
///   The `cancel_after_checks` test knob counts only these.
/// - [`RunControl::poll`] — an uncounted check for opportunistic sites
///   (the thread pool's chunk loop) whose hit count depends on
///   scheduling.
#[derive(Clone)]
pub struct RunControl {
    state: Arc<ControlState>,
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.state.deadline)
            .field("budget_bytes", &self.state.budget_bytes)
            .finish()
    }
}

impl Default for RunControl {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl RunControl {
    fn build(
        deadline: Option<Instant>,
        budget_bytes: Option<u64>,
        probe: Option<fn() -> u64>,
        cancel_after_checks: u64,
    ) -> Self {
        Self {
            state: Arc::new(ControlState {
                cancelled: AtomicBool::new(false),
                started: Instant::now(),
                deadline,
                budget_bytes,
                probe,
                cancel_after_checks,
                checks: AtomicU64::new(0),
            }),
        }
    }

    /// A control that never interrupts (unless [`cancel`](Self::cancel)ed).
    pub fn unlimited() -> Self {
        Self::build(None, None, None, 0)
    }

    /// Adds a monotonic deadline `timeout` from now. The clock starts at
    /// construction of the *returned* control.
    pub fn with_deadline(self, timeout: Duration) -> Self {
        Self::build(
            Some(Instant::now() + timeout),
            self.state.budget_bytes,
            self.state.probe,
            self.state.cancel_after_checks,
        )
    }

    /// Adds a live-heap budget in bytes, measured through the heap probe
    /// (the global one from [`install_heap_probe`], or this control's
    /// override). Without any probe the budget never trips.
    pub fn with_memory_budget(self, bytes: u64) -> Self {
        Self::build(
            self.state.deadline,
            Some(bytes),
            self.state.probe,
            self.state.cancel_after_checks,
        )
    }

    /// Overrides the heap probe for this control — deterministic tests
    /// inject a fake probe instead of a real allocator.
    pub fn with_heap_probe(self, probe: fn() -> u64) -> Self {
        Self::build(
            self.state.deadline,
            self.state.budget_bytes,
            Some(probe),
            self.state.cancel_after_checks,
        )
    }

    /// Deterministic cancellation knob: the `n`-th counted
    /// [`check`](Self::check) cancels the run (1-based; 0 disables).
    /// Used by tests and the chaos harness to interrupt at a
    /// reproducible point without wall-clock races.
    pub fn cancel_after_checks(self, n: u64) -> Self {
        Self::build(
            self.state.deadline,
            self.state.budget_bytes,
            self.state.probe,
            n,
        )
    }

    /// Requests cooperative cancellation; every clone observes it at its
    /// next check. Idempotent.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// Seconds since this control was created.
    pub fn elapsed_s(&self) -> f64 {
        self.state.started.elapsed().as_secs_f64()
    }

    /// Counted checks performed so far.
    pub fn checks(&self) -> u64 {
        self.state.checks.load(Ordering::SeqCst)
    }

    fn heap_bytes(&self) -> u64 {
        match self.state.probe.or_else(global_heap_probe) {
            Some(p) => p(),
            None => 0,
        }
    }

    fn interrupt(&self, kind: InterruptKind, site: &'static str, heap: u64) -> Interrupt {
        Interrupt {
            kind,
            site,
            elapsed_s: self.elapsed_s(),
            heap_bytes: heap,
            budget_bytes: match kind {
                InterruptKind::BudgetExceeded => self.state.budget_bytes.unwrap_or(0),
                _ => 0,
            },
        }
    }

    fn evaluate(&self, site: &'static str) -> Result<(), Interrupt> {
        if self.is_cancelled() {
            return Err(self.interrupt(InterruptKind::Cancelled, site, 0));
        }
        if faultpoint!(sites::FAULT_DEADLINE) {
            return Err(self.interrupt(InterruptKind::DeadlineExceeded, site, 0));
        }
        if let Some(d) = self.state.deadline {
            if Instant::now() >= d {
                return Err(self.interrupt(InterruptKind::DeadlineExceeded, site, 0));
            }
        }
        if faultpoint!(sites::FAULT_BUDGET_TRIP) {
            let heap = self.heap_bytes();
            return Err(self.interrupt(InterruptKind::BudgetExceeded, site, heap.max(1)));
        }
        if let Some(budget) = self.state.budget_bytes {
            let heap = self.heap_bytes();
            if heap > budget {
                return Err(self.interrupt(InterruptKind::BudgetExceeded, site, heap));
            }
        }
        Ok(())
    }

    /// The counted cooperative check: returns the typed [`Interrupt`]
    /// when the run should stop. Armed faults ([`sites::FAULT_CANCEL`],
    /// [`sites::FAULT_DEADLINE`], [`sites::FAULT_BUDGET_TRIP`]) are
    /// consulted here, so the chaos harness can interrupt any counted
    /// site deterministically.
    ///
    /// # Errors
    ///
    /// The [`Interrupt`] describing why (and at which site) the run must
    /// stop.
    pub fn check(&self, site: &'static str) -> Result<(), Interrupt> {
        let n = self.state.checks.fetch_add(1, Ordering::SeqCst) + 1;
        if self.state.cancel_after_checks != 0 && n >= self.state.cancel_after_checks {
            self.cancel();
        }
        if faultpoint!(sites::FAULT_CANCEL) {
            self.cancel();
        }
        self.evaluate(site)
    }

    /// The uncounted check for scheduling-dependent sites (the thread
    /// pool's chunk loop). Never consults the `cancel_after_checks`
    /// counter or the cancel fault, so counted-site determinism is
    /// preserved.
    ///
    /// # Errors
    ///
    /// The [`Interrupt`] describing why the run must stop.
    pub fn poll(&self, site: &'static str) -> Result<(), Interrupt> {
        self.evaluate(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_interrupts() {
        let c = RunControl::unlimited();
        for _ in 0..100 {
            c.check(sites::FLOW_START).expect("no interrupt");
        }
        assert_eq!(c.checks(), 100);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = RunControl::unlimited();
        let b = a.clone();
        a.cancel();
        let err = b.check(sites::FLOW_START).expect_err("cancelled");
        assert_eq!(err.kind, InterruptKind::Cancelled);
        assert_eq!(err.site, sites::FLOW_START);
    }

    #[test]
    fn expired_deadline_interrupts() {
        let c = RunControl::unlimited().with_deadline(Duration::from_secs(0));
        let err = c.check(sites::FLOW_START).expect_err("deadline");
        assert_eq!(err.kind, InterruptKind::DeadlineExceeded);
    }

    #[test]
    fn future_deadline_does_not_interrupt() {
        let c = RunControl::unlimited().with_deadline(Duration::from_secs(3600));
        c.check(sites::FLOW_START).expect("no interrupt");
    }

    #[test]
    fn budget_with_fake_probe_trips() {
        fn huge() -> u64 {
            1 << 40
        }
        let c = RunControl::unlimited()
            .with_memory_budget(1024)
            .with_heap_probe(huge);
        let err = c.check(sites::FLOW_START).expect_err("budget");
        assert_eq!(err.kind, InterruptKind::BudgetExceeded);
        assert_eq!(err.heap_bytes, 1 << 40);
        assert_eq!(err.budget_bytes, 1024);
        assert!(err.to_string().contains("memory budget"));
    }

    #[test]
    fn budget_without_probe_never_trips() {
        let c = RunControl::unlimited().with_memory_budget(1);
        // No global probe installed in this test binary's first run; even
        // if another test installed one, the per-control probe below wins.
        fn zero() -> u64 {
            0
        }
        let c = c.with_heap_probe(zero);
        c.check(sites::FLOW_START).expect("no interrupt");
    }

    #[test]
    fn cancel_after_checks_fires_on_the_nth_check() {
        let c = RunControl::unlimited().cancel_after_checks(3);
        c.check(sites::FLOW_START).expect("check 1 passes");
        c.check(sites::FLOW_START).expect("check 2 passes");
        let err = c.check(sites::FLOW_START).expect_err("check 3 cancels");
        assert_eq!(err.kind, InterruptKind::Cancelled);
        // Poll never counts.
        let p = RunControl::unlimited().cancel_after_checks(1);
        p.poll(sites::POOL_CHUNK).expect("poll is uncounted");
        assert_eq!(p.checks(), 0);
    }

    #[test]
    fn status_label_is_stable_per_kind_and_site() {
        let i = Interrupt {
            kind: InterruptKind::DeadlineExceeded,
            site: sites::FLOW_START,
            elapsed_s: 1.5,
            heap_bytes: 0,
            budget_bytes: 0,
        };
        assert_eq!(
            i.status_label(),
            format!("interrupted:deadline@{}", sites::FLOW_START)
        );
    }

    #[test]
    fn faultpoints_are_cold_without_the_feature() {
        #[cfg(not(feature = "fault-injection"))]
        {
            // black_box: observe the constants as runtime values.
            assert!(!std::hint::black_box(FAULT_INJECTION_COMPILED));
            let fires = |site: &'static str| faultpoint!(site);
            assert!(!fires(sites::SOLVER_NAN));
        }
    }
}
