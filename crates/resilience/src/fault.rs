//! Deterministic fault-injection registry (`fault-injection` feature).
//!
//! Faults are armed per *site* and fire on a specific global hit index:
//! `arm("place.solver.nan", 3)` makes the third execution of that
//! `faultpoint!` return `true` (exactly once). Hit counting is a single
//! process-wide counter per site, so a given `(site, hit)` pair names a
//! reproducible program point — modulo worker scheduling, which can
//! reorder *which thread* reaches the n-th hit, but never whether it
//! happens.
//!
//! The registry is process-global and test-friendly: [`disarm_all`]
//! resets everything between chaos cases.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

#[derive(Debug, Clone, Copy)]
struct ArmState {
    /// 1-based hit index the fault fires on.
    at_hit: u64,
    /// Hits observed so far.
    hits: u64,
    /// Times the fault actually fired.
    fired: u64,
}

fn registry() -> MutexGuard<'static, HashMap<String, ArmState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, ArmState>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Arms `site` to fire on its `at_hit`-th hit (1-based; 0 is clamped to
/// 1). Re-arming a site resets its counters.
pub fn arm(site: &str, at_hit: u64) {
    registry().insert(
        site.to_string(),
        ArmState {
            at_hit: at_hit.max(1),
            hits: 0,
            fired: 0,
        },
    );
}

/// Disarms every site and clears all counters.
pub fn disarm_all() {
    registry().clear();
}

/// One hit of `site`: returns `true` exactly when the armed hit index is
/// reached. Unarmed sites are free: one map lookup under a mutex.
pub fn fires(site: &str) -> bool {
    let mut reg = registry();
    let Some(state) = reg.get_mut(site) else {
        return false;
    };
    state.hits += 1;
    let fire = state.hits == state.at_hit;
    if fire {
        state.fired += 1;
    }
    fire
}

/// Hits observed at `site` since it was armed (0 when unarmed).
pub fn hits(site: &str) -> u64 {
    registry().get(site).map_or(0, |s| s.hits)
}

/// Times `site` actually fired since it was armed.
pub fn fired(site: &str) -> u64 {
    registry().get(site).map_or(0, |s| s.fired)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_on_the_armed_hit() {
        disarm_all();
        arm("test.site", 3);
        assert!(!fires("test.site"));
        assert!(!fires("test.site"));
        assert!(fires("test.site"));
        assert!(!fires("test.site"));
        assert_eq!(hits("test.site"), 4);
        assert_eq!(fired("test.site"), 1);
        disarm_all();
        assert!(!fires("test.site"));
        assert_eq!(hits("test.site"), 0);
    }

    #[test]
    fn unarmed_sites_never_fire() {
        disarm_all();
        assert!(!fires("test.other"));
        assert_eq!(fired("test.other"), 0);
    }
}
