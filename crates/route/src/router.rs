//! Net decomposition and GCell routing.

use crate::congestion::CongestionMap;
use crate::error::RouteError;
use cp_netlist::floorplan::{Floorplan, Rect};
use cp_netlist::netlist::{Netlist, PinRef};
use std::collections::BinaryHeap;

/// Router tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// GCell edge length in µm (0 = auto: three row heights).
    pub gcell_size: f64,
    /// Tracks per GCell edge per routing layer.
    pub tracks_per_layer: u32,
    /// Routing layers per direction.
    pub layers_per_direction: u32,
    /// Enable congestion-aware maze fallback when both L-shapes overflow.
    pub maze_fallback: bool,
    /// Margin (in GCells) around a segment's bbox for maze search.
    pub maze_margin: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            gcell_size: 0.0,
            tracks_per_layer: 10,
            layers_per_direction: 3,
            maze_fallback: true,
            maze_margin: 8,
        }
    }
}

/// The routing outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingResult {
    /// Routed wirelength in µm (GCell path length).
    pub wirelength: f64,
    /// Sum of net HPWLs in µm (for the detour factor).
    pub hpwl: f64,
    /// Edge demand/capacity map.
    pub congestion: CongestionMap,
    /// Segments that needed the maze fallback.
    pub mazed_segments: usize,
}

impl RoutingResult {
    /// Routed length over HPWL (≥ 1 for non-degenerate routes); feeds the
    /// post-route wire model.
    pub fn detour_factor(&self) -> f64 {
        if self.hpwl <= 0.0 {
            1.0
        } else {
            (self.wirelength / self.hpwl).max(1.0)
        }
    }
}

/// Routes a set of nets given as pin-position lists within `region`.
///
/// Multi-pin nets are decomposed over a Manhattan-distance Prim MST; each
/// two-pin segment takes the less congested L-shape, falling back to a
/// congestion-aware maze within the segment bbox (plus margin) when both
/// L-shapes hit a full edge.
///
/// # Errors
///
/// Returns [`RouteError::NonFinitePin`] if any pin coordinate is NaN or
/// infinite (such a pin cannot be mapped to a GCell).
pub fn route_nets(
    nets: &[Vec<(f64, f64)>],
    region: Rect,
    options: &RouterOptions,
) -> Result<RoutingResult, RouteError> {
    route_nets_with_blockages(nets, region, &[], options)
}

/// Like [`route_nets`], with macro obstructions: GCell edges under a
/// blockage keep only 40% of their capacity (macros consume the lower
/// routing layers).
///
/// # Errors
///
/// Returns [`RouteError::NonFinitePin`] if any pin coordinate is NaN or
/// infinite.
pub fn route_nets_with_blockages(
    nets: &[Vec<(f64, f64)>],
    region: Rect,
    blockages: &[Rect],
    options: &RouterOptions,
) -> Result<RoutingResult, RouteError> {
    for (ni, pins) in nets.iter().enumerate() {
        if pins.iter().any(|&(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(RouteError::NonFinitePin { net: ni });
        }
    }
    let gcell = if options.gcell_size > 0.0 {
        options.gcell_size
    } else {
        4.2 // three NanGate45-ish rows
    };
    let nx = ((region.width() / gcell).ceil() as usize).max(1);
    let ny = ((region.height() / gcell).ceil() as usize).max(1);
    let cap = (options.tracks_per_layer * options.layers_per_direction) as f64;
    let mut map = CongestionMap::new(nx, ny, gcell, cap, cap);
    for b in blockages {
        let i0 = (((b.llx - region.llx) / gcell).floor().max(0.0)) as usize;
        let j0 = (((b.lly - region.lly) / gcell).floor().max(0.0)) as usize;
        let i1 = (((b.urx - region.llx) / gcell).ceil().max(0.0)) as usize;
        let j1 = (((b.ury - region.lly) / gcell).ceil().max(0.0)) as usize;
        map.derate(i0, j0, i1.min(nx - 1), j1.min(ny - 1), 0.4);
    }

    let to_gcell = |x: f64, y: f64| -> (usize, usize) {
        let i = (((x - region.llx) / gcell) as isize).clamp(0, nx as isize - 1) as usize;
        let j = (((y - region.lly) / gcell) as isize).clamp(0, ny as isize - 1) as usize;
        (i, j)
    };

    // Route small-bbox nets first (they have the least flexibility).
    let mut order: Vec<usize> = (0..nets.len()).collect();
    let bbox_hp = |pins: &[(f64, f64)]| -> f64 {
        let (mut lx, mut ly, mut hx, mut hy) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for &(x, y) in pins {
            lx = lx.min(x);
            ly = ly.min(y);
            hx = hx.max(x);
            hy = hy.max(y);
        }
        (hx - lx) + (hy - ly)
    };
    order.sort_by(|&a, &b| bbox_hp(&nets[a]).total_cmp(&bbox_hp(&nets[b])));

    let mut wirelength = 0.0;
    let mut hpwl = 0.0;
    let mut mazed = 0usize;
    for &ni in &order {
        let pins = &nets[ni];
        if pins.len() < 2 {
            continue;
        }
        hpwl += bbox_hp(pins);
        let cells: Vec<(usize, usize)> = pins.iter().map(|&(x, y)| to_gcell(x, y)).collect();
        for (a, b) in mst_segments(&cells) {
            if a == b {
                continue;
            }
            let (len, used_maze) = route_segment(&mut map, a, b, options);
            wirelength += len * gcell;
            if used_maze {
                mazed += 1;
            }
        }
    }
    Ok(RoutingResult {
        wirelength,
        hpwl,
        congestion: map,
        mazed_segments: mazed,
    })
}

/// Routes a placed flat netlist (positions indexed as hypergraph vertices:
/// cells then ports). Clock nets are skipped — CTS owns them.
///
/// # Errors
///
/// Returns [`RouteError::PositionCountMismatch`] when `positions` is
/// shorter than the netlist's vertex count, and
/// [`RouteError::NonFinitePin`] when a pin coordinate is NaN or infinite.
pub fn route_placed_netlist(
    netlist: &Netlist,
    positions: &[(f64, f64)],
    floorplan: &Floorplan,
    options: &RouterOptions,
) -> Result<RoutingResult, RouteError> {
    let _span = cp_trace::span_with(
        "route.global",
        &[("nets", cp_trace::ArgValue::U(netlist.net_count() as u64))],
    );
    let expected = netlist.cell_count() + netlist.port_count();
    if positions.len() < expected {
        return Err(RouteError::PositionCountMismatch {
            expected,
            got: positions.len(),
        });
    }
    let mut opts = *options;
    if opts.gcell_size <= 0.0 {
        opts.gcell_size = 3.0 * floorplan.row_height;
    }
    opts.tracks_per_layer = netlist.library().tracks_per_layer;
    opts.layers_per_direction = netlist.library().horizontal_layers;
    let mut nets: Vec<Vec<(f64, f64)>> = Vec::with_capacity(netlist.net_count());
    for net in netlist.nets() {
        if net.is_clock {
            continue;
        }
        let mut pins = Vec::with_capacity(net.pin_count());
        for p in net.driver.iter().chain(net.sinks.iter()) {
            let v = match *p {
                PinRef::Cell { cell, .. } => netlist.cell_vertex(cell),
                PinRef::Port(port) => netlist.port_vertex(port),
            };
            pins.push(positions[v as usize]);
        }
        nets.push(pins);
    }
    route_nets_with_blockages(&nets, floorplan.die, &floorplan.blockages, &opts)
}

/// Decomposes a net into two-pin segments: exact rectilinear Steiner for
/// three pins (the Steiner point is the coordinate-wise median), Prim MST
/// in the Manhattan metric otherwise, star fallback for very high fanout.
fn mst_segments(cells: &[(usize, usize)]) -> Vec<((usize, usize), (usize, usize))> {
    let n = cells.len();
    if n == 3 {
        // The 3-pin RSMT routes every pin to the median point.
        let mut xs = [cells[0].0, cells[1].0, cells[2].0];
        let mut ys = [cells[0].1, cells[1].1, cells[2].1];
        xs.sort_unstable();
        ys.sort_unstable();
        let steiner = (xs[1], ys[1]);
        return cells
            .iter()
            .filter(|&&c| c != steiner)
            .map(|&c| (steiner, c))
            .collect();
    }
    if n > 1000 {
        return (1..n).map(|i| (cells[0], cells[i])).collect();
    }
    let dist =
        |a: (usize, usize), b: (usize, usize)| -> usize { a.0.abs_diff(b.0) + a.1.abs_diff(b.1) };
    let mut in_tree = vec![false; n];
    let mut best = vec![(usize::MAX, 0usize); n]; // (dist, parent)
    in_tree[0] = true;
    for i in 1..n {
        best[i] = (dist(cells[0], cells[i]), 0);
    }
    let mut segments = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let mut pick = usize::MAX;
        for i in 0..n {
            if !in_tree[i] && (pick == usize::MAX || best[i].0 < best[pick].0) {
                pick = i;
            }
        }
        if pick == usize::MAX {
            break;
        }
        in_tree[pick] = true;
        segments.push((cells[best[pick].1], cells[pick]));
        for i in 0..n {
            if !in_tree[i] {
                let d = dist(cells[pick], cells[i]);
                if d < best[i].0 {
                    best[i] = (d, pick);
                }
            }
        }
    }
    segments
}

/// Routes one segment; returns (GCell edges used, maze fallback used).
fn route_segment(
    map: &mut CongestionMap,
    a: (usize, usize),
    b: (usize, usize),
    options: &RouterOptions,
) -> (f64, bool) {
    // Straight lines and L-shapes.
    let util_l = |map: &CongestionMap, first_horizontal: bool| -> f64 {
        // An L runs horizontally at the start row (or end row) and
        // vertically at the corner column; take the worst edge utilization.
        let mut worst = 0.0f64;
        let (vx, y0, y1) = if first_horizontal {
            (b.0, a.1.min(b.1), a.1.max(b.1))
        } else {
            (a.0, a.1.min(b.1), a.1.max(b.1))
        };
        for j in y0..y1 {
            worst = worst.max(map.v_utilization(vx, j));
        }
        let (hy, x0, x1) = if first_horizontal {
            (a.1, a.0.min(b.0), a.0.max(b.0))
        } else {
            (b.1, a.0.min(b.0), a.0.max(b.0))
        };
        for i in x0..x1 {
            worst = worst.max(map.h_utilization(i, hy));
        }
        worst
    };
    let u_a = util_l(map, true);
    let u_b = util_l(map, false);
    let (first_horizontal, worst) = if u_a <= u_b {
        (true, u_a)
    } else {
        (false, u_b)
    };
    if worst < 1.0 || !options.maze_fallback {
        let len = commit_l(map, a, b, first_horizontal);
        return (len, false);
    }
    match maze_route(map, a, b, options.maze_margin) {
        Some(len) => (len, true),
        None => (commit_l(map, a, b, first_horizontal), false),
    }
}

/// Commits an L-shaped route; returns edges used.
fn commit_l(
    map: &mut CongestionMap,
    a: (usize, usize),
    b: (usize, usize),
    first_horizontal: bool,
) -> f64 {
    let (hy, vx) = if first_horizontal {
        (a.1, b.0)
    } else {
        (b.1, a.0)
    };
    let (x0, x1) = (a.0.min(b.0), a.0.max(b.0));
    for i in x0..x1 {
        map.add_h(i, hy, 1.0);
    }
    let (y0, y1) = (a.1.min(b.1), a.1.max(b.1));
    for j in y0..y1 {
        map.add_v(vx, j, 1.0);
    }
    ((x1 - x0) + (y1 - y0)) as f64
}

/// Congestion-aware Dijkstra within the segment bbox plus margin.
/// Returns edges used, or `None` if the search area degenerates.
fn maze_route(
    map: &mut CongestionMap,
    a: (usize, usize),
    b: (usize, usize),
    margin: usize,
) -> Option<f64> {
    let (nx, ny) = (map.nx(), map.ny());
    let x0 = a.0.min(b.0).saturating_sub(margin);
    let y0 = a.1.min(b.1).saturating_sub(margin);
    let x1 = (a.0.max(b.0) + margin).min(nx - 1);
    let y1 = (a.1.max(b.1) + margin).min(ny - 1);
    let w = x1 - x0 + 1;
    let h = y1 - y0 + 1;
    let idx = |i: usize, j: usize| (j - y0) * w + (i - x0);
    let mut dist = vec![f64::INFINITY; w * h];
    let mut prev: Vec<u32> = vec![u32::MAX; w * h];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    let start = idx(a.0, a.1) as u32;
    dist[start as usize] = 0.0;
    heap.push(std::cmp::Reverse((0, start)));
    let cost_of = |util: f64| 1.0 + if util >= 1.0 { 64.0 } else { 8.0 * util * util };
    let target = idx(b.0, b.1) as u32;
    while let Some(std::cmp::Reverse((dkey, u))) = heap.pop() {
        let du = f64::from_bits(dkey);
        if du > dist[u as usize] {
            continue;
        }
        if u == target {
            break;
        }
        let (ui, uj) = (x0 + (u as usize % w), y0 + (u as usize / w));
        let mut push = |map: &CongestionMap, vi: usize, vj: usize, horizontal: bool| {
            let util = if horizontal {
                map.h_utilization(ui.min(vi), uj)
            } else {
                map.v_utilization(ui, uj.min(vj))
            };
            let nd = du + cost_of(util);
            let v = idx(vi, vj) as u32;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                prev[v as usize] = u;
                heap.push(std::cmp::Reverse((nd.to_bits(), v)));
            }
        };
        if ui > x0 {
            push(map, ui - 1, uj, true);
        }
        if ui < x1 {
            push(map, ui + 1, uj, true);
        }
        if uj > y0 {
            push(map, ui, uj - 1, false);
        }
        if uj < y1 {
            push(map, ui, uj + 1, false);
        }
    }
    if !dist[target as usize].is_finite() {
        return None;
    }
    // Walk back, committing demand.
    let mut len = 0.0;
    let mut cur = target;
    while cur != start {
        let p = prev[cur as usize];
        let (ci, cj) = (x0 + (cur as usize % w), y0 + (cur as usize / w));
        let (pi, pj) = (x0 + (p as usize % w), y0 + (p as usize / w));
        if ci != pi {
            map.add_h(ci.min(pi), cj, 1.0);
        } else {
            map.add_v(ci, cj.min(pj), 1.0);
        }
        len += 1.0;
        cur = p;
    }
    Some(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    fn opts() -> RouterOptions {
        RouterOptions {
            gcell_size: 10.0,
            tracks_per_layer: 2,
            layers_per_direction: 1,
            maze_fallback: true,
            maze_margin: 4,
        }
    }

    #[test]
    fn two_pin_net_length_is_manhattan() {
        let nets = vec![vec![(5.0, 5.0), (45.0, 35.0)]];
        let r = route_nets(&nets, region(), &opts()).expect("routable");
        // (0,0) → (4,3): 7 edges × 10 µm.
        assert_eq!(r.wirelength, 70.0);
        assert_eq!(r.mazed_segments, 0);
        assert!((r.hpwl - 70.0).abs() < 1e-9);
        assert!((r.detour_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_pin_net_uses_mst() {
        // Three collinear pins: MST length = span, not star.
        let nets = vec![vec![(5.0, 5.0), (55.0, 5.0), (95.0, 5.0)]];
        let r = route_nets(&nets, region(), &opts()).expect("routable");
        assert_eq!(r.wirelength, 90.0);
    }

    #[test]
    fn congestion_accumulates_and_maze_avoids_hotspots() {
        // Saturate a horizontal corridor, then route one more net across it.
        let mut nets = Vec::new();
        for _ in 0..4 {
            nets.push(vec![(5.0, 55.0), (95.0, 55.0)]);
        }
        let r = route_nets(&nets, region(), &opts()).expect("routable");
        // Capacity 2/edge: 4 straight routes must overflow or detour.
        assert!(
            r.mazed_segments > 0 || r.congestion.overflow_edges() > 0,
            "mazed {} overflow {}",
            r.mazed_segments,
            r.congestion.overflow_edges()
        );
        assert!(r.congestion.max_utilization() > 0.9);
    }

    #[test]
    fn maze_detour_increases_wirelength() {
        let mut nets = Vec::new();
        for _ in 0..8 {
            nets.push(vec![(5.0, 55.0), (95.0, 55.0)]);
        }
        let r = route_nets(&nets, region(), &opts()).expect("routable");
        assert!(r.detour_factor() >= 1.0);
        assert!(r.wirelength >= 8.0 * 90.0);
    }

    #[test]
    fn nan_pin_is_a_typed_error() {
        let nets = vec![vec![(5.0, 5.0), (f64::NAN, 35.0)]];
        let err = route_nets(&nets, region(), &opts()).expect_err("NaN pin must be rejected");
        assert_eq!(err, RouteError::NonFinitePin { net: 0 });
    }

    #[test]
    fn single_pin_nets_are_free() {
        let nets = vec![vec![(5.0, 5.0)]];
        let r = route_nets(&nets, region(), &opts()).expect("routable");
        assert_eq!(r.wirelength, 0.0);
    }

    #[test]
    fn deterministic() {
        let nets = vec![
            vec![(5.0, 5.0), (95.0, 95.0)],
            vec![(15.0, 85.0), (85.0, 15.0)],
            vec![(50.0, 5.0), (50.0, 95.0), (5.0, 50.0)],
        ];
        let a = route_nets(&nets, region(), &opts()).expect("routable");
        let b = route_nets(&nets, region(), &opts()).expect("routable");
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod blockage_tests {
    use super::*;

    #[test]
    fn derated_region_congests_sooner() {
        let region = Rect::new(0.0, 0.0, 100.0, 100.0);
        let opts = RouterOptions {
            gcell_size: 10.0,
            tracks_per_layer: 4,
            layers_per_direction: 1,
            maze_fallback: false,
            maze_margin: 4,
        };
        let nets: Vec<Vec<(f64, f64)>> = (0..3).map(|_| vec![(5.0, 55.0), (95.0, 55.0)]).collect();
        let open = route_nets(&nets, region, &opts).expect("routable");
        let blocked =
            route_nets_with_blockages(&nets, region, &[Rect::new(30.0, 40.0, 40.0, 30.0)], &opts)
                .expect("routable");
        assert!(
            blocked.congestion.max_utilization() > open.congestion.max_utilization(),
            "derated capacity should raise utilization: {} vs {}",
            blocked.congestion.max_utilization(),
            open.congestion.max_utilization()
        );
    }
}

#[cfg(test)]
mod steiner_tests {
    use super::*;

    #[test]
    fn three_pin_steiner_beats_mst_on_an_l() {
        // Pins at the corners of an L: MST length 2·10 gcells; Steiner via
        // the median point also 20 — but for a T shape Steiner wins.
        let region = Rect::new(0.0, 0.0, 200.0, 200.0);
        let opts = RouterOptions {
            gcell_size: 10.0,
            ..Default::default()
        };
        // T shape: pins at (0,10), (20,10), (10,0) in gcells.
        let nets = vec![vec![(5.0, 105.0), (195.0, 105.0), (105.0, 5.0)]];
        let r = route_nets(&nets, region, &opts).expect("routable");
        // Steiner point (10,10): total = 10 + 9 + 10 = 29 edges = 290 µm.
        // An MST would pay 10 + (10+10) = ... ≥ 29; exact check:
        assert_eq!(r.wirelength, 290.0);
    }

    #[test]
    fn three_collinear_pins_unchanged() {
        let region = Rect::new(0.0, 0.0, 200.0, 200.0);
        let opts = RouterOptions {
            gcell_size: 10.0,
            ..Default::default()
        };
        let nets = vec![vec![(5.0, 5.0), (105.0, 5.0), (195.0, 5.0)]];
        let r = route_nets(&nets, region, &opts).expect("routable");
        assert_eq!(r.wirelength, 190.0);
    }
}
