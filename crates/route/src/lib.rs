//! GCell-grid global routing and congestion analysis — the FastRoute
//! stand-in.
//!
//! Nets are decomposed into two-pin segments over a rectilinear minimum
//! spanning tree, then routed on a GCell grid with congestion-aware
//! L-shapes and a maze-routing fallback. The router produces the two
//! quantities the paper's V-P&R cost needs (Eqs. 4–5): routed wirelength
//! and a per-GCell congestion map whose top-X% average is the congestion
//! cost. Post-route STA uses the global detour factor to scale wire
//! parasitics.
//!
//! # Examples
//!
//! ```
//! use cp_netlist::generator::{DesignProfile, GeneratorConfig};
//! use cp_netlist::Floorplan;
//! use cp_place::{GlobalPlacer, PlacementProblem, PlacerOptions};
//! use cp_route::{route_placed_netlist, RouterOptions};
//!
//! let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
//!     .scale(0.01)
//!     .generate();
//! let fp = Floorplan::for_netlist(&netlist, 0.6, 1.0);
//! let problem = PlacementProblem::from_netlist(&netlist, &fp);
//! let placed = GlobalPlacer::new(PlacerOptions::default())
//!     .place(&problem)
//!     .expect("well-formed problem places");
//! let mut all_pos = placed.positions.clone();
//! all_pos.extend_from_slice(&fp.port_positions);
//! let routed = route_placed_netlist(&netlist, &all_pos, &fp, &RouterOptions::default())
//!     .expect("finite positions route");
//! assert!(routed.wirelength > 0.0);
//! assert!(routed.congestion.max_utilization() >= 0.0);
//! ```
//!
//! All routing entry points are fallible: NaN pin coordinates and
//! too-short position arrays surface as [`RouteError`] instead of a panic
//! or a silently garbage route.

pub mod congestion;
pub mod error;
pub mod router;

pub use crate::congestion::CongestionMap;
pub use crate::error::RouteError;
pub use crate::router::{
    route_nets, route_nets_with_blockages, route_placed_netlist, RouterOptions, RoutingResult,
};
