//! The GCell congestion map.

/// Track demand/capacity over a `nx × ny` GCell grid.
///
/// Horizontal edges connect `(i, j)`–`(i+1, j)` (there are `(nx−1)·ny`);
/// vertical edges connect `(i, j)`–`(i, j+1)` (`nx·(ny−1)`).
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    nx: usize,
    ny: usize,
    gcell: f64,
    h_demand: Vec<f64>,
    v_demand: Vec<f64>,
    h_capacity: Vec<f64>,
    v_capacity: Vec<f64>,
}

impl CongestionMap {
    /// An empty map over a `nx × ny` grid with per-edge capacities.
    ///
    /// # Panics
    ///
    /// Panics unless the grid is at least 1×1 and capacities are positive.
    pub fn new(nx: usize, ny: usize, gcell: f64, h_capacity: f64, v_capacity: f64) -> Self {
        assert!(nx >= 1 && ny >= 1, "grid must be at least 1x1");
        assert!(
            h_capacity > 0.0 && v_capacity > 0.0,
            "capacities must be positive"
        );
        Self {
            nx,
            ny,
            gcell,
            h_demand: vec![0.0; (nx.saturating_sub(1)) * ny],
            v_demand: vec![0.0; nx * (ny.saturating_sub(1))],
            h_capacity: vec![h_capacity; (nx.saturating_sub(1)) * ny],
            v_capacity: vec![v_capacity; nx * (ny.saturating_sub(1))],
        }
    }

    /// Scales the capacity of every edge whose GCell index falls inside
    /// `[i0, i1] × [j0, j1]` by `factor` (macro obstructions consume
    /// routing resources on the lower layers).
    pub fn derate(&mut self, i0: usize, j0: usize, i1: usize, j1: usize, factor: f64) {
        for j in j0..=j1.min(self.ny - 1) {
            for i in i0..=i1.min(self.nx.saturating_sub(2)) {
                let idx = self.h_idx(i, j);
                self.h_capacity[idx] = (self.h_capacity[idx] * factor).max(1.0);
            }
        }
        for j in j0..=j1.min(self.ny.saturating_sub(2)) {
            for i in i0..=i1.min(self.nx - 1) {
                let idx = self.v_idx(i, j);
                self.v_capacity[idx] = (self.v_capacity[idx] * factor).max(1.0);
            }
        }
    }

    /// Grid width in GCells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in GCells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// GCell edge length, µm.
    pub fn gcell_size(&self) -> f64 {
        self.gcell
    }

    fn h_idx(&self, i: usize, j: usize) -> usize {
        j * (self.nx - 1) + i
    }

    fn v_idx(&self, i: usize, j: usize) -> usize {
        j * self.nx + i
    }

    /// Adds `amount` tracks of demand on the horizontal edge `(i,j)→(i+1,j)`.
    pub fn add_h(&mut self, i: usize, j: usize, amount: f64) {
        let idx = self.h_idx(i, j);
        self.h_demand[idx] += amount;
    }

    /// Adds `amount` tracks of demand on the vertical edge `(i,j)→(i,j+1)`.
    pub fn add_v(&mut self, i: usize, j: usize, amount: f64) {
        let idx = self.v_idx(i, j);
        self.v_demand[idx] += amount;
    }

    /// Utilization (demand/capacity) of a horizontal edge.
    pub fn h_utilization(&self, i: usize, j: usize) -> f64 {
        let idx = self.h_idx(i, j);
        self.h_demand[idx] / self.h_capacity[idx]
    }

    /// Utilization of a vertical edge.
    pub fn v_utilization(&self, i: usize, j: usize) -> f64 {
        let idx = self.v_idx(i, j);
        self.v_demand[idx] / self.v_capacity[idx]
    }

    /// Per-GCell congestion: the max utilization over the cell's incident
    /// edges (the quantity Eq. 5 averages).
    pub fn gcell_congestion(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.nx * self.ny];
        for j in 0..self.ny {
            for i in 0..self.nx {
                let mut c = 0.0f64;
                if i > 0 {
                    c = c.max(self.h_utilization(i - 1, j));
                }
                if i + 1 < self.nx {
                    c = c.max(self.h_utilization(i, j));
                }
                if j > 0 {
                    c = c.max(self.v_utilization(i, j - 1));
                }
                if j + 1 < self.ny {
                    c = c.max(self.v_utilization(i, j));
                }
                out[j * self.nx + i] = c;
            }
        }
        out
    }

    /// Eq. 5 of the paper: the average congestion over the top `x_percent`
    /// most congested GCells (default 10 in the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < x_percent <= 100`.
    pub fn top_percent_average(&self, x_percent: f64) -> f64 {
        assert!(
            x_percent > 0.0 && x_percent <= 100.0,
            "percentage out of (0, 100]"
        );
        let mut c = self.gcell_congestion();
        c.sort_by(|a, b| b.total_cmp(a));
        let take = ((c.len() as f64 * x_percent / 100.0).ceil() as usize).max(1);
        c.truncate(take);
        c.iter().sum::<f64>() / take as f64
    }

    /// Maximum edge utilization anywhere.
    pub fn max_utilization(&self) -> f64 {
        let h = self
            .h_demand
            .iter()
            .zip(&self.h_capacity)
            .map(|(d, c)| d / c)
            .fold(0.0f64, f64::max);
        let v = self
            .v_demand
            .iter()
            .zip(&self.v_capacity)
            .map(|(d, c)| d / c)
            .fold(0.0f64, f64::max);
        h.max(v)
    }

    /// Number of edges with utilization above 1.
    pub fn overflow_edges(&self) -> usize {
        self.h_demand
            .iter()
            .zip(&self.h_capacity)
            .filter(|&(&d, &c)| d > c)
            .count()
            + self
                .v_demand
                .iter()
                .zip(&self.v_capacity)
                .filter(|&(&d, &c)| d > c)
                .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_and_utilization() {
        let mut m = CongestionMap::new(3, 2, 5.0, 10.0, 20.0);
        m.add_h(0, 0, 5.0);
        m.add_v(1, 0, 10.0);
        assert_eq!(m.h_utilization(0, 0), 0.5);
        assert_eq!(m.v_utilization(1, 0), 0.5);
        assert_eq!(m.h_utilization(1, 0), 0.0);
        assert_eq!(m.max_utilization(), 0.5);
        assert_eq!(m.overflow_edges(), 0);
        m.add_h(0, 0, 6.0);
        assert_eq!(m.overflow_edges(), 1);
    }

    #[test]
    fn gcell_congestion_takes_incident_max() {
        let mut m = CongestionMap::new(2, 1, 5.0, 10.0, 10.0);
        m.add_h(0, 0, 8.0);
        let c = m.gcell_congestion();
        assert_eq!(c, vec![0.8, 0.8]);
    }

    #[test]
    fn top_percent_average_matches_eq5() {
        let mut m = CongestionMap::new(10, 10, 5.0, 10.0, 10.0);
        // One very hot edge.
        m.add_h(4, 4, 20.0);
        let top1 = m.top_percent_average(1.0); // 1 cell
        let top100 = m.top_percent_average(100.0);
        assert!(top1 >= 2.0 - 1e-9);
        assert!(top100 < top1);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn bad_percentage_panics() {
        CongestionMap::new(2, 2, 5.0, 1.0, 1.0).top_percent_average(0.0);
    }
}
