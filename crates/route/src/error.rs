//! Typed errors for the routing crate.

/// An error raised while preparing or running global routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A net carries a pin with a NaN or infinite coordinate.
    NonFinitePin {
        /// Index of the offending net in the routing input.
        net: usize,
    },
    /// The position array is shorter than the netlist's vertex count, so
    /// some pin has no coordinate.
    PositionCountMismatch {
        /// Vertices the netlist requires (cells + ports).
        expected: usize,
        /// Positions supplied.
        got: usize,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFinitePin { net } => {
                write!(f, "net {net} has a non-finite pin coordinate")
            }
            Self::PositionCountMismatch { expected, got } => write!(
                f,
                "position array too short: {got} positions for {expected} vertices"
            ),
        }
    }
}

impl std::error::Error for RouteError {}
