//! Structured QoR snapshot gauges.
//!
//! Each flow stage boundary records the quality numbers the paper's
//! tables care about (per-stage HPWL, routing overflow/congestion,
//! WNS/TNS, power, cluster count, shaping-effort counters) into the
//! cp-trace metric registry as `qor.*` gauges, plus `mem.*` heap gauges
//! when the `alloc-telemetry` feature is enabled. `tracetool gate` then
//! extracts every `qor.`-prefixed gauge from a run's `TraceReport` and
//! compares it against `baselines/QOR_baseline.json`.
//!
//! All recording is a no-op below [`cp_trace::Level::Full`]; values that
//! cost something to compute (re-running [`raw_hpwl`] on an intermediate
//! placement) are additionally guarded on [`cp_trace::telemetry_enabled`]
//! so the spans-only overhead contract of PR 4 is untouched.

use crate::flow::{PpaReport, ShapingStats};
use cp_place::hpwl::raw_hpwl;
use cp_place::PlacementProblem;

/// Prefix that marks a gauge as gate-relevant.
pub const PREFIX: &str = "qor.";

/// Clusters formed by the clustering stage.
pub const CLUSTER_COUNT: &str = "qor.cluster.count";
/// HPWL of the placed cluster-level netlist (clustered flow only).
pub const CLUSTER_PLACEMENT_HPWL: &str = "qor.cluster_placement.hpwl";
/// HPWL right after global placement, before legalization.
pub const FLAT_PLACEMENT_HPWL: &str = "qor.flat_placement.hpwl";
/// Final legalized+refined HPWL (the `FlowReport::hpwl` headline).
pub const LEGALIZED_HPWL: &str = "qor.legalized.hpwl";
/// Routed wirelength incl. the clock tree, µm.
pub const ROUTE_RWL: &str = "qor.route.rwl";
/// Peak GCell-edge utilization from global routing.
pub const ROUTE_MAX_UTILIZATION: &str = "qor.route.max_utilization";
/// GCell edges whose demand exceeds capacity.
pub const ROUTE_OVERFLOW_EDGES: &str = "qor.route.overflow_edges";
/// Worst negative slack, ps.
pub const TIMING_WNS: &str = "qor.timing.wns";
/// Total negative slack, ps.
pub const TIMING_TNS: &str = "qor.timing.tns";
/// Worst hold slack, ps.
pub const TIMING_HOLD_WNS: &str = "qor.timing.hold_wns";
/// Total power, W.
pub const POWER_TOTAL: &str = "qor.power.total";
/// Clock skew from CTS, ps.
pub const CTS_SKEW: &str = "qor.cts.skew";
/// Clusters that went through shape selection.
pub const SHAPING_CLUSTERS: &str = "qor.shaping.clusters_shaped";
/// Exact V-P&R evaluations the shape mode ran.
pub const SHAPING_EXACT_EVALS: &str = "qor.shaping.exact_evals";
/// Candidates pruned before exact evaluation.
pub const SHAPING_EXACT_AVOIDED: &str = "qor.shaping.exact_evals_avoided";

/// Live heap bytes at the last [`record_heap`] call.
pub const MEM_HEAP_CURRENT: &str = "mem.heap.current_bytes";
/// Peak live heap bytes since process start.
pub const MEM_HEAP_PEAK: &str = "mem.heap.peak_bytes";
/// Total allocations since process start.
pub const MEM_ALLOC_COUNT: &str = "mem.alloc.count";

/// Records the HPWL of an intermediate placement under `gauge`. The
/// [`raw_hpwl`] pass costs a full net sweep, so it only runs when
/// telemetry is on.
pub(crate) fn record_placement_hpwl(
    gauge: &'static str,
    problem: &PlacementProblem,
    positions: &[(f64, f64)],
) {
    if cp_trace::telemetry_enabled() {
        cp_trace::gauge_set(gauge, raw_hpwl(problem, positions));
    }
}

/// Records the clustering/shaping snapshot at the end of the shaping
/// stage.
pub(crate) fn record_shaping(cluster_count: usize, shaping: &ShapingStats) {
    cp_trace::gauge_set(CLUSTER_COUNT, cluster_count as f64);
    cp_trace::gauge_set(SHAPING_CLUSTERS, shaping.clusters_shaped as f64);
    cp_trace::gauge_set(SHAPING_EXACT_EVALS, shaping.exact_evals as f64);
    cp_trace::gauge_set(SHAPING_EXACT_AVOIDED, shaping.exact_evals_avoided as f64);
}

/// Records the post-route PPA snapshot (Algorithm 1, lines 27-30).
pub(crate) fn record_ppa(ppa: &PpaReport) {
    cp_trace::gauge_set(ROUTE_RWL, ppa.rwl);
    cp_trace::gauge_set(TIMING_WNS, ppa.wns);
    cp_trace::gauge_set(TIMING_TNS, ppa.tns);
    cp_trace::gauge_set(TIMING_HOLD_WNS, ppa.hold_wns);
    cp_trace::gauge_set(POWER_TOTAL, ppa.power);
    cp_trace::gauge_set(CTS_SKEW, ppa.skew);
}

/// Publishes the counting allocator's heap statistics as `mem.*` gauges.
/// Compiles to nothing without the `alloc-telemetry` feature, so the
/// stage-boundary call sites stay unconditional.
#[cfg(feature = "alloc-telemetry")]
pub fn record_heap() {
    let stats = crate::alloc::heap_stats();
    cp_trace::gauge_set(MEM_HEAP_CURRENT, stats.current_bytes as f64);
    cp_trace::gauge_set(MEM_HEAP_PEAK, stats.peak_bytes as f64);
    cp_trace::gauge_set(MEM_ALLOC_COUNT, stats.alloc_count as f64);
}

/// Publishes the counting allocator's heap statistics as `mem.*` gauges.
/// Compiles to nothing without the `alloc-telemetry` feature, so the
/// stage-boundary call sites stay unconditional.
#[cfg(not(feature = "alloc-telemetry"))]
pub fn record_heap() {}
