//! PPA-aware clustering, ML-accelerated virtualized P&R and the
//! clustered-placement flow — the paper's primary contribution.
//!
//! The crate mirrors the paper's structure:
//!
//! - [`cluster::dendrogram`] — hierarchy-based clustering (Algorithm 2),
//!   selecting the dendrogram level that minimizes the weighted-average
//!   Rent exponent (Eq. 1, [`cluster::rent`]).
//! - [`cluster::costs`] — timing cost `t_e` from the top-|P| critical
//!   paths and switching cost `s_e` (Eq. 2), combined in the heavy-edge
//!   rating (Eq. 3).
//! - [`cluster::fc`] — enhanced multilevel First-Choice coarsening with
//!   hierarchy grouping constraints.
//! - [`vpr`] — the virtualized P&R framework: induce each cluster's
//!   sub-netlist, sweep the 20 (aspect ratio, utilization) candidates
//!   through place + global route, and score `Cost_HPWL + δ·Cost_Congestion`
//!   (Eqs. 4–5); [`vpr::ml`] replaces the 20 P&R runs with a GNN that
//!   predicts Total Cost from 35 node features.
//! - [`flow`] — Algorithm 1 end to end: PPA-aware clustering →
//!   ML-accelerated V-P&R → seeded placement (OpenROAD-like or
//!   Innovus-like) → CTS, routing and post-route PPA.
//! - [`baselines`] — blob placement [9] (Louvain), Leiden and plain
//!   multilevel-FC flows for the paper's comparisons.
//!
//! Every public entry point is fallible: degenerate inputs surface as a
//! typed [`FlowError`] instead of a panic deep inside a stage, and
//! recoveries the flow performed on its own (divergence reverts, V-P&R
//! shape fallbacks, dropped region constraints) are reported on
//! [`FlowReport::diagnostics`](crate::flow::FlowReport::diagnostics).
//!
//! # Examples
//!
//! ```
//! use cp_core::flow::{run_default_flow, run_flow, FlowOptions, Tool};
//! use cp_netlist::generator::{DesignProfile, GeneratorConfig};
//!
//! let (netlist, constraints) = GeneratorConfig::from_profile(DesignProfile::Aes)
//!     .scale(0.005)
//!     .generate_with_constraints();
//! let default =
//!     run_default_flow(&netlist, &constraints, &FlowOptions::fast()).expect("flow runs");
//! let ours = run_flow(&netlist, &constraints, &FlowOptions::fast().tool(Tool::OpenRoadLike))
//!     .expect("flow runs");
//! assert!(ours.hpwl > 0.0 && default.hpwl > 0.0);
//! assert!(ours.diagnostics.is_clean());
//! ```

#[cfg(feature = "alloc-telemetry")]
pub mod alloc;
pub mod baselines;
pub mod checkpoint;
pub mod cluster;
pub mod error;
pub mod flow;
pub mod qor;
pub mod stages;
pub mod vpr;

pub use crate::checkpoint::Checkpoint;
pub use crate::cluster::{ClusteringOptions, ClusteringResult};
pub use crate::error::{FlowDiagnostics, FlowError, InterruptedFlow, RecoveryEvent};
pub use crate::flow::{
    run_default_flow, run_flow, run_flow_resilient, FlowOptions, FlowReport, PpaReport,
    ResilienceOptions, Tool,
};
pub use cp_resilience::{Interrupt, InterruptKind, RunControl};
