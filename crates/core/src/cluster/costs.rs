//! PPA cost terms on hyperedges: timing cost `t_e`, switching cost `s_e`
//! (Eq. 2) and the heavy-edge rating (Eq. 3).

use cp_netlist::netlist::Netlist;
use cp_timing::activity::ActivityReport;
use cp_timing::sta::TimingPath;

/// Per-hyperedge PPA cost annotation (indexed like the hypergraph edges).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeCosts {
    /// Connectivity weight `w_e` (net weight).
    pub weight: Vec<f64>,
    /// Timing criticality `t_e`, normalized to `[0, 1]`.
    pub timing: Vec<f64>,
    /// Switching cost `s_e` (Eq. 2), `≥ 1`.
    pub switching: Vec<f64>,
}

impl EdgeCosts {
    /// Uniform costs (used by the plain-FC baseline).
    pub fn uniform(edge_count: usize) -> Self {
        Self {
            weight: vec![1.0; edge_count],
            timing: vec![0.0; edge_count],
            switching: vec![1.0; edge_count],
        }
    }

    /// Combined edge attraction `α·w_e + β·t_e + γ·s_e` (the numerator of
    /// Eq. 3).
    pub fn combined(&self, e: usize, alpha: f64, beta: f64, gamma: f64) -> f64 {
        alpha * self.weight[e] + beta * self.timing[e] + gamma * self.switching[e]
    }
}

/// Path criticality `t_p = max(0, 1 − slack/TCP)²` (after [5]): 1 at zero
/// slack, larger for violating paths, decaying for comfortable ones.
pub fn path_cost(slack: f64, clock_period: f64) -> f64 {
    let x = (1.0 - slack / clock_period).max(0.0);
    x * x
}

/// Builds the PPA edge costs for a netlist's hypergraph view.
///
/// - `t_e`: sum of `t_p` over the extracted critical paths running through
///   the net, max-normalized to `[0, 1]`;
/// - `s_e`: Eq. 2, `(1 + θ_e / Σθ)^μ` with `θ_e` the net's switching
///   activity;
/// - `w_e`: 1 for every hyperedge (reweighted later by the flow).
///
/// `net_to_edge` maps net ids to hyperedge ids
/// (from [`Netlist::to_hypergraph_with_map`]).
pub fn build_edge_costs(
    _netlist: &Netlist,
    net_to_edge: &[Option<u32>],
    edge_count: usize,
    paths: &[TimingPath],
    clock_period: f64,
    activity: &ActivityReport,
    mu: f64,
) -> EdgeCosts {
    let mut timing = vec![0.0f64; edge_count];
    for p in paths {
        let tp = path_cost(p.slack, clock_period);
        for &net in &p.nets {
            if let Some(e) = net_to_edge[net.index()] {
                timing[e as usize] += tp;
            }
        }
    }
    let max_t = timing.iter().copied().fold(0.0f64, f64::max);
    if max_t > 0.0 {
        for t in &mut timing {
            *t /= max_t;
        }
    }
    // Switching: θ per edge from the net activity.
    let mut theta = vec![0.0f64; edge_count];
    for (nid, e) in net_to_edge.iter().enumerate() {
        if let Some(e) = e {
            theta[*e as usize] = activity.density[nid];
        }
    }
    let total_theta: f64 = theta.iter().sum::<f64>().max(1e-12);
    let switching: Vec<f64> = theta
        .iter()
        .map(|&t| (1.0 + t / total_theta).powf(mu))
        .collect();
    EdgeCosts {
        weight: vec![1.0; edge_count],
        timing,
        switching,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_timing::activity::propagate_activity;
    use cp_timing::sta::Sta;
    use cp_timing::wire::WireModel;

    #[test]
    fn path_cost_shape() {
        let t = 1000.0;
        assert_eq!(path_cost(t, t), 0.0); // a full period of slack
        assert_eq!(path_cost(0.0, t), 1.0);
        assert!(path_cost(-500.0, t) > 1.0);
        assert!(path_cost(-500.0, t) > path_cost(-100.0, t));
    }

    #[test]
    fn costs_on_a_real_design() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(1)
            .generate_with_constraints();
        let (hg, map) = n.to_hypergraph_with_map();
        let sta = Sta::new(&n, &c).expect("acyclic netlist");
        let report = sta.run(&WireModel::Estimate);
        let paths = sta.extract_paths(&report, 500);
        let act = propagate_activity(&n, &c);
        let costs = build_edge_costs(&n, &map, hg.edge_count(), &paths, c.clock_period, &act, 2.0);
        assert_eq!(costs.timing.len(), hg.edge_count());
        // Normalization holds.
        assert!(costs.timing.iter().all(|&t| (0.0..=1.0).contains(&t)));
        assert!(
            costs.timing.iter().any(|&t| t > 0.0),
            "some nets are critical"
        );
        // Eq. 2 lower bound.
        assert!(costs.switching.iter().all(|&s| s >= 1.0));
        assert!(costs.switching.iter().any(|&s| s > 1.0));
    }

    #[test]
    fn combined_mixes_terms() {
        let costs = EdgeCosts {
            weight: vec![2.0],
            timing: vec![0.5],
            switching: vec![1.5],
        };
        let c = costs.combined(0, 1.0, 2.0, 3.0);
        assert!((c - (2.0 + 1.0 + 4.5)).abs() < 1e-12);
    }

    #[test]
    fn mu_sharpens_switching() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(2)
            .generate_with_constraints();
        let (hg, map) = n.to_hypergraph_with_map();
        let act = propagate_activity(&n, &c);
        let flat = build_edge_costs(&n, &map, hg.edge_count(), &[], c.clock_period, &act, 1.0);
        let sharp = build_edge_costs(&n, &map, hg.edge_count(), &[], c.clock_period, &act, 4.0);
        let spread = |v: &[f64]| {
            v.iter().copied().fold(f64::MIN, f64::max) - v.iter().copied().fold(f64::MAX, f64::min)
        };
        assert!(spread(&sharp.switching) > spread(&flat.switching));
    }
}
