//! The weighted-average Rent exponent criterion (Eq. 1 of the paper).
//!
//! For a cluster `c`: `R_c = ln(E(c) / (Int(c) + Ext(c))) / ln(|c|) + 1`,
//! where `E(c)` counts external hyperedges, `Ext(c)` pins of `c` on
//! external hyperedges and `Int(c)` pins on internal hyperedges. Lower is
//! better. The clustering score is the cluster-size-weighted average.

use cp_graph::Hypergraph;

/// Per-cluster Rent statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RentStats {
    /// External hyperedges `E(c)`.
    pub external_edges: usize,
    /// Pins on external hyperedges `Ext(c)`.
    pub external_pins: usize,
    /// Pins on internal hyperedges `Int(c)`.
    pub internal_pins: usize,
    /// Cluster size `|c|`.
    pub size: usize,
    /// The Rent exponent `R_c`.
    pub exponent: f64,
}

/// Computes per-cluster Rent statistics for an assignment over the first
/// `labels.len()` vertices of `hg` (trailing vertices — fixed terminals —
/// count as "outside every cluster").
///
/// Degenerate clusters (size ≤ 1, or no pins) get the neutral exponent 1;
/// fully internal clusters (no external edges) are scored with a floor of
/// half an edge so the logarithm stays finite.
///
/// # Panics
///
/// Panics if `labels.len() > hg.vertex_count()`.
pub fn rent_stats(hg: &Hypergraph, labels: &[u32], cluster_count: usize) -> Vec<RentStats> {
    assert!(
        labels.len() <= hg.vertex_count(),
        "labels exceed vertex count"
    );
    let label_of = |v: u32| -> Option<u32> { labels.get(v as usize).copied() };
    let mut size = vec![0usize; cluster_count];
    for &l in labels {
        size[l as usize] += 1;
    }
    let mut ext_edges = vec![0usize; cluster_count];
    let mut ext_pins = vec![0usize; cluster_count];
    let mut int_pins = vec![0usize; cluster_count];
    let mut touched: Vec<(u32, u32)> = Vec::new(); // (cluster, pins in edge)
    for e in 0..hg.edge_count() as u32 {
        let verts = hg.edge(e);
        touched.clear();
        let mut outside = false;
        for &v in verts {
            match label_of(v) {
                Some(c) => match touched.iter_mut().find(|(tc, _)| *tc == c) {
                    Some((_, k)) => *k += 1,
                    None => touched.push((c, 1)),
                },
                None => outside = true,
            }
        }
        let external_for_all = outside || touched.len() > 1;
        for &(c, k) in &touched {
            if external_for_all {
                ext_edges[c as usize] += 1;
                ext_pins[c as usize] += k as usize;
            } else {
                int_pins[c as usize] += k as usize;
            }
        }
    }
    (0..cluster_count)
        .map(|c| {
            let total_pins = ext_pins[c] + int_pins[c];
            let exponent = if size[c] <= 1 || total_pins == 0 {
                1.0
            } else {
                let e = if ext_edges[c] == 0 {
                    0.5
                } else {
                    ext_edges[c] as f64
                };
                (e / total_pins as f64).ln() / (size[c] as f64).ln() + 1.0
            };
            RentStats {
                external_edges: ext_edges[c],
                external_pins: ext_pins[c],
                internal_pins: int_pins[c],
                size: size[c],
                exponent,
            }
        })
        .collect()
}

/// The weighted average `R_avg = Σ R_c · |c| / |V|` (Eq. 1).
pub fn weighted_average_rent(hg: &Hypergraph, labels: &[u32], cluster_count: usize) -> f64 {
    if labels.is_empty() {
        return 1.0;
    }
    let stats = rent_stats(hg, labels, cluster_count);
    let total: usize = stats.iter().map(|s| s.size).sum();
    stats
        .iter()
        .map(|s| s.exponent * s.size as f64)
        .sum::<f64>()
        / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense 4-cliques joined by one edge (as hyperedges of size 2).
    fn two_blocks() -> Hypergraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((vec![base + i, base + j], 1.0));
                }
            }
        }
        edges.push((vec![3, 4], 1.0));
        Hypergraph::new(8, edges)
    }

    #[test]
    fn good_clustering_scores_lower() {
        let hg = two_blocks();
        let good = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let bad = vec![0, 1, 0, 1, 0, 1, 0, 1]; // interleaved
        let r_good = weighted_average_rent(&hg, &good, 2);
        let r_bad = weighted_average_rent(&hg, &bad, 2);
        assert!(r_good < r_bad, "good {r_good} should beat bad {r_bad}");
    }

    #[test]
    fn stats_are_consistent() {
        let hg = two_blocks();
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let stats = rent_stats(&hg, &labels, 2);
        // Each block: 6 internal edges (12 internal pins), 1 external edge
        // with 1 pin inside.
        for s in &stats {
            assert_eq!(s.size, 4);
            assert_eq!(s.external_edges, 1);
            assert_eq!(s.external_pins, 1);
            assert_eq!(s.internal_pins, 12);
        }
    }

    #[test]
    fn fixed_terminals_count_as_outside() {
        // Vertex 2 is beyond the labels (a port): edge {0, 2} is external.
        let hg = Hypergraph::new(3, vec![(vec![0, 1], 1.0), (vec![0, 2], 1.0)]);
        let labels = vec![0, 0];
        let s = rent_stats(&hg, &labels, 1);
        assert_eq!(s[0].external_edges, 1);
        assert_eq!(s[0].internal_pins, 2);
        assert_eq!(s[0].external_pins, 1);
    }

    #[test]
    fn singletons_are_neutral() {
        let hg = Hypergraph::new(2, vec![(vec![0, 1], 1.0)]);
        let labels = vec![0, 1];
        let stats = rent_stats(&hg, &labels, 2);
        assert!(stats.iter().all(|s| s.exponent == 1.0));
    }

    #[test]
    fn empty_labels_score_one() {
        let hg = Hypergraph::new(0, vec![]);
        assert_eq!(weighted_average_rent(&hg, &[], 0), 1.0);
    }
}
