//! Clustering quality metrics.
//!
//! The paper's Section 2 argues that classic criteria — cutsize and
//! modularity — correlate poorly with PPA. This module computes those
//! classic criteria (plus balance and the Rent score) so the claim can be
//! examined directly: Table 5's PPA winner is not the cutsize/modularity
//! winner.

use crate::cluster::rent::weighted_average_rent;
use cp_graph::community::modularity;
use cp_graph::Hypergraph;

/// Classic quality metrics of a cluster assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringQuality {
    /// Number of clusters.
    pub cluster_count: usize,
    /// Hyperedges spanning more than one cluster (or touching a terminal).
    pub cutsize: usize,
    /// Sum over cut hyperedges of `(spanned clusters − 1)` (the K-1 metric).
    pub k_minus_one: usize,
    /// Newman modularity on the bounded clique expansion.
    pub modularity: f64,
    /// Largest cluster size over average cluster size.
    pub balance: f64,
    /// The paper's weighted-average Rent exponent (Eq. 1).
    pub rent: f64,
}

/// Computes quality metrics for an assignment over the first
/// `labels.len()` vertices of `hg` (trailing vertices are terminals).
///
/// # Panics
///
/// Panics if `labels` is empty.
pub fn clustering_quality(hg: &Hypergraph, labels: &[u32]) -> ClusteringQuality {
    assert!(!labels.is_empty(), "empty assignment");
    let cluster_count = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut cutsize = 0usize;
    let mut k_minus_one = 0usize;
    let mut spanned: Vec<u32> = Vec::new();
    for e in 0..hg.edge_count() as u32 {
        let verts = hg.edge(e);
        spanned.clear();
        let mut touches_terminal = false;
        for &v in verts {
            match labels.get(v as usize) {
                Some(&c) => spanned.push(c),
                None => touches_terminal = true,
            }
        }
        spanned.sort_unstable();
        spanned.dedup();
        if spanned.len() > 1 || (touches_terminal && !spanned.is_empty()) {
            cutsize += 1;
            k_minus_one += spanned.len().saturating_sub(1).max(1);
        }
    }
    // Modularity over the clique expansion restricted to clustered cells.
    let keep: Vec<u32> = (0..labels.len() as u32).collect();
    let (cells_only, _) = hg.induce(&keep, 2);
    let g = cells_only.bounded_clique_expansion(16);
    let q = modularity(&g, labels);
    let mut sizes = vec![0usize; cluster_count];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    let max = sizes.iter().copied().max().unwrap_or(0) as f64;
    let avg = labels.len() as f64 / cluster_count as f64;
    ClusteringQuality {
        cluster_count,
        cutsize,
        k_minus_one,
        modularity: q,
        balance: max / avg.max(1e-12),
        rent: weighted_average_rent(hg, labels, cluster_count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blocks() -> Hypergraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((vec![base + i, base + j], 1.0));
                }
            }
        }
        edges.push((vec![3, 4], 1.0));
        Hypergraph::new(8, edges)
    }

    #[test]
    fn ideal_split_metrics() {
        let hg = two_blocks();
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let q = clustering_quality(&hg, &labels);
        assert_eq!(q.cluster_count, 2);
        assert_eq!(q.cutsize, 1); // only the bridge
        assert_eq!(q.k_minus_one, 1);
        assert!(q.modularity > 0.3);
        assert!((q.balance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interleaved_split_is_worse_everywhere() {
        let hg = two_blocks();
        let good = clustering_quality(&hg, &[0, 0, 0, 0, 1, 1, 1, 1]);
        let bad = clustering_quality(&hg, &[0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(bad.cutsize > good.cutsize);
        assert!(bad.modularity < good.modularity);
        assert!(bad.rent > good.rent);
    }

    #[test]
    fn terminal_edges_count_as_cut() {
        // Vertex 2 is a terminal (not in labels).
        let hg = Hypergraph::new(3, vec![(vec![0, 1], 1.0), (vec![1, 2], 1.0)]);
        let q = clustering_quality(&hg, &[0, 0]);
        assert_eq!(q.cutsize, 1);
    }

    #[test]
    fn imbalance_is_reported() {
        let hg = Hypergraph::new(4, vec![(vec![0, 1], 1.0)]);
        let q = clustering_quality(&hg, &[0, 0, 0, 1]);
        // Sizes 3 and 1, average 2 ⇒ balance 1.5.
        assert!((q.balance - 1.5).abs() < 1e-12);
    }
}
