//! Enhanced multilevel First-Choice coarsening.
//!
//! The open-source FC coarsening of TritonPart [29], extended per the
//! paper: hierarchy-based grouping constraints seed the initial clusters,
//! and the heavy-edge rating (Eq. 3) folds in the timing cost `t_e` and
//! switching cost `s_e`:
//!
//! `r(u, v) = Σ_{e ∈ I(u) ∩ I(v)} (α·w_e + β·t_e + γ·s_e) / (|e| − 1)`.
//!
//! Singleton clusters are deliberately left unmerged (paper footnote 2).

use crate::cluster::costs::EdgeCosts;
use cp_graph::Hypergraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Nets larger than this are ignored by the rating (standard FC practice;
/// giant nets carry no locality signal).
const MAX_RATED_EDGE: usize = 64;

/// Coarsening options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcOptions {
    /// Connectivity scale α (Eq. 3).
    pub alpha: f64,
    /// Timing scale β.
    pub beta: f64,
    /// Switching scale γ.
    pub gamma: f64,
    /// Stop once the cluster count reaches this.
    pub target_clusters: usize,
    /// Hard cap on cells per cluster.
    pub max_cluster_size: usize,
    /// Visit-order seed.
    pub seed: u64,
    /// Maximum coarsening passes.
    pub max_passes: usize,
}

impl Default for FcOptions {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            target_clusters: 64,
            max_cluster_size: usize::MAX,
            seed: 11,
            max_passes: 24,
        }
    }
}

/// Runs enhanced multilevel FC on the first `n_cells` vertices of `hg`
/// (trailing vertices are fixed terminals and never cluster).
///
/// `groups`, when given, are the hierarchy grouping constraints: initial
/// clusters are the groups (split if they exceed the size cap) instead of
/// singletons.
///
/// Returns a dense cluster assignment per cell.
///
/// # Panics
///
/// Panics if `groups` is given with the wrong length.
pub fn multilevel_fc(
    hg: &Hypergraph,
    n_cells: usize,
    costs: &EdgeCosts,
    groups: Option<&[u32]>,
    opts: &FcOptions,
) -> Vec<u32> {
    let mut assignment: Vec<u32> = match groups {
        Some(g) => {
            assert_eq!(g.len(), n_cells, "one group per cell");
            split_oversized(g, opts.max_cluster_size)
        }
        None => (0..n_cells as u32).collect(),
    };
    let mut count = cp_graph::community::compact_labels(&mut assignment);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    for _ in 0..opts.max_passes {
        if count <= opts.target_clusters {
            break;
        }
        let merges = fc_pass(hg, n_cells, costs, &mut assignment, count, opts, &mut rng);
        let new_count = cp_graph::community::compact_labels(&mut assignment);
        if merges == 0 || new_count == count {
            break;
        }
        count = new_count;
    }
    assignment
}

/// Splits any group above `cap` into chunks (by member order).
fn split_oversized(groups: &[u32], cap: usize) -> Vec<u32> {
    if cap == usize::MAX {
        return groups.to_vec();
    }
    let k = groups.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut seen = vec![0usize; k];
    let mut next = k as u32;
    let mut sub = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(groups.len());
    for &g in groups {
        let i = seen[g as usize];
        seen[g as usize] += 1;
        let chunk = i / cap;
        if chunk == 0 {
            out.push(g);
        } else {
            let id = *sub.entry((g, chunk)).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            });
            out.push(id);
        }
    }
    out
}

/// One FC pass: greedy best-neighbor merging, limited by the size cap and
/// the remaining budget down to `target_clusters`. Returns merges done.
#[allow(clippy::too_many_arguments)]
fn fc_pass(
    hg: &Hypergraph,
    n_cells: usize,
    costs: &EdgeCosts,
    assignment: &mut [u32],
    count: usize,
    opts: &FcOptions,
    rng: &mut StdRng,
) -> usize {
    // Union-find over cluster ids for chained merges within the pass.
    let mut parent: Vec<u32> = (0..count as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut size = vec![0usize; count];
    for &a in assignment.iter() {
        size[a as usize] += 1;
    }
    // Pairwise ratings from the hyperedges (cluster-level projection).
    let mut pair_score: std::collections::HashMap<(u32, u32), f64> =
        std::collections::HashMap::new();
    let mut members: Vec<u32> = Vec::new();
    for e in 0..hg.edge_count() as u32 {
        let verts = hg.edge(e);
        if verts.len() < 2 || verts.len() > MAX_RATED_EDGE {
            continue;
        }
        members.clear();
        for &v in verts {
            if (v as usize) < n_cells {
                members.push(assignment[v as usize]);
            }
        }
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 {
            continue;
        }
        let score = costs.combined(e as usize, opts.alpha, opts.beta, opts.gamma)
            / (verts.len() as f64 - 1.0);
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                *pair_score.entry((members[i], members[j])).or_insert(0.0) += score;
            }
        }
    }
    // Neighbor lists.
    let mut neighbors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); count];
    for (&(a, b), &s) in &pair_score {
        neighbors[a as usize].push((b, s));
        neighbors[b as usize].push((a, s));
    }
    // FC visit: highest best-neighbor rating first so a budget-limited pass
    // (remaining close to target) spends its merges on the most critical
    // pairs; the shuffle randomizes only ties, which keeps uniform regions
    // seed-dependent without letting the seed pick over a critical edge.
    let mut order: Vec<u32> = (0..count as u32).collect();
    order.shuffle(rng);
    let best_rating: Vec<f64> = neighbors
        .iter()
        .map(|ns| ns.iter().map(|&(_, s)| s).fold(0.0, f64::max))
        .collect();
    order.sort_by(|&a, &b| best_rating[b as usize].total_cmp(&best_rating[a as usize]));
    let mut merges = 0usize;
    let mut remaining = count;
    for &u in &order {
        if remaining <= opts.target_clusters {
            break;
        }
        let ru = find(&mut parent, u);
        if ru != u {
            continue; // already absorbed this pass
        }
        // Deterministic best neighbor: highest rating, ties by id.
        let mut best: Option<(f64, u32)> = None;
        for &(v, s) in &neighbors[u as usize] {
            let rv = find(&mut parent, v);
            if rv == ru {
                continue;
            }
            if size[ru as usize] + size[rv as usize] > opts.max_cluster_size {
                continue;
            }
            match best {
                Some((bs, bv)) if s < bs || (s == bs && rv >= bv) => {}
                _ => best = Some((s, rv)),
            }
        }
        if let Some((_, rv)) = best {
            parent[ru as usize] = rv;
            size[rv as usize] += size[ru as usize];
            merges += 1;
            remaining -= 1;
        }
    }
    for a in assignment.iter_mut() {
        *a = find(&mut parent, *a);
    }
    merges
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a weak bridge.
    fn blocks() -> (Hypergraph, EdgeCosts) {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((vec![base + i, base + j], 1.0));
                }
            }
        }
        edges.push((vec![3, 4], 1.0));
        let hg = Hypergraph::new(8, edges);
        let costs = EdgeCosts::uniform(hg.edge_count());
        (hg, costs)
    }

    #[test]
    fn coarsens_to_target() {
        let (hg, costs) = blocks();
        let a = multilevel_fc(
            &hg,
            8,
            &costs,
            None,
            &FcOptions {
                target_clusters: 2,
                ..Default::default()
            },
        );
        let k = a.iter().copied().max().unwrap() + 1;
        assert_eq!(k, 2);
        // The blocks should not be interleaved.
        assert_eq!(a[0], a[1]);
        assert_eq!(a[4], a[5]);
    }

    #[test]
    fn size_cap_is_respected() {
        let (hg, costs) = blocks();
        let a = multilevel_fc(
            &hg,
            8,
            &costs,
            None,
            &FcOptions {
                target_clusters: 1,
                max_cluster_size: 4,
                ..Default::default()
            },
        );
        let k = a.iter().copied().max().unwrap() as usize + 1;
        let mut sizes = vec![0usize; k];
        for &c in &a {
            sizes[c as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s <= 4), "{sizes:?}");
    }

    #[test]
    fn groups_seed_initial_clusters() {
        let (hg, costs) = blocks();
        let groups = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let a = multilevel_fc(
            &hg,
            8,
            &costs,
            Some(&groups),
            &FcOptions {
                target_clusters: 2,
                ..Default::default()
            },
        );
        assert_eq!(a, groups);
    }

    #[test]
    fn oversized_groups_are_split() {
        let groups = vec![0, 0, 0, 0, 0, 0];
        let split = split_oversized(&groups, 2);
        let k = split.iter().copied().max().unwrap() + 1;
        assert_eq!(k, 3);
        let mut sizes = std::collections::HashMap::new();
        for &g in &split {
            *sizes.entry(g).or_insert(0) += 1;
        }
        assert!(sizes.values().all(|&s| s == 2));
    }

    #[test]
    fn timing_cost_steers_merges() {
        // A 4-cycle where edge (0,1) is timing-critical: with β high,
        // 0 and 1 must merge first.
        let hg = Hypergraph::new(
            4,
            vec![
                (vec![0, 1], 1.0),
                (vec![1, 2], 1.0),
                (vec![2, 3], 1.0),
                (vec![3, 0], 1.0),
            ],
        );
        let mut costs = EdgeCosts::uniform(4);
        costs.timing = vec![1.0, 0.0, 0.0, 0.0];
        let a = multilevel_fc(
            &hg,
            4,
            &costs,
            None,
            &FcOptions {
                alpha: 0.1,
                beta: 10.0,
                gamma: 0.0,
                target_clusters: 3,
                max_passes: 1,
                ..Default::default()
            },
        );
        assert_eq!(a[0], a[1], "critical pair should merge: {a:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (hg, costs) = blocks();
        let opts = FcOptions {
            target_clusters: 3,
            ..Default::default()
        };
        assert_eq!(
            multilevel_fc(&hg, 8, &costs, None, &opts),
            multilevel_fc(&hg, 8, &costs, None, &opts)
        );
    }

    #[test]
    fn isolated_singletons_stay() {
        // Vertex 2 has no rateable edge: it must remain a singleton.
        let hg = Hypergraph::new(3, vec![(vec![0, 1], 1.0)]);
        let costs = EdgeCosts::uniform(1);
        let a = multilevel_fc(
            &hg,
            3,
            &costs,
            None,
            &FcOptions {
                target_clusters: 1,
                ..Default::default()
            },
        );
        assert_ne!(a[2], a[0]);
    }
}
