//! Hierarchy-based clustering (Algorithm 2 of the paper).
//!
//! The logical hierarchy tree is read as a dendrogram; shallow leaves are
//! levelized by replication (a module at depth 2 still forms its own
//! cluster when the tree is cut at depth 5); every cut level is scored with
//! the weighted-average Rent exponent (Eq. 1) and the best cut is returned.
//! The resulting clusters become the *grouping constraints* of the
//! enhanced multilevel clustering, not the final clusters.

use crate::cluster::rent::weighted_average_rent;
use cp_graph::Hypergraph;
use cp_netlist::netlist::Netlist;

/// The outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DendrogramClustering {
    /// Cluster id per cell (dense).
    pub assignment: Vec<u32>,
    /// Number of clusters.
    pub cluster_count: usize,
    /// The chosen dendrogram level.
    pub level: u32,
    /// `R_avg` at the chosen level.
    pub rent: f64,
    /// `(level, R_avg)` for every evaluated level, in level order.
    pub candidates: Vec<(u32, f64)>,
}

/// Runs hierarchy-based clustering on a netlist.
///
/// The clustering at level `k` assigns each cell to its hierarchy
/// ancestor at depth `k` (or to its own module if that module is
/// shallower — the leaf-replication levelization of Algorithm 2 lines
/// 7–12). Levels `1..level_max` are evaluated with Eq. 1 and the argmin is
/// returned; designs whose hierarchy is a single level collapse to one
/// cluster per module.
///
/// # Examples
///
/// ```
/// use cp_core::cluster::dendrogram::cluster_by_hierarchy;
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
///
/// let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.05)
///     .generate();
/// let result = cluster_by_hierarchy(&netlist);
/// assert!(result.cluster_count > 1);
/// assert_eq!(result.assignment.len(), netlist.cell_count());
/// ```
pub fn cluster_by_hierarchy(netlist: &Netlist) -> DendrogramClustering {
    let hg = netlist.to_hypergraph();
    cluster_by_hierarchy_on(netlist, &hg)
}

/// Like [`cluster_by_hierarchy`] but reusing an existing hypergraph view.
pub fn cluster_by_hierarchy_on(netlist: &Netlist, hg: &Hypergraph) -> DendrogramClustering {
    cluster_by_hierarchy_with_min(netlist, hg, 0)
}

/// Like [`cluster_by_hierarchy_on`], but levels yielding fewer than
/// `min_clusters` clusters are disqualified — a cut coarser than the
/// downstream coarsening target cannot guide it. If every level is too
/// coarse, the finest one wins.
pub fn cluster_by_hierarchy_with_min(
    netlist: &Netlist,
    hg: &Hypergraph,
    min_clusters: usize,
) -> DendrogramClustering {
    let tree = netlist.hierarchy();
    let level_max = tree.max_depth().max(1);
    let mut best: Option<DendrogramClustering> = None;
    let mut finest: Option<DendrogramClustering> = None;
    let mut candidates = Vec::new();
    for level in 1..=level_max.saturating_sub(1).max(1) {
        let mut assignment: Vec<u32> = netlist
            .cells()
            .iter()
            .map(|c| u32::from(tree.ancestor_at_depth(c.hier, level)))
            .collect();
        let k = cp_graph::community::compact_labels(&mut assignment);
        let rent = weighted_average_rent(hg, &assignment, k);
        candidates.push((level, rent));
        let entry = DendrogramClustering {
            assignment,
            cluster_count: k,
            level,
            rent,
            candidates: Vec::new(),
        };
        if finest.as_ref().is_none_or(|f| k > f.cluster_count) {
            finest = Some(entry.clone());
        }
        if k >= min_clusters && best.as_ref().is_none_or(|b| rent < b.rent) {
            best = Some(entry);
        }
    }
    // The loop above runs at least once, so `finest` is always set; the
    // degenerate arm only guards a netlist with no cells at all.
    let mut out = match best.or(finest) {
        Some(c) => c,
        None => DendrogramClustering {
            assignment: vec![0; netlist.cell_count()],
            cluster_count: usize::from(netlist.cell_count() > 0),
            level: 1,
            rent: 1.0,
            candidates: Vec::new(),
        },
    };
    out.candidates = candidates;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn netlist() -> Netlist {
        GeneratorConfig::from_profile(DesignProfile::Ariane)
            .scale(0.01)
            .seed(3)
            .generate()
    }

    #[test]
    fn picks_the_min_rent_level() {
        let n = netlist();
        let r = cluster_by_hierarchy(&n);
        for &(_, rent) in &r.candidates {
            assert!(r.rent <= rent + 1e-12);
        }
        assert!(r.candidates.iter().any(|&(l, _)| l == r.level));
    }

    #[test]
    fn assignment_is_dense_and_complete() {
        let n = netlist();
        let r = cluster_by_hierarchy(&n);
        assert_eq!(r.assignment.len(), n.cell_count());
        let max = r.assignment.iter().copied().max().unwrap() as usize;
        assert_eq!(max + 1, r.cluster_count);
    }

    #[test]
    fn clusters_respect_hierarchy() {
        // Cells in the same leaf module always share a cluster.
        let n = netlist();
        let r = cluster_by_hierarchy(&n);
        let mut by_module: std::collections::HashMap<_, u32> = std::collections::HashMap::new();
        for (cell, &label) in n.cells().iter().zip(&r.assignment) {
            let prev = by_module.insert(cell.hier, label);
            if let Some(p) = prev {
                assert_eq!(p, label, "module split across clusters");
            }
        }
    }

    #[test]
    fn beats_random_assignment_on_rent() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let n = netlist();
        let hg = n.to_hypergraph();
        let r = cluster_by_hierarchy(&n);
        let mut rng = StdRng::seed_from_u64(1);
        let random: Vec<u32> = (0..n.cell_count())
            .map(|_| rng.random_range(0..r.cluster_count as u32))
            .collect();
        let rent_rand = weighted_average_rent(&hg, &random, r.cluster_count);
        assert!(
            r.rent < rent_rand,
            "hierarchy {} vs random {rent_rand}",
            r.rent
        );
    }

    #[test]
    fn flat_hierarchy_collapses_gracefully() {
        use cp_netlist::{HierTree, Library, NetlistBuilder, PinRef, PortDir};
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("flat", lib);
        let a = b.add_port("a", PortDir::Input);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        let u1 = b.add_cell("u1", inv, HierTree::ROOT);
        b.add_net(
            "na",
            Some(PinRef::Port(a)),
            vec![PinRef::Cell { cell: u0, pin: 0 }],
        );
        b.add_net(
            "n1",
            Some(PinRef::Cell { cell: u0, pin: 0 }),
            vec![PinRef::Cell { cell: u1, pin: 0 }],
        );
        let n = b.finish().unwrap();
        let r = cluster_by_hierarchy(&n);
        assert_eq!(r.cluster_count, 1);
        assert_eq!(r.assignment, vec![0, 0]);
    }
}
