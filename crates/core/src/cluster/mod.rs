//! PPA-aware netlist clustering (Section 3.1 of the paper).

pub mod costs;
pub mod dendrogram;
pub mod fc;
pub mod quality;
pub mod rent;

use crate::cluster::costs::{build_edge_costs, EdgeCosts};
use crate::cluster::dendrogram::cluster_by_hierarchy_with_min;
use crate::cluster::fc::{multilevel_fc, FcOptions};
use crate::error::FlowError;
use cp_netlist::netlist::Netlist;
use cp_netlist::Constraints;
use cp_timing::activity::propagate_activity;
use cp_timing::sta::Sta;
use cp_timing::wire::WireModel;
use std::time::Instant;

/// Options for the full PPA-aware clustering stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringOptions {
    /// Connectivity scale α (Eq. 3).
    pub alpha: f64,
    /// Timing scale β.
    pub beta: f64,
    /// Switching scale γ.
    pub gamma: f64,
    /// Switching-cost exponent µ (Eq. 2, default 2).
    pub mu: f64,
    /// Number of critical paths |P| to extract (paper: 100 000).
    pub path_count: usize,
    /// Average cells per final cluster (sets the FC target count).
    pub avg_cluster_size: usize,
    /// Size cap as a multiple of the average cluster size.
    pub max_cluster_factor: f64,
    /// Use hierarchy grouping constraints (ablation toggle).
    pub use_hierarchy: bool,
    /// Use timing costs (ablation toggle).
    pub use_timing: bool,
    /// Use switching costs (ablation toggle).
    pub use_switching: bool,
    /// RNG seed for the coarsening visit order.
    pub seed: u64,
    /// Above this many cells, seed FC with heavy-edge-matched pre-clusters
    /// (multi-level coarsening) so the first FC pass starts far below the
    /// cell count instead of from singletons. Below the threshold the
    /// pipeline is unchanged.
    pub coarsen_threshold: usize,
}

impl Default for ClusteringOptions {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            mu: 2.0,
            path_count: 100_000,
            avg_cluster_size: 250,
            max_cluster_factor: 4.0,
            use_hierarchy: true,
            use_timing: true,
            use_switching: true,
            seed: 11,
            coarsen_threshold: 200_000,
        }
    }
}

impl ClusteringOptions {
    /// The FC target cluster count for a design of `n_cells`.
    pub fn target_clusters(&self, n_cells: usize) -> usize {
        (n_cells / self.avg_cluster_size.max(1)).max(8)
    }

    /// The FC size cap for a design of `n_cells`.
    pub fn max_cluster_size(&self) -> usize {
        ((self.avg_cluster_size as f64) * self.max_cluster_factor) as usize
    }
}

/// The result of the clustering stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringResult {
    /// Dense cluster id per cell.
    pub assignment: Vec<u32>,
    /// Number of clusters.
    pub cluster_count: usize,
    /// The dendrogram level the grouping constraints came from (if used).
    pub dendrogram_level: Option<u32>,
    /// `R_avg` of the grouping constraints (if used).
    pub dendrogram_rent: Option<f64>,
    /// Wall-clock seconds spent clustering (incl. STA/activity extraction).
    pub runtime: f64,
}

/// Runs the full PPA-aware clustering pipeline (Algorithm 1, lines 2–10):
/// logical-hierarchy dendrogram clustering → grouping constraints, STA
/// path/net slacks → `t_e`, vectorless activity → `s_e`, then enhanced
/// multilevel FC.
///
/// # Errors
///
/// [`FlowError::Validation`] when the netlist or constraints are
/// degenerate; [`FlowError::Timing`] when the timing-cost STA finds a
/// combinational cycle.
pub fn ppa_aware_clustering(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &ClusteringOptions,
) -> Result<ClusteringResult, FlowError> {
    netlist.validate()?;
    constraints.validate()?;
    let start = Instant::now();
    let (hg, net_to_edge) = netlist.to_hypergraph_with_map();
    let n_cells = netlist.cell_count();

    // Lines 2-3: hierarchy-based grouping constraints. Levels coarser than
    // the coarsening target are skipped (they cannot guide it), and a
    // degenerate hierarchy (everything in one module) falls back to
    // unconstrained coarsening, as Algorithm 1 does when no logical
    // hierarchy is present.
    let target = options.target_clusters(n_cells);
    let dendro = options
        .use_hierarchy
        .then(|| cluster_by_hierarchy_with_min(netlist, &hg, target))
        .filter(|d| d.cluster_count >= 2 && 2 * d.cluster_count >= target);

    // Lines 4-5: timing paths and switching activity.
    let mut costs = if options.use_timing || options.use_switching {
        let act = propagate_activity(netlist, constraints);
        let paths = if options.use_timing {
            let sta = Sta::new(netlist, constraints)?;
            let report = sta.run(&WireModel::Estimate);
            sta.extract_paths(&report, options.path_count)
        } else {
            Vec::new()
        };
        build_edge_costs(
            netlist,
            &net_to_edge,
            hg.edge_count(),
            &paths,
            constraints.clock_period,
            &act,
            options.mu,
        )
    } else {
        EdgeCosts::uniform(hg.edge_count())
    };
    if !options.use_switching {
        costs.switching = vec![1.0; hg.edge_count()];
    }

    // Line 9: enhanced multilevel FC.
    let fc_opts = FcOptions {
        alpha: options.alpha,
        beta: if options.use_timing {
            options.beta
        } else {
            0.0
        },
        gamma: if options.use_switching {
            options.gamma
        } else {
            0.0
        },
        target_clusters: options.target_clusters(n_cells),
        max_cluster_size: options.max_cluster_size(),
        seed: options.seed,
        max_passes: 24,
    };
    // Multi-level front-end: above the coarsening threshold, heavy-edge
    // matching over the cell graph produces pre-clusters that seed FC, so
    // the first FC pass rates ~threshold clusters instead of 10⁵–10⁶
    // singletons. Hierarchy groups stay inviolable: the seed id is the
    // (group, pre-cluster) composite, which splits any matched pair that
    // crosses a dendrogram group.
    let precoarse: Option<Vec<u32>> = (n_cells > options.coarsen_threshold).then(|| {
        let keep: Vec<u32> = (0..n_cells as u32).collect();
        let (cells_only, _) = hg.induce(&keep, 2);
        let g = cells_only.bounded_clique_expansion(16);
        let copts = cp_graph::coarsen::CoarsenOptions {
            threshold: options.coarsen_threshold,
            max_levels: 16,
        };
        let (_, map, _) = cp_graph::coarsen::coarsen_to(&g, &copts);
        map
    });
    let seeded: Option<Vec<u32>> = match (&dendro, precoarse) {
        (Some(d), Some(pc)) => Some(compose_groups(&d.assignment, &pc)),
        (None, Some(pc)) => Some(pc),
        _ => None,
    };
    let groups = seeded
        .as_deref()
        .or_else(|| dendro.as_ref().map(|d| d.assignment.as_slice()));
    let mut assignment = multilevel_fc(&hg, n_cells, &costs, groups, &fc_opts);
    let cluster_count = cp_graph::community::compact_labels(&mut assignment);
    Ok(ClusteringResult {
        assignment,
        cluster_count,
        dendrogram_level: dendro.as_ref().map(|d| d.level),
        dendrogram_rent: dendro.as_ref().map(|d| d.rent),
        runtime: start.elapsed().as_secs_f64(),
    })
}

/// Composes hierarchy groups with pre-coarsening clusters: two cells share
/// a seed cluster only when they agree on *both* labels. Dense ids are
/// assigned in first-seen order so the result is deterministic.
fn compose_groups(outer: &[u32], inner: &[u32]) -> Vec<u32> {
    debug_assert_eq!(outer.len(), inner.len());
    let mut dense: std::collections::HashMap<(u32, u32), u32> =
        std::collections::HashMap::with_capacity(inner.len() / 4);
    outer
        .iter()
        .zip(inner)
        .map(|(&o, &i)| {
            let next = dense.len() as u32;
            *dense.entry((o, i)).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    // Seed chosen so the generated hierarchy is deep enough for dendrogram
    // grouping to engage (some seeds yield a 3-module top level, which the
    // `2 * count >= target` filter rightly rejects).
    fn setup() -> (Netlist, Constraints) {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(6)
            .generate_with_constraints()
    }

    #[test]
    fn produces_reasonable_cluster_counts() {
        let (n, c) = setup();
        let opts = ClusteringOptions {
            avg_cluster_size: 40,
            ..Default::default()
        };
        let r = ppa_aware_clustering(&n, &c, &opts).expect("clustering runs");
        assert_eq!(r.assignment.len(), n.cell_count());
        let target = opts.target_clusters(n.cell_count());
        assert!(
            r.cluster_count >= target / 2 && r.cluster_count <= n.cell_count() / 4,
            "clusters {} target {target}",
            r.cluster_count
        );
        assert!(r.dendrogram_level.is_some());
    }

    #[test]
    fn ablations_change_the_result() {
        let (n, c) = setup();
        let base = ClusteringOptions {
            avg_cluster_size: 40,
            ..Default::default()
        };
        let ours = ppa_aware_clustering(&n, &c, &base).expect("clustering runs");
        let no_hier = ppa_aware_clustering(
            &n,
            &c,
            &ClusteringOptions {
                use_hierarchy: false,
                ..base
            },
        )
        .expect("clustering runs");
        assert_ne!(ours.assignment, no_hier.assignment);
        assert!(no_hier.dendrogram_level.is_none());
    }

    #[test]
    fn clustering_is_deterministic() {
        let (n, c) = setup();
        let opts = ClusteringOptions {
            avg_cluster_size: 40,
            ..Default::default()
        };
        let a = ppa_aware_clustering(&n, &c, &opts).expect("clustering runs");
        let b = ppa_aware_clustering(&n, &c, &opts).expect("clustering runs");
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn compose_groups_splits_cross_group_pairs() {
        // Cells 1 and 2 share a pre-cluster but sit in different hierarchy
        // groups — the composite must keep them apart.
        let outer = [0, 0, 1, 1];
        let inner = [5, 9, 9, 9];
        assert_eq!(compose_groups(&outer, &inner), vec![0, 1, 2, 2]);
    }

    #[test]
    fn precoarsened_clustering_is_deterministic_and_capped() {
        let (n, c) = setup();
        // Force the multi-level front-end on this small design.
        let opts = ClusteringOptions {
            avg_cluster_size: 30,
            max_cluster_factor: 2.0,
            coarsen_threshold: 64,
            ..Default::default()
        };
        let a = ppa_aware_clustering(&n, &c, &opts).expect("clustering runs");
        let b = ppa_aware_clustering(&n, &c, &opts).expect("clustering runs");
        assert_eq!(a.assignment, b.assignment);
        assert!(a.cluster_count > 1);
        let mut sizes = vec![0usize; a.cluster_count];
        for &l in &a.assignment {
            sizes[l as usize] += 1;
        }
        let cap = opts.max_cluster_size();
        assert!(sizes.iter().all(|&s| s <= cap));
    }

    #[test]
    fn cluster_sizes_respect_cap() {
        let (n, c) = setup();
        let opts = ClusteringOptions {
            avg_cluster_size: 30,
            max_cluster_factor: 2.0,
            ..Default::default()
        };
        let r = ppa_aware_clustering(&n, &c, &opts).expect("clustering runs");
        let mut sizes = vec![0usize; r.cluster_count];
        for &a in &r.assignment {
            sizes[a as usize] += 1;
        }
        let cap = opts.max_cluster_size();
        assert!(
            sizes.iter().all(|&s| s <= cap),
            "max size {} cap {cap}",
            sizes.iter().max().unwrap()
        );
    }
}
