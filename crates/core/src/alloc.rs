//! Dependency-free counting global allocator (`alloc-telemetry` feature).
//!
//! Wraps [`System`] and keeps three relaxed atomics: live bytes, peak
//! live bytes and total allocation count. [`crate::qor::record_heap`]
//! publishes them as `mem.*` gauges at stage boundaries. The module only
//! exists when the feature is enabled, so the disabled configuration pays
//! nothing — there is no allocator shim to branch through.
//!
//! The counters use `Ordering::Relaxed` throughout: cross-thread
//! interleavings can momentarily under-report `current`, but `peak` is
//! maintained with `fetch_max` so it never loses a high-water mark that
//! a single thread observed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide heap counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Live heap bytes right now.
    pub current_bytes: u64,
    /// Peak live heap bytes since process start.
    pub peak_bytes: u64,
    /// Allocations (incl. grows) since process start.
    pub alloc_count: u64,
}

/// Reads the current heap counters.
pub fn heap_stats() -> HeapStats {
    HeapStats {
        current_bytes: CURRENT.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        alloc_count: COUNT.load(Ordering::Relaxed),
    }
}

fn on_alloc(bytes: u64) {
    COUNT.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

fn on_dealloc(bytes: u64) {
    // Saturating: a dealloc racing ahead of the matching alloc's add (or
    // memory handed over before the counters existed) must not wrap.
    let mut cur = CURRENT.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(bytes);
        match CURRENT.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// [`System`] plus live/peak/count accounting.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_a_boxed_allocation() {
        let before = heap_stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        let mid = heap_stats();
        assert!(mid.alloc_count > before.alloc_count);
        assert!(mid.current_bytes >= before.current_bytes + (1 << 20));
        assert!(mid.peak_bytes >= mid.current_bytes);
        drop(v);
        let after = heap_stats();
        assert!(after.current_bytes < mid.current_bytes);
        assert!(after.peak_bytes >= mid.peak_bytes);
    }
}
