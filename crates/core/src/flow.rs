//! The clustered-placement flow (Algorithm 1 of the paper).
//!
//! `run_flow` executes the full pipeline: PPA-aware clustering →
//! (ML-accelerated) V-P&R cluster shaping → cluster seed placement →
//! flat seeded placement (OpenROAD-like with IO-net weight ×4, or
//! Innovus-like with region constraints) → legalization → CTS → global
//! routing → post-route STA and power. `run_default_flow` is the flat
//! baseline every table normalizes against.
//!
//! Every entry point is fallible: degenerate inputs are rejected up front
//! with a [`FlowError`] instead of panicking stages later, and recoveries
//! the flow performed on its own (divergence reverts, shape fallbacks,
//! dropped regions) are reported on [`FlowReport::diagnostics`].

use crate::checkpoint::{self, Checkpoint, PlacementState, ShapingState};
use crate::cluster::costs::build_edge_costs;
use crate::cluster::{ppa_aware_clustering, ClusteringOptions};
use crate::error::{
    FlowDiagnostics, FlowError, InterruptedFlow, RecoveryEvent, DEFAULT_DIAGNOSTICS_LIMIT,
};
use crate::qor;
use crate::stages;
use crate::vpr::ml::MlShapeSelector;
use crate::vpr::subnetlist::SubnetlistCache;
use crate::vpr::{
    best_shape_hybrid_with_control, best_shape_with_control, ShapeSearchStats, VprOptions,
};
use cp_netlist::clustered::ClusteredNetlist;
use cp_netlist::floorplan::Rect;
use cp_netlist::netlist::Netlist;
use cp_netlist::{CellId, ClusterShape, Constraints, Floorplan, ValidationError};
use cp_parallel::RegionError;
use cp_place::cts::{synthesize_clock_tree, CtsOptions};
use cp_place::detailed::{refine, DetailedOptions};
use cp_place::hpwl::raw_hpwl;
use cp_place::{legalize, BestSnapshot, GlobalPlacer, PlaceError, PlacementProblem, PlacerOptions};
use cp_resilience::{sites, Interrupt, InterruptKind, RunControl};
use cp_route::{route_placed_netlist, RouterOptions};
use cp_timing::activity::propagate_activity;
use cp_timing::power::power_report;
use cp_timing::sta::Sta;
use cp_timing::wire::WireModel;
use cp_timing::TimingError;
use cp_trace::{ArgValue, SpanGuard, TraceReport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::PathBuf;
use std::time::Instant;

/// Which tool's seeded-placement recipe to follow (Algorithm 1, lines
/// 15–25).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// IO-net weights ×4, no region constraints (lines 22–25).
    OpenRoadLike,
    /// Region constraints around shaped clusters during incremental
    /// placement (lines 16–20).
    InnovusLike,
}

/// How cluster shapes are chosen (Table 6's ablation axis).
#[derive(Debug, Clone)]
pub enum ShapeMode {
    /// Every cluster at utilization 0.9, aspect ratio 1.0.
    Uniform,
    /// Random candidate per cluster (seeded).
    Random(u64),
    /// Exact V-P&R sweep (20 place-and-route runs per cluster).
    Vpr,
    /// GNN-predicted Total Cost (the ML-accelerated path).
    VprMl(Box<MlShapeSelector>),
    /// Surrogate-first search: a cheap ranking (the trained selector when
    /// present, otherwise a low-effort placement proxy) picks `top_k`
    /// candidates, and exact V-P&R runs only those via successive halving
    /// with warm-started solves. `top_k >= 20` degenerates to the exact
    /// sweep, selecting bit-identical shapes to [`ShapeMode::Vpr`].
    Hybrid {
        /// Trained surrogate for the ranking step; `None` falls back to
        /// the placement proxy.
        selector: Option<Box<MlShapeSelector>>,
        /// Candidates that survive into exact V-P&R.
        top_k: usize,
    },
}

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Seeded-placement recipe.
    pub tool: Tool,
    /// Clustering stage options.
    pub clustering: ClusteringOptions,
    /// Cluster shape selection.
    pub shape_mode: ShapeMode,
    /// Shape only clusters with more than this many instances (paper: 200).
    pub vpr_min_instances: usize,
    /// V-P&R settings (used by `ShapeMode::Vpr`).
    pub vpr: VprOptions,
    /// Global placer settings.
    pub placer: PlacerOptions,
    /// Global router settings.
    pub router: RouterOptions,
    /// CTS settings.
    pub cts: CtsOptions,
    /// Floorplan core utilization.
    pub utilization: f64,
    /// Floorplan aspect ratio.
    pub aspect_ratio: f64,
    /// IO-net weight factor in the OpenROAD-like mode (paper: 4).
    pub io_weight: f64,
    /// Preplaced macro blockages `(count, core-area fraction)` — the
    /// `.def` macro preplacements of the paper's larger testcases.
    pub macro_blockages: (usize, f64),
    /// Timing-driven placement: scale flat-placement net weights by the
    /// nets' timing criticality (`w = 1 + 2·t_e`). Applied to both the
    /// default and the clustered flow so comparisons stay fair.
    pub timing_driven: bool,
    /// Congestion-driven refinement: after placement, inflate cells in
    /// overflowed GCells and re-place incrementally (RePlAce-style
    /// routability pass). Applied to both flows.
    pub congestion_driven: bool,
    /// Cap on stored [`FlowDiagnostics`] events per run; recoveries past
    /// it are counted (`diagnostics.dropped`, plus the
    /// `flow.diagnostics.dropped` metric) instead of stored.
    pub diagnostics_limit: usize,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            tool: Tool::OpenRoadLike,
            clustering: ClusteringOptions::default(),
            shape_mode: ShapeMode::Uniform,
            vpr_min_instances: 200,
            vpr: VprOptions::default(),
            placer: PlacerOptions::default(),
            router: RouterOptions::default(),
            cts: CtsOptions::default(),
            utilization: 0.6,
            aspect_ratio: 1.0,
            io_weight: 4.0,
            macro_blockages: (0, 0.0),
            timing_driven: false,
            congestion_driven: false,
            diagnostics_limit: DEFAULT_DIAGNOSTICS_LIMIT,
        }
    }
}

impl FlowOptions {
    /// Reduced-effort settings for tests and small designs.
    pub fn fast() -> Self {
        Self {
            clustering: ClusteringOptions {
                avg_cluster_size: 60,
                path_count: 2000,
                ..Default::default()
            },
            vpr_min_instances: 50,
            placer: PlacerOptions {
                max_iterations: 12,
                incremental_iterations: 5,
                cg_iterations: 30,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Sets the tool (builder style).
    pub fn tool(mut self, tool: Tool) -> Self {
        self.tool = tool;
        self
    }

    /// Sets the shape mode (builder style).
    pub fn shape_mode(mut self, mode: ShapeMode) -> Self {
        self.shape_mode = mode;
        self
    }

    /// Sets the placer's spreading backend (builder style). Every
    /// placement the flow runs — clustered, flat, and V-P&R candidate
    /// evaluations — uses the chosen backend; checkpointing and QoR
    /// gating work unchanged (the backend is part of the options
    /// fingerprint, so checkpoints never mix backends).
    pub fn backend(mut self, backend: cp_place::PlacerBackendKind) -> Self {
        self.placer.backend = backend;
        self
    }
}

/// Post-route PPA metrics (the columns of Tables 3–6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaReport {
    /// Routed wirelength, µm.
    pub rwl: f64,
    /// Worst negative slack, ps (positive = met).
    pub wns: f64,
    /// Total negative slack, ps.
    pub tns: f64,
    /// Total power, W.
    pub power: f64,
    /// Clock skew from CTS, ps.
    pub skew: f64,
    /// Worst hold slack, ps (positive = met).
    pub hold_wns: f64,
}

/// Per-stage wall-clock diagnostics: which stages ran, how long each
/// took, and the thread budget they ran under — so parallel speedup is
/// observable from every report without re-instrumenting the flow.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageTimings {
    /// Thread budget in effect (`CP_THREADS` / `cp_parallel::with_threads`).
    pub threads: usize,
    /// `(stage name, seconds)` in execution order.
    pub stages: Vec<(&'static str, f64)>,
}

impl StageTimings {
    fn new() -> Self {
        Self {
            threads: cp_parallel::current_threads(),
            stages: Vec::new(),
        }
    }

    fn record(&mut self, name: &'static str, since: Instant) {
        self.stages.push((name, since.elapsed().as_secs_f64()));
    }

    /// Replaces the `Instant`-measured stage durations with the ones the
    /// stage spans measured (when tracing ran), and prepends the
    /// clustering stage when its runtime came from outside the traced
    /// region (e.g. a precomputed assignment). Span names equal stage
    /// labels (see [`stages`]), so the two sources always agree on keys.
    fn finalize(&mut self, trace: Option<&TraceReport>, clustering_runtime: f64) {
        if let Some(tr) = trace {
            self.stages = tr
                .stage_seconds()
                .into_iter()
                .filter(|(n, _)| stages::ALL.contains(n))
                .collect();
        }
        if clustering_runtime > 0.0 && self.get(stages::CLUSTERING).is_none() {
            self.stages
                .insert(0, (stages::CLUSTERING, clustering_runtime));
        }
    }

    /// Seconds spent in the named stage, if it ran.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, s)| s)
    }

    /// Total seconds across all recorded stages.
    pub fn total(&self) -> f64 {
        self.stages.iter().map(|&(_, s)| s).sum()
    }
}

/// Shaping-stage counters: how much exact V-P&R work the configured shape
/// mode performed versus avoided. All zeros for modes that never invoke
/// V-P&R (`Uniform`, `Random`) and for the flat flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapingStats {
    /// Clusters that went through shape selection.
    pub clusters_shaped: usize,
    /// Exact V-P&R evaluations run.
    pub exact_evals: usize,
    /// Candidates pruned before exact evaluation (Hybrid only).
    pub exact_evals_avoided: usize,
    /// Low-effort placement-proxy evaluations (untrained Hybrid ranking).
    pub proxy_evals: usize,
    /// Batched surrogate forward passes.
    pub surrogate_batches: usize,
    /// Samples scored across those batches (clusters × candidates).
    pub surrogate_samples: usize,
    /// Exact evaluations warm-started from a previous candidate's solution.
    pub warm_start_hits: usize,
    /// Sub-netlist extractions served from the cache.
    pub subnetlist_cache_hits: usize,
    /// Sub-netlist extractions that had to run.
    pub subnetlist_cache_misses: usize,
}

impl ShapingStats {
    fn absorb(&mut self, s: &ShapeSearchStats) {
        self.exact_evals += s.exact_evals;
        self.exact_evals_avoided += s.exact_evals_avoided;
        self.proxy_evals += s.proxy_evals;
        self.warm_start_hits += s.warm_start_hits;
    }
}

/// The flow outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Post-placement (legalized) HPWL, µm.
    pub hpwl: f64,
    /// Clusters formed (0 for the flat flow).
    pub cluster_count: usize,
    /// Seconds in clustering (incl. STA/activity extraction).
    pub clustering_runtime: f64,
    /// Seconds in placement (cluster placement + seeded flat placement,
    /// or the flat placement for the default flow).
    pub placement_runtime: f64,
    /// Post-route PPA.
    pub ppa: PpaReport,
    /// Recoveries the flow performed instead of failing (empty on a clean
    /// run).
    pub diagnostics: FlowDiagnostics,
    /// Per-stage wall-clock and thread budget.
    pub timings: StageTimings,
    /// Shaping-stage work counters.
    pub shaping: ShapingStats,
    /// The run's span/telemetry subtree, when tracing was enabled
    /// (`CP_TRACE` / [`cp_trace::set_level`]); `None` otherwise.
    pub trace: Option<TraceReport>,
}

impl FlowReport {
    /// Bitwise equality of everything a resumed or re-executed run must
    /// reproduce: HPWL and PPA bits, cluster count, shaping counters and
    /// the non-bookkeeping recovery events. Wall-clock fields (runtimes,
    /// stage timings) and the trace are excluded — they describe a
    /// particular execution, not its result — as are the
    /// checkpoint/resume bookkeeping events, which differ by construction
    /// between an original and a resumed run.
    pub fn deterministic_eq(&self, other: &Self) -> bool {
        let bits = |a: f64, b: f64| a.to_bits() == b.to_bits();
        fn events(d: &FlowDiagnostics) -> Vec<&RecoveryEvent> {
            d.events.iter().filter(|e| !e.is_bookkeeping()).collect()
        }
        bits(self.hpwl, other.hpwl)
            && self.cluster_count == other.cluster_count
            && bits(self.ppa.rwl, other.ppa.rwl)
            && bits(self.ppa.wns, other.ppa.wns)
            && bits(self.ppa.tns, other.ppa.tns)
            && bits(self.ppa.power, other.ppa.power)
            && bits(self.ppa.skew, other.ppa.skew)
            && bits(self.ppa.hold_wns, other.ppa.hold_wns)
            && self.shaping == other.shaping
            && events(&self.diagnostics) == events(&other.diagnostics)
            && self.diagnostics.dropped == other.diagnostics.dropped
    }
}

/// Pre-flight validation shared by every flow entry point: reject the
/// netlist, constraints and floorplan request before any stage runs.
fn validated_floorplan(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
) -> Result<Floorplan, FlowError> {
    netlist.validate()?;
    constraints.validate()?;
    let fp = Floorplan::try_for_netlist(netlist, options.utilization, options.aspect_ratio)?
        .try_with_macro_blockages(options.macro_blockages.0, options.macro_blockages.1)?;
    fp.validate_capacity(netlist)?;
    Ok(fp)
}

/// Runs the default (flat, no clustering) flow — the baseline of every
/// table.
///
/// # Errors
///
/// [`FlowError::Validation`] on degenerate inputs (empty netlist,
/// utilization outside `(0, 1]`, overfull core, …); a stage error when
/// placement, timing or routing fails downstream.
pub fn run_default_flow(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
) -> Result<FlowReport, FlowError> {
    let root = cp_trace::span(stages::FLOW_FLAT);
    let fp = validated_floorplan(netlist, constraints, options)?;
    let mut diagnostics = FlowDiagnostics::with_limit(options.diagnostics_limit);
    let mut problem = PlacementProblem::from_netlist(netlist, &fp);
    if options.timing_driven {
        problem.net_weights = timing_net_weights(netlist, constraints)?;
    }
    let mut timings = StageTimings::new();
    let t0 = Instant::now();
    let s_flat = cp_trace::span(stages::FLAT_PLACEMENT);
    let fields_scope = cp_trace::fields::scope(stages::FLAT_PLACEMENT);
    let mut result = GlobalPlacer::new(options.placer).place(&problem)?;
    drop(fields_scope);
    if result.diverged {
        diagnostics.record(RecoveryEvent::PlacerReverted {
            stage: stages::FLAT_PLACEMENT,
        });
    }
    if options.congestion_driven {
        result.positions = congestion_driven_refine(
            netlist,
            &fp,
            &problem,
            result.positions,
            options,
            &mut diagnostics,
        )?;
    }
    drop(s_flat);
    timings.record(stages::FLAT_PLACEMENT, t0);
    qor::record_placement_hpwl(qor::FLAT_PLACEMENT_HPWL, &problem, &result.positions);
    qor::record_heap();
    let t_leg = Instant::now();
    let s_leg = cp_trace::span(stages::LEGALIZE_REFINE);
    legalize(&problem, &fp, &mut result.positions)?;
    refine(
        &problem,
        &fp,
        &mut result.positions,
        &DetailedOptions::default(),
    );
    drop(s_leg);
    timings.record(stages::LEGALIZE_REFINE, t_leg);
    let placement_runtime = t0.elapsed().as_secs_f64();
    let hpwl = raw_hpwl(&problem, &result.positions);
    cp_trace::gauge_set(qor::LEGALIZED_HPWL, hpwl);
    qor::record_heap();
    let t_ppa = Instant::now();
    let s_ppa = cp_trace::span(stages::PPA);
    let ppa = evaluate_ppa(netlist, constraints, &result.positions, &fp, options)?;
    drop(s_ppa);
    timings.record(stages::PPA, t_ppa);
    let trace = cp_trace::take_report(root);
    timings.finalize(trace.as_ref(), 0.0);
    Ok(FlowReport {
        hpwl,
        cluster_count: 0,
        clustering_runtime: 0.0,
        placement_runtime,
        ppa,
        diagnostics,
        timings,
        shaping: ShapingStats::default(),
        trace,
    })
}

/// Runs the full clustered flow (Algorithm 1).
///
/// # Errors
///
/// See [`run_default_flow`]; additionally [`FlowError::Timing`] when the
/// clustering stage's STA finds a combinational cycle.
pub fn run_flow(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
) -> Result<FlowReport, FlowError> {
    let root = cp_trace::span(stages::FLOW_CLUSTERED);
    let s_cluster = cp_trace::span(stages::CLUSTERING);
    let clustering = ppa_aware_clustering(netlist, constraints, &options.clustering)?;
    drop(s_cluster);
    let mut cache = SubnetlistCache::new();
    flow_with_assignment_traced(
        netlist,
        constraints,
        &clustering.assignment,
        clustering.runtime,
        options,
        &mut cache,
        root,
        &mut ExecContext::passive(),
    )
}

/// Runs the seeded-placement flow for an externally supplied cluster
/// assignment (used by the baselines of Tables 2 and 5).
///
/// # Errors
///
/// See [`run_default_flow`]; additionally
/// [`ValidationError::AssignmentLengthMismatch`] when `assignment` does
/// not cover every cell.
pub fn run_flow_with_assignment(
    netlist: &Netlist,
    constraints: &Constraints,
    assignment: &[u32],
    clustering_runtime: f64,
    options: &FlowOptions,
) -> Result<FlowReport, FlowError> {
    let mut cache = SubnetlistCache::new();
    run_flow_with_assignment_cached(
        netlist,
        constraints,
        assignment,
        clustering_runtime,
        options,
        &mut cache,
    )
}

/// [`run_flow_with_assignment`] with a caller-owned [`SubnetlistCache`],
/// so repeated runs over the same assignment (ablations, the shaping
/// bench) extract each cluster's sub-netlist once across all of them.
///
/// # Errors
///
/// See [`run_flow_with_assignment`].
pub fn run_flow_with_assignment_cached(
    netlist: &Netlist,
    constraints: &Constraints,
    assignment: &[u32],
    clustering_runtime: f64,
    options: &FlowOptions,
    cache: &mut SubnetlistCache,
) -> Result<FlowReport, FlowError> {
    let root = cp_trace::span(stages::FLOW_CLUSTERED);
    flow_with_assignment_traced(
        netlist,
        constraints,
        assignment,
        clustering_runtime,
        options,
        cache,
        root,
        &mut ExecContext::passive(),
    )
}

/// Cancellation, deadline and memory-budget limits plus checkpoint wiring
/// for [`run_flow_resilient`]. The default is fully passive: an unlimited
/// control, no checkpointing, no resume.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Cooperative cancellation / deadline / memory-budget control,
    /// checked at stage boundaries, per placer iteration and per V-P&R
    /// candidate.
    pub control: RunControl,
    /// When set, a stage-granular checkpoint is (re)written here after
    /// each completed stage (atomically — see [`Checkpoint::save`]).
    pub checkpoint: Option<PathBuf>,
    /// When set, completed stages are restored from this checkpoint
    /// instead of recomputed; the resumed run's report is bitwise
    /// identical to an uninterrupted one
    /// ([`FlowReport::deterministic_eq`]).
    pub resume_from: Option<PathBuf>,
    /// When set, one run-ledger entry (see [`cp_trace::ledger`]) is
    /// appended here per run — on success *and* on interruption. Like
    /// checkpoint writes, a failed append is reported as a
    /// `ledger.append_failed` trace instant and never fails the flow.
    pub ledger: Option<PathBuf>,
}

/// [`run_flow`] under a [`RunControl`], with optional checkpoint/resume.
///
/// An interruption surfaces as [`FlowError::Cancelled`],
/// [`FlowError::DeadlineExceeded`] or [`FlowError::BudgetExceeded`]
/// carrying the diagnostics collected so far, the placer's best-so-far
/// snapshot when one exists, and the path of the last written checkpoint
/// — so callers can resume instead of restarting.
///
/// # Errors
///
/// See [`run_flow`]; additionally the interrupt variants above and
/// [`FlowError::Checkpoint`] when `resume_from` names a checkpoint that
/// is unreadable, malformed, or fingerprinted for a different
/// netlist/configuration.
pub fn run_flow_resilient(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
    resilience: &ResilienceOptions,
) -> Result<FlowReport, FlowError> {
    install_heap_probe();
    let fingerprint = checkpoint::fingerprint(netlist, options);
    let result = run_flow_resilient_inner(netlist, constraints, options, resilience, fingerprint);
    if let Some(path) = &resilience.ledger {
        let resumed = resilience.resume_from.is_some();
        let entry = match &result {
            Ok(report) => Some(ledger_entry_for_report(
                report,
                fingerprint,
                netlist.name(),
                options,
                resumed,
            )),
            Err(e) => e.interrupted().map(|i| {
                ledger_entry_for_interrupt(i, fingerprint, netlist.name(), options, resumed)
            }),
        };
        if let Some(entry) = entry {
            // The save_draft contract: persistence failures are surfaced
            // as telemetry, never as flow failures.
            if let Err(reason) = cp_trace::ledger::append(path, &entry) {
                cp_trace::instant(
                    "ledger.append_failed",
                    &[("fingerprint", cp_trace::ArgValue::U(fingerprint))],
                );
                let _ = reason;
            }
        }
    }
    result
}

fn run_flow_resilient_inner(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
    resilience: &ResilienceOptions,
    fingerprint: u64,
) -> Result<FlowReport, FlowError> {
    let resume = match &resilience.resume_from {
        Some(path) => {
            let cp = Checkpoint::load(path).map_err(|reason| FlowError::Checkpoint { reason })?;
            if cp.fingerprint != fingerprint {
                return Err(FlowError::Checkpoint {
                    reason: format!(
                        "fingerprint mismatch: checkpoint {:016x} vs run {fingerprint:016x} \
                         (different netlist or options)",
                        cp.fingerprint
                    ),
                });
            }
            Some(cp)
        }
        None => None,
    };
    let mut exec = ExecContext {
        control: resilience.control.clone(),
        checkpoint_path: resilience.checkpoint.clone(),
        fingerprint,
        resume,
    };
    let mut preflight = FlowDiagnostics::with_limit(options.diagnostics_limit);
    exec.check(sites::FLOW_START, stages::CLUSTERING, &mut preflight)?;
    let root = cp_trace::span(stages::FLOW_CLUSTERED);
    let (assignment, clustering_runtime) = match &exec.resume {
        Some(cp) => (cp.assignment.clone(), cp.clustering_runtime),
        None => {
            let s_cluster = cp_trace::span(stages::CLUSTERING);
            let clustering = ppa_aware_clustering(netlist, constraints, &options.clustering)?;
            drop(s_cluster);
            (clustering.assignment, clustering.runtime)
        }
    };
    let mut cache = SubnetlistCache::new();
    flow_with_assignment_traced(
        netlist,
        constraints,
        &assignment,
        clustering_runtime,
        options,
        &mut cache,
        root,
        &mut exec,
    )
}

/// Points the interruption machinery's heap gauge at the counting
/// allocator when it is compiled in; without `alloc-telemetry` this is a
/// no-op and memory budgets never trip.
fn install_heap_probe() {
    #[cfg(feature = "alloc-telemetry")]
    cp_resilience::install_heap_probe(|| crate::alloc::heap_stats().current_bytes);
}

/// Short human-facing label for a shape mode (the ML variants carry
/// trained weights whose `Debug` form is unusable as a summary).
fn shape_mode_label(mode: &ShapeMode) -> &'static str {
    match mode {
        ShapeMode::Uniform => "uniform",
        ShapeMode::Random(_) => "random",
        ShapeMode::Vpr => "vpr",
        ShapeMode::VprMl(_) => "vpr-ml",
        ShapeMode::Hybrid { .. } => "hybrid",
    }
}

/// The compact options summary persisted with every ledger entry —
/// informational (the FNV fingerprint is the grouping key, and it covers
/// the full `Debug` form of the options).
fn options_summary(options: &FlowOptions) -> String {
    format!(
        "tool={:?} shape={} util={} td={} cd={} avg_cluster={}",
        options.tool,
        shape_mode_label(&options.shape_mode),
        options.utilization,
        options.timing_driven,
        options.congestion_driven,
        options.clustering.avg_cluster_size,
    )
}

/// Builds the ledger entry for a completed run: measured fields from the
/// captured trace when one exists, else synthesized from the report (the
/// Instant-measured stage timings and the headline QoR numbers, under
/// the same `qor.*` gauge names).
fn ledger_entry_for_report(
    report: &FlowReport,
    fingerprint: u64,
    design: &str,
    options: &FlowOptions,
    resumed: bool,
) -> cp_trace::LedgerEntry {
    let mut entry = cp_trace::LedgerEntry::new(fingerprint, design, "flow")
        .with_threads(report.timings.threads as u32)
        .with_resumed(resumed)
        .with_options(&options_summary(options));
    if let Some(trace) = &report.trace {
        entry = entry.capture_trace(trace);
    }
    if entry.stages.is_empty() {
        let mut total = 0i64;
        entry.stages = report
            .timings
            .stages
            .iter()
            .map(|&(name, s)| {
                let ns = (s * 1e9).round() as i64;
                total += ns;
                (name.to_string(), ns)
            })
            .collect();
        // Keep the partition invariant (Σ stages == root wall) on the
        // traceless path too: the measured stages *are* the wall here.
        entry.stages.push(("other".to_string(), 0));
        entry.root_wall_ns = total.max(0) as u64;
    }
    if entry.qor.is_empty() {
        entry.qor = vec![
            (qor::CLUSTER_COUNT.to_string(), report.cluster_count as f64),
            (qor::CTS_SKEW.to_string(), report.ppa.skew),
            (qor::LEGALIZED_HPWL.to_string(), report.hpwl),
            (qor::POWER_TOTAL.to_string(), report.ppa.power),
            (qor::ROUTE_RWL.to_string(), report.ppa.rwl),
            (qor::TIMING_HOLD_WNS.to_string(), report.ppa.hold_wns),
            (qor::TIMING_TNS.to_string(), report.ppa.tns),
            (qor::TIMING_WNS.to_string(), report.ppa.wns),
        ];
    }
    entry
}

/// Builds the ledger entry for an interrupted run. No QoR landed, so the
/// entry records the interruption label, the stage it died in and the
/// elapsed wall; the whole wall sits in the `other` row to preserve the
/// partition invariant.
fn ledger_entry_for_interrupt(
    interrupted: &InterruptedFlow,
    fingerprint: u64,
    design: &str,
    options: &FlowOptions,
    resumed: bool,
) -> cp_trace::LedgerEntry {
    let wall_ns = (interrupted.interrupt.elapsed_s.max(0.0) * 1e9).round() as u64;
    let mut entry = cp_trace::LedgerEntry::new(fingerprint, design, "flow")
        .with_status(&interrupted.interrupt.status_label())
        .with_threads(cp_parallel::current_threads() as u32)
        .with_resumed(resumed)
        .with_options(&options_summary(options));
    entry.root_wall_ns = wall_ns;
    entry.stages = vec![
        (interrupted.stage.to_string(), 0),
        ("other".to_string(), wall_ns as i64),
    ];
    entry
}

/// Per-run execution context threaded through the flow body: the run's
/// interruption control, the checkpoint sink and the checkpoint being
/// resumed from. The plain entry points run with [`ExecContext::passive`],
/// whose unlimited control makes every check a cheap no-op.
struct ExecContext {
    control: RunControl,
    checkpoint_path: Option<PathBuf>,
    fingerprint: u64,
    resume: Option<Checkpoint>,
}

impl ExecContext {
    fn passive() -> Self {
        Self {
            control: RunControl::unlimited(),
            checkpoint_path: None,
            fingerprint: 0,
            resume: None,
        }
    }

    /// Stage-boundary interruption check; on interruption records the
    /// recovery event and builds the typed flow error carrying everything
    /// collected so far.
    fn check(
        &self,
        site: &'static str,
        stage: &'static str,
        diagnostics: &mut FlowDiagnostics,
    ) -> Result<(), FlowError> {
        self.control
            .check(site)
            .map_err(|interrupt| self.interrupt_error(interrupt, stage, diagnostics, None))
    }

    fn interrupt_error(
        &self,
        interrupt: Interrupt,
        stage: &'static str,
        diagnostics: &mut FlowDiagnostics,
        best: Option<BestSnapshot>,
    ) -> FlowError {
        match interrupt.kind {
            InterruptKind::Cancelled => diagnostics.record(RecoveryEvent::Cancelled {
                site: interrupt.site,
            }),
            InterruptKind::DeadlineExceeded => {
                diagnostics.record(RecoveryEvent::DeadlineExceeded {
                    site: interrupt.site,
                });
            }
            InterruptKind::BudgetExceeded => {}
        }
        FlowError::from_interrupted(InterruptedFlow {
            interrupt,
            stage,
            diagnostics: diagnostics.clone(),
            best,
            checkpoint: self.checkpoint_path.clone(),
        })
    }

    /// Routes a placer failure: an interruption becomes the flow-level
    /// interrupt (keeping the placer's best-so-far snapshot); anything
    /// else stays a placement error.
    fn place_error(
        &self,
        error: PlaceError,
        stage: &'static str,
        diagnostics: &mut FlowDiagnostics,
    ) -> FlowError {
        match error {
            PlaceError::Interrupted {
                interrupt, best, ..
            } => self.interrupt_error(interrupt, stage, diagnostics, best),
            other => FlowError::Place(other),
        }
    }

    /// Routes a parallel-region failure: a contained worker panic becomes
    /// [`FlowError::WorkerPanic`], an interruption the flow-level
    /// interrupt.
    fn region_error(
        &self,
        error: RegionError,
        stage: &'static str,
        diagnostics: &mut FlowDiagnostics,
    ) -> FlowError {
        match error {
            RegionError::Panicked { message } => FlowError::WorkerPanic { stage, message },
            RegionError::Interrupted(interrupt) => {
                self.interrupt_error(interrupt, stage, diagnostics, None)
            }
        }
    }

    /// Persists the checkpoint draft (when checkpointing is on) and
    /// records the write. A failed write is reported as telemetry but
    /// never fails the flow — the run's result outranks its checkpoint.
    fn save_draft(&self, draft: &mut Option<Checkpoint>, diagnostics: &mut FlowDiagnostics) {
        let (Some(path), Some(cp)) = (self.checkpoint_path.as_ref(), draft.as_mut()) else {
            return;
        };
        cp.events.clone_from(&diagnostics.events);
        cp.dropped = diagnostics.dropped;
        match cp.save(path) {
            Ok(()) => diagnostics.record(RecoveryEvent::CheckpointWritten { stage: cp.stage }),
            Err(_reason) => cp_trace::instant(
                "recovery.checkpoint_failed",
                &[("stage", ArgValue::S(cp.stage))],
            ),
        }
    }
}

/// Extracts the interruption from a per-cluster shape-search failure, if
/// it was one; a genuine evaluation failure returns `None` and falls back
/// to the uniform shape like any other V-P&R failure.
fn shape_interrupt(error: &FlowError) -> Option<Interrupt> {
    match error {
        FlowError::Place(PlaceError::Interrupted { interrupt, .. }) => Some(interrupt.clone()),
        other => other.interrupted().map(|i| i.interrupt.clone()),
    }
}

/// The clustered-flow body, running under an already-open root span (the
/// clustering stage may have executed inside it, as in [`run_flow`]).
/// Consumes `root` at the end to capture the run's trace subtree.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn flow_with_assignment_traced(
    netlist: &Netlist,
    constraints: &Constraints,
    assignment: &[u32],
    clustering_runtime: f64,
    options: &FlowOptions,
    cache: &mut SubnetlistCache,
    root: SpanGuard,
    exec: &mut ExecContext,
) -> Result<FlowReport, FlowError> {
    if assignment.len() != netlist.cell_count() {
        return Err(FlowError::Validation(
            ValidationError::AssignmentLengthMismatch {
                assignment: assignment.len(),
                cells: netlist.cell_count(),
            },
        ));
    }
    let fp = validated_floorplan(netlist, constraints, options)?;
    let mut diagnostics = FlowDiagnostics::with_limit(options.diagnostics_limit);
    let resume = exec.resume.take();
    if let Some(cp) = &resume {
        diagnostics.restore(cp.events.clone(), cp.dropped);
        diagnostics.record(RecoveryEvent::Resumed { stage: cp.stage });
    }
    // The progressive checkpoint draft, rewritten after each completed
    // stage (only when a checkpoint path is configured). A resumed run
    // continues from the loaded checkpoint so earlier stages' state stays
    // in the file.
    let mut draft: Option<Checkpoint> = exec.checkpoint_path.as_ref().map(|_| match &resume {
        Some(cp) => cp.clone(),
        None => {
            Checkpoint::after_clustering(exec.fingerprint, assignment.to_vec(), clustering_runtime)
        }
    });
    if resume.is_none() {
        exec.save_draft(&mut draft, &mut diagnostics);
    }
    let mut timings = StageTimings::new();
    let t0 = Instant::now();

    // Line 10: clustered netlist; lines 12-13: cluster shapes. Clusters
    // are independent V-P&R problems, so the V-P&R modes fan the
    // per-cluster work out in parallel and apply the collected shapes
    // sequentially in cluster order — diagnostics and shape assignment
    // match the serial loop exactly. Sub-netlists come from the shared
    // cache (extraction is sequential: the cache is `&mut`), so repeated
    // runs over the same assignment induce each cluster once.
    exec.check(sites::FLOW_SHAPING, stages::SHAPING, &mut diagnostics)?;
    let (hits0, misses0) = (cache.hits(), cache.misses());
    let mut clustered = ClusteredNetlist::from_assignment(netlist, assignment);
    let mut shaped: Vec<u32> = Vec::new();
    let mut shaping = ShapingStats::default();
    if let Some(state) = resume.as_ref().and_then(|r| r.shaping.as_ref()) {
        for &(c, shape) in &state.shapes {
            clustered.set_shape(c, shape);
        }
        shaped.clone_from(&state.shaped);
        shaping = state.stats;
    } else {
        let t_shape = Instant::now();
        let s_shape = cp_trace::span(stages::SHAPING);
        let shapeable = clustered.shapeable_clusters(options.vpr_min_instances);
        match &options.shape_mode {
            ShapeMode::Uniform => {}
            ShapeMode::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let cands = ClusterShape::candidates();
                for &c in &shapeable {
                    clustered.set_shape(c, cands[rng.random_range(0..cands.len())]);
                    shaped.push(c);
                }
            }
            mode @ (ShapeMode::Vpr | ShapeMode::VprMl(_) | ShapeMode::Hybrid { .. }) => {
                let subs: Vec<Option<std::sync::Arc<Netlist>>> = shapeable
                    .iter()
                    .map(|&c| cache.get_or_extract(netlist, clustered.cells(c)).ok())
                    .collect();
                // Clusters whose extraction failed fall back to the uniform
                // shape below; the evaluators only see the ones that induced.
                let present: Vec<&Netlist> = subs.iter().flatten().map(|a| a.as_ref()).collect();
                let present_ids: Vec<u32> = shapeable
                    .iter()
                    .zip(&subs)
                    .filter(|(_, sub)| sub.is_some())
                    .map(|(&c, _)| c)
                    .collect();
                let candidate_count = ClusterShape::candidates().len();
                let picked: Vec<Option<ClusterShape>> = match mode {
                    ShapeMode::Vpr => {
                        let idx: Vec<usize> = (0..present.len()).collect();
                        let results = cp_parallel::try_par_map(&idx, 1, &exec.control, |&i| {
                            let _span = cp_trace::span_with(
                                stages::SPAN_VPR_CLUSTER,
                                &[
                                    ("cluster", ArgValue::U(present_ids[i] as u64)),
                                    ("ranker", ArgValue::S("exact")),
                                ],
                            );
                            best_shape_with_control(present[i], &options.vpr, Some(&exec.control))
                                .map(|(shape, _)| shape)
                        })
                        .map_err(|e| exec.region_error(e, stages::SHAPING, &mut diagnostics))?;
                        let mut shapes = Vec::with_capacity(results.len());
                        for r in results {
                            match r {
                                Ok(shape) => shapes.push(Some(shape)),
                                Err(e) => match shape_interrupt(&e) {
                                    Some(interrupt) => {
                                        return Err(exec.interrupt_error(
                                            interrupt,
                                            stages::SHAPING,
                                            &mut diagnostics,
                                            None,
                                        ))
                                    }
                                    None => shapes.push(None),
                                },
                            }
                        }
                        shaping.exact_evals += shapes.iter().flatten().count() * candidate_count;
                        shapes
                    }
                    ShapeMode::VprMl(selector) => {
                        if !present.is_empty() {
                            shaping.surrogate_batches += 1;
                            shaping.surrogate_samples += present.len() * candidate_count;
                        }
                        let picks = selector.select_shapes_batched(&present);
                        if cp_trace::enabled() {
                            // The batch scores all clusters in one forward pass,
                            // so per-cluster attribution is an instant, not a span.
                            for &c in &present_ids {
                                cp_trace::instant(
                                    stages::SPAN_VPR_CLUSTER,
                                    &[
                                        ("cluster", ArgValue::U(c as u64)),
                                        ("ranker", ArgValue::S("surrogate")),
                                    ],
                                );
                            }
                        }
                        picks.into_iter().map(Some).collect()
                    }
                    ShapeMode::Hybrid { selector, top_k } => {
                        let surrogate: Option<Vec<Vec<f64>>> = selector.as_ref().map(|sel| {
                            if !present.is_empty() {
                                shaping.surrogate_batches += 1;
                                shaping.surrogate_samples += present.len() * candidate_count;
                            }
                            sel.predicted_candidate_costs(&present)
                        });
                        let ranker = if surrogate.is_some() {
                            "surrogate"
                        } else {
                            "proxy"
                        };
                        let idx: Vec<usize> = (0..present.len()).collect();
                        let results = cp_parallel::try_par_map(&idx, 1, &exec.control, |&i| {
                            let _span = cp_trace::span_with(
                                stages::SPAN_VPR_CLUSTER,
                                &[
                                    ("cluster", ArgValue::U(present_ids[i] as u64)),
                                    ("ranker", ArgValue::S(ranker)),
                                ],
                            );
                            let costs = surrogate.as_ref().map(|m| m[i].as_slice());
                            best_shape_hybrid_with_control(
                                present[i],
                                &options.vpr,
                                *top_k,
                                costs,
                                Some(&exec.control),
                            )
                        })
                        .map_err(|e| exec.region_error(e, stages::SHAPING, &mut diagnostics))?;
                        let mut shapes = Vec::with_capacity(results.len());
                        for r in results {
                            match r {
                                Ok((shape, _, stats)) => {
                                    shaping.absorb(&stats);
                                    shapes.push(Some(shape));
                                }
                                Err(e) => match shape_interrupt(&e) {
                                    Some(interrupt) => {
                                        return Err(exec.interrupt_error(
                                            interrupt,
                                            stages::SHAPING,
                                            &mut diagnostics,
                                            None,
                                        ))
                                    }
                                    None => shapes.push(None),
                                },
                            }
                        }
                        shapes
                    }
                    _ => unreachable!("outer match binds only V-P&R modes"),
                };
                let mut picked = picked.into_iter();
                for (&c, sub) in shapeable.iter().zip(&subs) {
                    let shape = match sub {
                        Some(_) => picked.next().flatten(),
                        None => None,
                    };
                    match shape {
                        Some(shape) => clustered.set_shape(c, shape),
                        None => diagnostics.record(RecoveryEvent::ShapeFallback { cluster: c }),
                    }
                    shaped.push(c);
                }
            }
        }
        shaping.clusters_shaped = shaped.len();
        shaping.subnetlist_cache_hits = cache.hits() - hits0;
        shaping.subnetlist_cache_misses = cache.misses() - misses0;
        drop(s_shape);
        timings.record(stages::SHAPING, t_shape);
        if let Some(cp) = &mut draft {
            cp.stage = stages::SHAPING;
            cp.shaping = Some(ShapingState {
                shapes: shaped.iter().map(|&c| (c, clustered.shape(c))).collect(),
                shaped: shaped.clone(),
                stats: shaping,
            });
        }
        exec.save_draft(&mut draft, &mut diagnostics);
    }
    qor::record_shaping(clustered.cluster_count(), &shaping);
    qor::record_heap();

    // Lines 15-25: seeded placement.
    if options.tool == Tool::OpenRoadLike {
        clustered.scale_io_net_weights(options.io_weight);
    }
    exec.check(
        sites::FLOW_CLUSTER_PLACEMENT,
        stages::CLUSTER_PLACEMENT,
        &mut diagnostics,
    )?;
    let cluster_problem = PlacementProblem::from_clustered(&clustered, &fp);
    let cluster_positions: Vec<(f64, f64)> =
        if let Some(state) = resume.as_ref().and_then(|r| r.cluster_placement.as_ref()) {
            state.positions.clone()
        } else {
            let t_cluster = Instant::now();
            let s_cluster = cp_trace::span(stages::CLUSTER_PLACEMENT);
            let fields_scope = cp_trace::fields::scope(stages::CLUSTER_PLACEMENT);
            let placement = GlobalPlacer::new(options.placer)
                .place_with_control(&cluster_problem, &exec.control)
                .map_err(|e| exec.place_error(e, stages::CLUSTER_PLACEMENT, &mut diagnostics))?;
            drop(fields_scope);
            if placement.diverged {
                diagnostics.record(RecoveryEvent::PlacerReverted {
                    stage: stages::CLUSTER_PLACEMENT,
                });
            }
            drop(s_cluster);
            timings.record(stages::CLUSTER_PLACEMENT, t_cluster);
            if let Some(cp) = &mut draft {
                cp.stage = stages::CLUSTER_PLACEMENT;
                cp.cluster_placement = Some(PlacementState {
                    positions: placement.positions.clone(),
                    diverged: placement.diverged,
                });
            }
            exec.save_draft(&mut draft, &mut diagnostics);
            placement.positions
        };
    qor::record_placement_hpwl(
        qor::CLUSTER_PLACEMENT_HPWL,
        &cluster_problem,
        &cluster_positions,
    );

    exec.check(
        sites::FLOW_FLAT_PLACEMENT,
        stages::FLAT_PLACEMENT,
        &mut diagnostics,
    )?;
    // Line 20: region constraints are removed before legalization/routing,
    // so downstream stages always work on the free problem.
    let free_problem = PlacementProblem::from_netlist(netlist, &fp);
    let mut positions: Vec<(f64, f64)> =
        if let Some(state) = resume.as_ref().and_then(|r| r.flat_placement.as_ref()) {
            state.positions.clone()
        } else {
            // Instances at their cluster centers, with a deterministic
            // in-cluster jitter so the B2B linearization is non-degenerate.
            let mut seeds = vec![(0.0, 0.0); netlist.cell_count()];
            for (i, &c) in clustered.cluster_of_cell().iter().enumerate() {
                let center = cluster_positions[c as usize];
                let (w, h) = clustered.dims(c);
                let golden = (i as f64 * 0.618_033_988_749_895).fract() - 0.5;
                let golden2 = (i as f64 * 0.381_966_011_250_105).fract() - 0.5;
                seeds[i] = fp.core.clamp(center.0 + golden * w, center.1 + golden2 * h);
            }

            let mut flat_problem = PlacementProblem::from_netlist(netlist, &fp).with_seeds(seeds);
            if options.timing_driven {
                flat_problem.net_weights = timing_net_weights(netlist, constraints)?;
            }
            if options.tool == Tool::InnovusLike {
                // Line 18: region constraints for shaped clusters.
                for &c in &shaped {
                    let (w, h) = clustered.dims(c);
                    let (cx, cy) = cluster_positions[c as usize];
                    // Regions get 25% slack over the macro footprint so
                    // clusters whose seed placements overlap slightly
                    // still have room.
                    let (hw, hh) = (w * 0.625, h * 0.625);
                    let region = Rect {
                        llx: (cx - hw).max(fp.core.llx),
                        lly: (cy - hh).max(fp.core.lly),
                        urx: (cx + hw).min(fp.core.urx),
                        ury: (cy + hh).min(fp.core.ury),
                    };
                    // A region clamped down to less than its cluster's
                    // cell area (or collapsed entirely) would wedge the
                    // spreader against an unsatisfiable constraint — drop
                    // it instead and let those cells place freely.
                    let member_area: f64 = clustered
                        .cells(c)
                        .iter()
                        .map(|&cell| flat_problem.movable[cell.index()].area())
                        .sum();
                    let feasible = region.width() > 0.0
                        && region.height() > 0.0
                        && region.width() * region.height() >= member_area;
                    if !feasible {
                        diagnostics.record(RecoveryEvent::RegionDropped { cluster: c });
                        continue;
                    }
                    for &cell in clustered.cells(c) {
                        flat_problem.set_region(cell.index(), region);
                    }
                }
            }
            let t_flat = Instant::now();
            let s_flat = cp_trace::span(stages::FLAT_PLACEMENT);
            let fields_scope = cp_trace::fields::scope(stages::FLAT_PLACEMENT);
            let result = GlobalPlacer::new(options.placer)
                .place_with_control(&flat_problem, &exec.control)
                .map_err(|e| exec.place_error(e, stages::FLAT_PLACEMENT, &mut diagnostics))?;
            drop(fields_scope);
            if result.diverged {
                diagnostics.record(RecoveryEvent::PlacerReverted {
                    stage: stages::FLAT_PLACEMENT,
                });
            }
            let diverged = result.diverged;
            let mut positions = result.positions;
            if options.congestion_driven {
                positions = congestion_driven_refine(
                    netlist,
                    &fp,
                    &free_problem,
                    positions,
                    options,
                    &mut diagnostics,
                )?;
            }
            drop(s_flat);
            timings.record(stages::FLAT_PLACEMENT, t_flat);
            if let Some(cp) = &mut draft {
                cp.stage = stages::FLAT_PLACEMENT;
                cp.flat_placement = Some(PlacementState {
                    positions: positions.clone(),
                    diverged,
                });
            }
            exec.save_draft(&mut draft, &mut diagnostics);
            positions
        };
    qor::record_placement_hpwl(qor::FLAT_PLACEMENT_HPWL, &free_problem, &positions);
    qor::record_heap();
    exec.check(
        sites::FLOW_LEGALIZE,
        stages::LEGALIZE_REFINE,
        &mut diagnostics,
    )?;
    let t_leg = Instant::now();
    let s_leg = cp_trace::span(stages::LEGALIZE_REFINE);
    legalize(&free_problem, &fp, &mut positions)?;
    refine(
        &free_problem,
        &fp,
        &mut positions,
        &DetailedOptions::default(),
    );
    drop(s_leg);
    timings.record(stages::LEGALIZE_REFINE, t_leg);
    let placement_runtime = t0.elapsed().as_secs_f64();
    let hpwl = raw_hpwl(&free_problem, &positions);
    cp_trace::gauge_set(qor::LEGALIZED_HPWL, hpwl);
    qor::record_heap();
    exec.check(sites::FLOW_PPA, stages::PPA, &mut diagnostics)?;
    let t_ppa = Instant::now();
    let s_ppa = cp_trace::span(stages::PPA);
    let ppa = evaluate_ppa(netlist, constraints, &positions, &fp, options)?;
    drop(s_ppa);
    timings.record(stages::PPA, t_ppa);
    let trace = cp_trace::take_report(root);
    timings.finalize(trace.as_ref(), clustering_runtime);
    Ok(FlowReport {
        hpwl,
        cluster_count: clustered.cluster_count(),
        clustering_runtime,
        placement_runtime,
        ppa,
        diagnostics,
        timings,
        shaping,
        trace,
    })
}

/// Timing-criticality net weights for the flat hypergraph
/// (`w_e = 1 + 2·t_e`, `t_e` from the top critical paths).
///
/// # Errors
///
/// [`TimingError::CombinationalCycle`] when the netlist cannot be
/// levelized for STA.
pub fn timing_net_weights(
    netlist: &Netlist,
    constraints: &Constraints,
) -> Result<Vec<f64>, TimingError> {
    let (hg, map) = netlist.to_hypergraph_with_map();
    let sta = Sta::new(netlist, constraints)?;
    let report = sta.run(&cp_timing::wire::WireModel::Estimate);
    let paths = sta.extract_paths(&report, 20_000);
    let act = propagate_activity(netlist, constraints);
    let costs = build_edge_costs(
        netlist,
        &map,
        hg.edge_count(),
        &paths,
        constraints.clock_period,
        &act,
        2.0,
    );
    Ok(costs.timing.iter().map(|&t| 1.0 + 2.0 * t).collect())
}

/// One congestion-driven refinement pass (RePlAce-style routability
/// iteration): route the current placement, inflate the footprint of
/// cells sitting in overflowed GCells (up to 2×), and re-place
/// incrementally from the current positions so spreading relieves the
/// hotspots. A divergence revert during the incremental re-place is
/// recorded on `diagnostics`.
///
/// # Errors
///
/// [`FlowError::Route`] when the trial route rejects the positions;
/// [`FlowError::Place`] when the incremental re-place fails.
pub fn congestion_driven_refine(
    netlist: &Netlist,
    fp: &Floorplan,
    problem: &PlacementProblem,
    positions: Vec<(f64, f64)>,
    options: &FlowOptions,
    diagnostics: &mut FlowDiagnostics,
) -> Result<Vec<(f64, f64)>, FlowError> {
    let mut all = positions.clone();
    all.extend_from_slice(&fp.port_positions);
    let routed = route_placed_netlist(netlist, &all, fp, &options.router)?;
    let cong = routed.congestion.gcell_congestion();
    let (nx, gsize) = (routed.congestion.nx(), routed.congestion.gcell_size());
    if routed.congestion.max_utilization() <= 1.0 {
        return Ok(positions); // nothing overflows
    }
    let mut inflated = problem.clone();
    let mut touched = 0usize;
    for (i, &(x, y)) in positions.iter().enumerate() {
        let gi = (((x - fp.die.llx) / gsize) as usize).min(nx - 1);
        let gj = (((y - fp.die.lly) / gsize) as usize).min(cong.len() / nx - 1);
        let c = cong[gj * nx + gi];
        if c > 1.0 {
            let f = c.min(2.0);
            inflated.movable[i].width = problem.movable[i].width * f;
        }
    }
    for (a, b) in inflated.movable.iter().zip(problem.movable.iter()) {
        if a.width != b.width {
            touched += 1;
        }
    }
    if touched == 0 {
        return Ok(positions);
    }
    let replaced = GlobalPlacer::new(PlacerOptions {
        incremental_iterations: 4,
        ..options.placer
    })
    .place(&inflated.with_seeds(positions))?;
    if replaced.diverged {
        diagnostics.record(RecoveryEvent::PlacerReverted {
            stage: stages::CONGESTION_REFINEMENT,
        });
    }
    Ok(replaced.positions)
}

/// Post-placement evaluation (Algorithm 1, lines 27-30): CTS, global
/// routing, post-route STA and power.
///
/// # Errors
///
/// [`FlowError::Place`] when CTS cannot run (no clock buffer master, bad
/// positions), [`FlowError::Route`] on non-finite pin positions,
/// [`FlowError::Timing`] on a combinational cycle.
pub fn evaluate_ppa(
    netlist: &Netlist,
    constraints: &Constraints,
    cell_positions: &[(f64, f64)],
    floorplan: &Floorplan,
    options: &FlowOptions,
) -> Result<PpaReport, FlowError> {
    let mut positions = cell_positions.to_vec();
    positions.extend_from_slice(&floorplan.port_positions);
    let tree = synthesize_clock_tree(netlist, &positions, &options.cts)?;
    let routed = route_placed_netlist(netlist, &positions, floorplan, &options.router)?;
    let detour = routed.detour_factor();
    let wire = WireModel::Routed(&positions, detour);
    let sta = Sta::new(netlist, constraints)?;
    let timing = sta.run_with_clock(&wire, Some(&tree.arrival));
    let activity = propagate_activity(netlist, constraints);
    let power = power_report(netlist, constraints, &activity, &wire);
    cp_trace::gauge_set(
        qor::ROUTE_MAX_UTILIZATION,
        routed.congestion.max_utilization(),
    );
    cp_trace::gauge_set(
        qor::ROUTE_OVERFLOW_EDGES,
        routed.congestion.overflow_edges() as f64,
    );
    // Field frame: the router's per-GCell congestion map (Eq. 5). The
    // scope opens here rather than in the callers because evaluate_ppa
    // *is* the PPA stage wherever it runs; one relaxed load when off.
    if cp_trace::fields::enabled() {
        let _fields_scope = cp_trace::fields::scope(stages::PPA);
        let c = &routed.congestion;
        cp_trace::fields::record_with("route.congestion", 0, c.nx(), c.ny(), || {
            c.gcell_congestion().iter().map(|&v| v as f32).collect()
        });
    }
    let report = PpaReport {
        rwl: routed.wirelength + tree.wirelength,
        wns: timing.wns,
        tns: timing.tns,
        power: power.total(),
        skew: tree.skew,
        hold_wns: timing.hold_wns,
    };
    qor::record_ppa(&report);
    qor::record_heap();
    Ok(report)
}

/// Seed-position helper exposed for examples: each cell at its cluster's
/// placed center.
pub fn cluster_center_seeds(
    clustered: &ClusteredNetlist,
    cluster_positions: &[(f64, f64)],
) -> Vec<(f64, f64)> {
    clustered
        .cluster_of_cell()
        .iter()
        .map(|&c| cluster_positions[c as usize])
        .collect()
}

/// Looks up the member cells of every cluster (inverse of the assignment).
pub fn cluster_members(assignment: &[u32], cluster_count: usize) -> Vec<Vec<CellId>> {
    let mut out = vec![Vec::new(); cluster_count];
    for (i, &c) in assignment.iter().enumerate() {
        out[c as usize].push(CellId(i as u32));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn setup(scale: f64) -> (Netlist, Constraints) {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(scale)
            .seed(21)
            .generate_with_constraints()
    }

    #[test]
    fn default_flow_produces_ppa() {
        let (n, c) = setup(0.01);
        let r = run_default_flow(&n, &c, &FlowOptions::fast()).expect("flow runs");
        assert!(r.hpwl > 0.0);
        assert!(r.ppa.rwl > 0.0);
        assert!(r.ppa.power > 0.0);
        assert!(r.ppa.tns <= 0.0);
        assert_eq!(r.cluster_count, 0);
        assert!(r.diagnostics.is_clean());
    }

    #[test]
    fn clustered_flow_openroad_mode() {
        let (n, c) = setup(0.01);
        let r = run_flow(&n, &c, &FlowOptions::fast().tool(Tool::OpenRoadLike)).expect("flow runs");
        assert!(r.cluster_count > 1);
        assert!(r.hpwl > 0.0);
        assert!(r.ppa.rwl > 0.0);
        assert!(r.clustering_runtime > 0.0);
    }

    #[test]
    fn clustered_flow_innovus_mode_with_vpr_shapes() {
        let (n, c) = setup(0.01);
        let opts = FlowOptions::fast()
            .tool(Tool::InnovusLike)
            .shape_mode(ShapeMode::Vpr);
        let r = run_flow(&n, &c, &opts).expect("flow runs");
        assert!(r.cluster_count > 1);
        assert!(r.ppa.rwl > 0.0);
    }

    #[test]
    fn seeded_hpwl_is_comparable_to_flat() {
        let (n, c) = setup(0.02);
        let flat = run_default_flow(&n, &c, &FlowOptions::fast()).expect("flow runs");
        let ours = run_flow(&n, &c, &FlowOptions::fast()).expect("flow runs");
        let ratio = ours.hpwl / flat.hpwl;
        assert!(
            (0.7..=1.4).contains(&ratio),
            "clustered HPWL ratio {ratio} out of band (flat {}, ours {})",
            flat.hpwl,
            ours.hpwl
        );
    }

    #[test]
    fn random_shapes_differ_from_uniform() {
        let (n, c) = setup(0.01);
        let uni = run_flow(&n, &c, &FlowOptions::fast()).expect("flow runs");
        let rnd = run_flow(
            &n,
            &c,
            &FlowOptions::fast().shape_mode(ShapeMode::Random(3)),
        )
        .expect("flow runs");
        assert_ne!(uni.hpwl, rnd.hpwl);
    }

    #[test]
    fn flow_is_deterministic() {
        let (n, c) = setup(0.01);
        let a = run_flow(&n, &c, &FlowOptions::fast()).expect("flow runs");
        let b = run_flow(&n, &c, &FlowOptions::fast()).expect("flow runs");
        assert_eq!(a.hpwl, b.hpwl);
        assert_eq!(a.ppa, b.ppa);
    }

    #[test]
    fn injected_divergence_recovers_with_diagnostics() {
        let (n, c) = setup(0.01);
        let mut opts = FlowOptions::fast();
        opts.placer.fault_nan_at_iteration = Some(3);
        let r = run_default_flow(&n, &c, &opts).expect("flow recovers from divergence");
        assert!(r.hpwl > 0.0 && r.hpwl.is_finite());
        assert!(r.ppa.rwl.is_finite());
        assert!(
            r.diagnostics
                .events
                .iter()
                .any(|e| matches!(e, RecoveryEvent::PlacerReverted { .. })),
            "revert must be reported: {:?}",
            r.diagnostics
        );
    }

    #[test]
    fn divergence_without_revert_is_a_typed_error() {
        let (n, c) = setup(0.01);
        let mut opts = FlowOptions::fast();
        opts.placer.fault_nan_at_iteration = Some(3);
        opts.placer.revert_if_diverge = false;
        let err = run_default_flow(&n, &c, &opts).expect_err("must fail fast");
        // Injected NaN trips the solver finiteness guard (`NonFinite`); a
        // slow HPWL blow-up would surface as `Diverged`. Either way the
        // failure is typed, not a panic.
        assert!(matches!(
            err,
            FlowError::Place(
                cp_place::PlaceError::NonFinite { .. } | cp_place::PlaceError::Diverged { .. }
            )
        ));
    }

    #[test]
    fn bad_utilization_is_rejected_up_front() {
        let (n, c) = setup(0.01);
        let opts = FlowOptions {
            utilization: 1.5,
            ..FlowOptions::fast()
        };
        let err = run_default_flow(&n, &c, &opts).expect_err("must reject");
        assert!(matches!(
            err,
            FlowError::Validation(ValidationError::UtilizationOutOfRange { .. })
        ));
    }

    #[test]
    fn short_assignment_is_rejected() {
        let (n, c) = setup(0.01);
        let err = run_flow_with_assignment(&n, &c, &[0, 1, 0], 0.0, &FlowOptions::fast())
            .expect_err("must reject");
        assert!(matches!(
            err,
            FlowError::Validation(ValidationError::AssignmentLengthMismatch { assignment: 3, .. })
        ));
    }
}

#[cfg(test)]
mod helper_tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn cluster_members_inverts_assignment() {
        let assignment = vec![1, 0, 1, 2, 0];
        let members = cluster_members(&assignment, 3);
        assert_eq!(members[0], vec![CellId(1), CellId(4)]);
        assert_eq!(members[1], vec![CellId(0), CellId(2)]);
        assert_eq!(members[2], vec![CellId(3)]);
    }

    #[test]
    fn cluster_center_seeds_follow_positions() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(2)
            .generate();
        let labels: Vec<u32> = (0..n.cell_count()).map(|i| (i % 2) as u32).collect();
        let clustered = ClusteredNetlist::from_assignment(&n, &labels);
        let centers = vec![(1.0, 2.0), (3.0, 4.0)];
        let seeds = cluster_center_seeds(&clustered, &centers);
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(s, centers[clustered.cluster_of_cell()[i] as usize]);
        }
    }

    #[test]
    fn timing_driven_weights_change_the_placement() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(34)
            .generate_with_constraints();
        let base = FlowOptions::fast();
        let mut td = FlowOptions::fast();
        td.timing_driven = true;
        let plain = run_default_flow(&n, &c, &base).expect("flow runs");
        let driven = run_default_flow(&n, &c, &td).expect("flow runs");
        assert_ne!(plain.hpwl, driven.hpwl);
        // Weights are ≥ 1 and bounded by 1 + 2·max(t_e) = 3.
        let w = timing_net_weights(&n, &c).expect("acyclic netlist");
        assert!(w.iter().all(|&x| (1.0..=3.0 + 1e-9).contains(&x)));
        assert!(w.iter().any(|&x| x > 1.0));
    }

    #[test]
    fn blockages_flow_end_to_end() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(33)
            .generate_with_constraints();
        let mut opts = FlowOptions::fast();
        opts.macro_blockages = (2, 0.2);
        let flat = run_default_flow(&n, &c, &opts).expect("flow runs");
        let ours = run_flow(&n, &c, &opts).expect("flow runs");
        assert!(flat.ppa.rwl > 0.0);
        assert!(ours.ppa.rwl > 0.0);
        assert!(ours.cluster_count > 1);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn setup(scale: f64) -> (Netlist, Constraints) {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(scale)
            .seed(21)
            .generate_with_constraints()
    }

    fn ckpt_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cp-flow-resilience-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn resilient_flow_without_limits_matches_plain_run() {
        let (n, c) = setup(0.01);
        let plain = run_flow(&n, &c, &FlowOptions::fast()).expect("flow runs");
        let res = run_flow_resilient(&n, &c, &FlowOptions::fast(), &ResilienceOptions::default())
            .expect("flow runs");
        assert!(
            plain.deterministic_eq(&res),
            "passive control must be a no-op"
        );
    }

    #[test]
    fn cancellation_surfaces_as_typed_error_with_diagnostics() {
        let (n, c) = setup(0.01);
        let resilience = ResilienceOptions {
            control: RunControl::unlimited().cancel_after_checks(3),
            ..Default::default()
        };
        let err =
            run_flow_resilient(&n, &c, &FlowOptions::fast(), &resilience).expect_err("must cancel");
        assert!(matches!(err, FlowError::Cancelled(_)), "got {err:?}");
        let flow = err.interrupted().expect("interrupt carries state");
        assert_eq!(flow.interrupt.kind, InterruptKind::Cancelled);
        assert!(flow
            .diagnostics
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Cancelled { .. })));
    }

    #[test]
    fn expired_deadline_interrupts_before_any_stage() {
        let (n, c) = setup(0.01);
        let resilience = ResilienceOptions {
            control: RunControl::unlimited().with_deadline(std::time::Duration::ZERO),
            ..Default::default()
        };
        let err = run_flow_resilient(&n, &c, &FlowOptions::fast(), &resilience)
            .expect_err("must time out");
        assert!(matches!(err, FlowError::DeadlineExceeded(_)), "got {err:?}");
        let flow = err.interrupted().expect("interrupt carries state");
        assert_eq!(flow.stage, stages::CLUSTERING, "nothing ran yet");
    }

    #[test]
    fn checkpoint_resume_is_bitwise_identical() {
        let (n, c) = setup(0.01);
        let opts = FlowOptions::fast();
        let path = ckpt_path("full-run.json");
        let full = run_flow_resilient(
            &n,
            &c,
            &opts,
            &ResilienceOptions {
                checkpoint: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect("flow runs");
        assert!(full
            .diagnostics
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::CheckpointWritten { .. })));
        // The file holds the flat-placement checkpoint; resuming replays
        // only legalization onward and must reproduce the report bitwise.
        let resumed = run_flow_resilient(
            &n,
            &c,
            &opts,
            &ResilienceOptions {
                resume_from: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect("flow resumes");
        assert!(
            full.deterministic_eq(&resumed),
            "resume must be bitwise: {} vs {}",
            full.hpwl,
            resumed.hpwl
        );
        assert!(resumed
            .diagnostics
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Resumed { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancelled_run_leaves_resumable_checkpoint() {
        let (n, c) = setup(0.01);
        let opts = FlowOptions::fast();
        let path = ckpt_path("cancelled-run.json");
        let err = run_flow_resilient(
            &n,
            &c,
            &opts,
            &ResilienceOptions {
                control: RunControl::unlimited().cancel_after_checks(3),
                checkpoint: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect_err("must cancel");
        let flow = err.interrupted().expect("interrupt carries state");
        assert_eq!(flow.checkpoint.as_deref(), Some(path.as_path()));
        let cp = Checkpoint::load(&path).expect("checkpoint is readable");
        assert_eq!(
            cp.stage,
            stages::SHAPING,
            "shaping completed before the cut"
        );
        // Resuming the interrupted run completes it and matches a clean
        // uninterrupted run bit for bit — no partially-mutated state leaks.
        let resumed = run_flow_resilient(
            &n,
            &c,
            &opts,
            &ResilienceOptions {
                resume_from: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect("flow resumes");
        let clean = run_flow(&n, &c, &opts).expect("flow runs");
        assert!(clean.deterministic_eq(&resumed));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_wrong_fingerprint_is_rejected() {
        let (n, c) = setup(0.01);
        let opts = FlowOptions::fast();
        let path = ckpt_path("fingerprint.json");
        run_flow_resilient(
            &n,
            &c,
            &opts,
            &ResilienceOptions {
                checkpoint: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect("flow runs");
        let mut other = FlowOptions::fast();
        other.placer.seed += 1;
        let err = run_flow_resilient(
            &n,
            &c,
            &other,
            &ResilienceOptions {
                resume_from: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect_err("must reject");
        assert!(matches!(err, FlowError::Checkpoint { .. }), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vpr_shaping_cancellation_interrupts_the_sweep() {
        let (n, c) = setup(0.01);
        let opts = FlowOptions::fast().shape_mode(ShapeMode::Vpr);
        // Checks 1-2 pass the flow-start and shaping boundaries; the
        // shaping fan-out then trips on an uncounted poll or a later
        // counted check, depending on scheduling — either way the run
        // must end in the typed cancellation, never a partial report.
        let resilience = ResilienceOptions {
            control: RunControl::unlimited().cancel_after_checks(3),
            ..Default::default()
        };
        let err = run_flow_resilient(&n, &c, &opts, &resilience).expect_err("must cancel");
        assert!(matches!(err, FlowError::Cancelled(_)), "got {err:?}");
    }
}

#[cfg(test)]
mod congestion_tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn congestion_driven_flow_runs_and_stays_sane() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Jpeg)
            .scale(0.005)
            .seed(55)
            .generate_with_constraints();
        let mut opts = FlowOptions::fast();
        opts.congestion_driven = true;
        let r = run_default_flow(&n, &c, &opts).expect("flow runs");
        assert!(r.hpwl > 0.0);
        assert!(r.ppa.rwl > 0.0);
    }

    #[test]
    fn refinement_is_identity_without_overflow() {
        // A tiny design at generous utilization never overflows.
        let (n, _) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.003)
            .seed(56)
            .generate_with_constraints();
        let opts = FlowOptions {
            utilization: 0.3,
            ..FlowOptions::fast()
        };
        let fp = Floorplan::for_netlist(&n, opts.utilization, opts.aspect_ratio);
        let problem = PlacementProblem::from_netlist(&n, &fp);
        let placed = GlobalPlacer::new(opts.placer)
            .place(&problem)
            .expect("well-formed problem places");
        let before = placed.positions.clone();
        let mut diag = FlowDiagnostics::default();
        let after = congestion_driven_refine(&n, &fp, &problem, placed.positions, &opts, &mut diag)
            .expect("refinement runs");
        assert_eq!(before, after, "no overflow ⇒ no movement");
        assert!(diag.is_clean());
    }
}
