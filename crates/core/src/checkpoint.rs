//! Stage-granular flow checkpoints.
//!
//! A checkpoint is a single progressive JSON file rewritten after each
//! completed pipeline stage (clustering → shaping → cluster placement →
//! flat placement). It captures exactly the state the remaining stages
//! consume — the cluster assignment, the chosen shapes, the placement
//! position vectors — so a resumed run recomputes nothing that already
//! completed and reproduces the original run's report **bitwise** (see
//! [`crate::flow::FlowReport::deterministic_eq`]).
//!
//! Bitwise fidelity hinges on two properties:
//!
//! - `f64` values are serialized with Rust's shortest round-trip
//!   formatting ([`cp_trace::json::fmt_f64`]), so every position and HPWL
//!   survives the JSON round trip bit-exactly.
//! - Everything downstream of the restored state is deterministic
//!   (including across thread counts, by the `cp-parallel` contract), so
//!   replaying the remaining stages from bit-identical inputs yields
//!   bit-identical outputs.
//!
//! Checkpoints are guarded by a FNV-1a **fingerprint** over the netlist
//! and flow options: resuming against a different design or configuration
//! is rejected with a typed [`FlowError::Checkpoint`](crate::error::FlowError)
//! instead of silently producing garbage. The on-disk format is validated
//! against `schemas/checkpoint.schema.json` (embedded at compile time) on
//! every load.

use crate::error::RecoveryEvent;
use crate::flow::{FlowOptions, ShapingStats};
use crate::stages;
use cp_netlist::netlist::Netlist;
use cp_netlist::ClusterShape;
use cp_trace::json::{self, Json};
use std::fmt::Write as _;
use std::path::Path;

/// On-disk format version; bumped on breaking layout changes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A placement stage's output: the position vector and whether the run
/// diverged and reverted.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementState {
    /// One `(x, y)` per object, bit-exact.
    pub positions: Vec<(f64, f64)>,
    /// Whether the placer reverted to its best snapshot.
    pub diverged: bool,
}

/// The shaping stage's output: the selected shape per shaped cluster plus
/// the stage's work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapingState {
    /// `(cluster, shape)` for clusters that got a non-default shape.
    pub shapes: Vec<(u32, ClusterShape)>,
    /// Every cluster that went through shape selection (including ones
    /// that fell back to the uniform default).
    pub shaped: Vec<u32>,
    /// The stage's counters, restored verbatim into the report.
    pub stats: ShapingStats,
}

/// A progressive stage checkpoint (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// FNV-1a fingerprint of the netlist + options (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Last *completed* stage (a [`stages`] constant).
    pub stage: &'static str,
    /// The clustering assignment (one cluster id per cell).
    pub assignment: Vec<u32>,
    /// Seconds the clustering stage took in the original run.
    pub clustering_runtime: f64,
    /// Recovery events collected up to (and including) `stage`.
    pub events: Vec<RecoveryEvent>,
    /// Recoveries dropped past the diagnostics cap.
    pub dropped: usize,
    /// Present once shaping completed.
    pub shaping: Option<ShapingState>,
    /// Present once cluster placement completed.
    pub cluster_placement: Option<PlacementState>,
    /// Present once flat placement (incl. congestion refinement)
    /// completed.
    pub flat_placement: Option<PlacementState>,
}

/// The embedded checkpoint schema, parsed.
fn schema() -> Json {
    // The schema is a compile-time constant known to parse.
    json::parse(include_str!("../../../schemas/checkpoint.schema.json")).unwrap_or(Json::Null)
}

/// FNV-1a over the netlist's structure (cell and net names, pin counts)
/// and the full flow configuration, so a checkpoint can only resume the
/// run that wrote it.
pub fn fingerprint(netlist: &Netlist, options: &FlowOptions) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(netlist.cell_count() as u64).to_le_bytes());
    eat(&(netlist.net_count() as u64).to_le_bytes());
    for cell in netlist.cells() {
        eat(cell.name.as_bytes());
        eat(&[0]);
    }
    for net in netlist.nets() {
        eat(net.name.as_bytes());
        eat(&(net.pin_count() as u64).to_le_bytes());
    }
    // The Debug form covers every option field (placer seeds, shape mode,
    // clustering knobs, …) with round-trip float formatting, so any
    // configuration change invalidates the checkpoint.
    eat(format!("{options:?}").as_bytes());
    h
}

impl Checkpoint {
    /// A fresh clustering-stage checkpoint.
    pub fn after_clustering(
        fingerprint: u64,
        assignment: Vec<u32>,
        clustering_runtime: f64,
    ) -> Self {
        Self {
            fingerprint,
            stage: stages::CLUSTERING,
            assignment,
            clustering_runtime,
            events: Vec::new(),
            dropped: 0,
            shaping: None,
            cluster_placement: None,
            flat_placement: None,
        }
    }

    /// Serializes to the schema-conformant JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"version\": {CHECKPOINT_VERSION},");
        let _ = writeln!(s, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);
        let _ = writeln!(s, "  \"stage\": \"{}\",", json::escape(self.stage));
        s.push_str("  \"clustering\": { \"assignment\": [");
        for (i, c) in self.assignment.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        let _ = writeln!(
            s,
            "], \"runtime\": {} }},",
            json::fmt_f64(self.clustering_runtime)
        );
        s.push_str("  \"diagnostics\": { \"events\": [");
        let mut first = true;
        for e in &self.events {
            let Some(obj) = event_to_json(e) else {
                continue;
            };
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&obj);
        }
        let _ = write!(s, "], \"dropped\": {} }}", self.dropped);
        if let Some(sh) = &self.shaping {
            s.push_str(",\n  \"shaping\": { \"shapes\": [");
            for (i, (c, shape)) in sh.shapes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"cluster\":{c},\"aspect_ratio\":{},\"utilization\":{}}}",
                    json::fmt_f64(shape.aspect_ratio),
                    json::fmt_f64(shape.utilization)
                );
            }
            s.push_str("], \"shaped\": [");
            for (i, c) in sh.shaped.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            let st = &sh.stats;
            let _ = write!(
                s,
                "], \"stats\": {{\"clusters_shaped\":{},\"exact_evals\":{},\
                 \"exact_evals_avoided\":{},\"proxy_evals\":{},\
                 \"surrogate_batches\":{},\"surrogate_samples\":{},\
                 \"warm_start_hits\":{},\"subnetlist_cache_hits\":{},\
                 \"subnetlist_cache_misses\":{}}} }}",
                st.clusters_shaped,
                st.exact_evals,
                st.exact_evals_avoided,
                st.proxy_evals,
                st.surrogate_batches,
                st.surrogate_samples,
                st.warm_start_hits,
                st.subnetlist_cache_hits,
                st.subnetlist_cache_misses
            );
        }
        if let Some(p) = &self.cluster_placement {
            s.push_str(",\n  \"cluster_placement\": ");
            placement_to_json(&mut s, p);
        }
        if let Some(p) = &self.flat_placement {
            s.push_str(",\n  \"flat_placement\": ");
            placement_to_json(&mut s, p);
        }
        s.push_str("\n}\n");
        s
    }

    /// Parses and schema-validates a checkpoint document.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the document is malformed, fails
    /// schema validation, or carries an unknown version or stage.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = json::parse(input).map_err(|e| format!("malformed JSON: {e}"))?;
        let errors = json::validate(&value, &schema());
        if !errors.is_empty() {
            return Err(format!("schema violations: {}", errors.join("; ")));
        }
        let version = get_u64(&value, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let fp_hex = value
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or("missing fingerprint")?;
        let fingerprint = u64::from_str_radix(fp_hex, 16)
            .map_err(|_| format!("fingerprint '{fp_hex}' is not hex"))?;
        let stage = stage_static(
            value
                .get("stage")
                .and_then(Json::as_str)
                .ok_or("missing stage")?,
        )?;
        let clustering = value.get("clustering").ok_or("missing clustering")?;
        let assignment = clustering
            .get("assignment")
            .and_then(Json::as_array)
            .ok_or("missing assignment")?
            .iter()
            .map(|j| j.as_f64().map(|f| f as u32).ok_or("non-numeric assignment"))
            .collect::<Result<Vec<u32>, _>>()?;
        let clustering_runtime = clustering
            .get("runtime")
            .and_then(Json::as_f64)
            .ok_or("missing clustering runtime")?;
        let diag = value.get("diagnostics").ok_or("missing diagnostics")?;
        let events = diag
            .get("events")
            .and_then(Json::as_array)
            .ok_or("missing events")?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let dropped = get_u64(diag, "dropped")? as usize;
        let shaping = match value.get("shaping") {
            Some(sh) => Some(shaping_from_json(sh)?),
            None => None,
        };
        let cluster_placement = match value.get("cluster_placement") {
            Some(p) => Some(placement_from_json(p)?),
            None => None,
        };
        let flat_placement = match value.get("flat_placement") {
            Some(p) => Some(placement_from_json(p)?),
            None => None,
        };
        Ok(Self {
            fingerprint,
            stage,
            assignment,
            clustering_runtime,
            events,
            dropped,
            shaping,
            cluster_placement,
            flat_placement,
        })
    }

    /// Writes the checkpoint atomically (temp file + rename), so an
    /// interrupted write never leaves a truncated checkpoint behind.
    ///
    /// # Errors
    ///
    /// The I/O failure, stringified.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
    }

    /// Loads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// See [`Self::from_json`]; additionally the I/O failure when the
    /// file cannot be read.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

fn placement_to_json(s: &mut String, p: &PlacementState) {
    s.push_str("{ \"positions\": [");
    for (i, &(x, y)) in p.positions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},{}]", json::fmt_f64(x), json::fmt_f64(y));
    }
    let _ = write!(s, "], \"diverged\": {} }}", p.diverged);
}

fn placement_from_json(j: &Json) -> Result<PlacementState, String> {
    let positions = j
        .get("positions")
        .and_then(Json::as_array)
        .ok_or("missing positions")?
        .iter()
        .map(|pair| {
            let a = pair.as_array().ok_or("position is not a pair")?;
            match (
                a.first().and_then(Json::as_f64),
                a.get(1).and_then(Json::as_f64),
            ) {
                (Some(x), Some(y)) => Ok((x, y)),
                _ => Err("non-numeric position".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let diverged = matches!(j.get("diverged"), Some(Json::Bool(true)));
    Ok(PlacementState {
        positions,
        diverged,
    })
}

fn shaping_from_json(j: &Json) -> Result<ShapingState, String> {
    let shapes = j
        .get("shapes")
        .and_then(Json::as_array)
        .ok_or("missing shapes")?
        .iter()
        .map(|s| {
            let cluster = get_u64(s, "cluster")? as u32;
            let ar = s
                .get("aspect_ratio")
                .and_then(Json::as_f64)
                .ok_or("missing aspect_ratio")?;
            let util = s
                .get("utilization")
                .and_then(Json::as_f64)
                .ok_or("missing utilization")?;
            let ar_ok = ar.is_finite() && ar > 0.0;
            let util_ok = util.is_finite() && util > 0.0 && util <= 1.0;
            if !ar_ok || !util_ok {
                return Err(format!("invalid shape ar={ar} util={util}"));
            }
            Ok((cluster, ClusterShape::new(ar, util)))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let shaped = j
        .get("shaped")
        .and_then(Json::as_array)
        .ok_or("missing shaped")?
        .iter()
        .map(|c| c.as_f64().map(|f| f as u32).ok_or("non-numeric cluster id"))
        .collect::<Result<Vec<u32>, _>>()?;
    let st = j.get("stats").ok_or("missing stats")?;
    let stats = ShapingStats {
        clusters_shaped: get_u64(st, "clusters_shaped")? as usize,
        exact_evals: get_u64(st, "exact_evals")? as usize,
        exact_evals_avoided: get_u64(st, "exact_evals_avoided")? as usize,
        proxy_evals: get_u64(st, "proxy_evals")? as usize,
        surrogate_batches: get_u64(st, "surrogate_batches")? as usize,
        surrogate_samples: get_u64(st, "surrogate_samples")? as usize,
        warm_start_hits: get_u64(st, "warm_start_hits")? as usize,
        subnetlist_cache_hits: get_u64(st, "subnetlist_cache_hits")? as usize,
        subnetlist_cache_misses: get_u64(st, "subnetlist_cache_misses")? as usize,
    };
    Ok(ShapingState {
        shapes,
        shaped,
        stats,
    })
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .filter(|f| f.fract() == 0.0 && *f >= 0.0)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

/// Serializes a recovery event; bookkeeping and interrupt events return
/// `None` (they describe a particular run's execution, not the pipeline
/// state, and are not replayed on resume).
fn event_to_json(e: &RecoveryEvent) -> Option<String> {
    match e {
        RecoveryEvent::PlacerReverted { stage } => Some(format!(
            "{{\"kind\":\"placer_reverted\",\"stage\":\"{}\"}}",
            json::escape(stage)
        )),
        RecoveryEvent::ShapeFallback { cluster } => Some(format!(
            "{{\"kind\":\"shape_fallback\",\"cluster\":{cluster}}}"
        )),
        RecoveryEvent::RegionDropped { cluster } => Some(format!(
            "{{\"kind\":\"region_dropped\",\"cluster\":{cluster}}}"
        )),
        RecoveryEvent::Cancelled { .. }
        | RecoveryEvent::DeadlineExceeded { .. }
        | RecoveryEvent::CheckpointWritten { .. }
        | RecoveryEvent::Resumed { .. } => None,
    }
}

fn event_from_json(j: &Json) -> Result<RecoveryEvent, String> {
    let kind = j.get("kind").and_then(Json::as_str).ok_or("missing kind")?;
    match kind {
        "placer_reverted" => {
            let stage = j
                .get("stage")
                .and_then(Json::as_str)
                .ok_or("missing stage")?;
            Ok(RecoveryEvent::PlacerReverted {
                stage: stage_static(stage)?,
            })
        }
        "shape_fallback" => Ok(RecoveryEvent::ShapeFallback {
            cluster: get_u64(j, "cluster")? as u32,
        }),
        "region_dropped" => Ok(RecoveryEvent::RegionDropped {
            cluster: get_u64(j, "cluster")? as u32,
        }),
        other => Err(format!("unknown event kind '{other}'")),
    }
}

/// Maps a stage name back to its `'static` constant.
fn stage_static(name: &str) -> Result<&'static str, String> {
    stages::ALL
        .iter()
        .chain(std::iter::once(&stages::CONGESTION_REFINEMENT))
        .find(|&&s| s == name)
        .copied()
        .ok_or_else(|| format!("unknown stage '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xdead_beef_0123_4567,
            stage: stages::CLUSTER_PLACEMENT,
            assignment: vec![0, 1, 1, 0, 2],
            clustering_runtime: 0.125,
            events: vec![
                RecoveryEvent::ShapeFallback { cluster: 1 },
                RecoveryEvent::PlacerReverted {
                    stage: stages::CLUSTER_PLACEMENT,
                },
            ],
            dropped: 0,
            shaping: Some(ShapingState {
                shapes: vec![(0, ClusterShape::new(1.25, 0.8))],
                shaped: vec![0, 1],
                stats: ShapingStats {
                    clusters_shaped: 2,
                    exact_evals: 40,
                    ..Default::default()
                },
            }),
            cluster_placement: Some(PlacementState {
                positions: vec![
                    (1.5, -2.25),
                    (0.1 + 0.2, f64::MIN_POSITIVE),
                    (1.0 / 3.0, -0.0),
                ],
                diverged: true,
            }),
            flat_placement: None,
        }
    }

    #[test]
    fn json_round_trip_is_bitwise() {
        let cp = sample();
        let text = cp.to_json();
        let back = Checkpoint::from_json(&text).expect("round trip parses");
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!(back.stage, cp.stage);
        assert_eq!(back.assignment, cp.assignment);
        assert_eq!(
            back.clustering_runtime.to_bits(),
            cp.clustering_runtime.to_bits()
        );
        assert_eq!(back.events, cp.events);
        let (a, b) = (
            cp.cluster_placement.expect("present"),
            back.cluster_placement.expect("present"),
        );
        assert_eq!(a.diverged, b.diverged);
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            assert_eq!(pa.0.to_bits(), pb.0.to_bits());
            assert_eq!(pa.1.to_bits(), pb.1.to_bits());
        }
        let (sa, sb) = (cp.shaping.expect("present"), back.shaping.expect("present"));
        assert_eq!(sa.stats, sb.stats);
        assert_eq!(sa.shaped, sb.shaped);
        assert_eq!(sa.shapes.len(), sb.shapes.len());
    }

    #[test]
    fn schema_rejects_malformed_documents() {
        assert!(Checkpoint::from_json("{}").is_err());
        assert!(Checkpoint::from_json("not json").is_err());
        let bad_stage = sample().to_json().replace("cluster placement", "warp");
        assert!(Checkpoint::from_json(&bad_stage).is_err());
        let bad_version = sample()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(Checkpoint::from_json(&bad_version).is_err());
    }

    #[test]
    fn fingerprint_tracks_netlist_and_options() {
        let (n1, _) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(1)
            .generate_with_constraints();
        let (n2, _) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(2)
            .generate_with_constraints();
        let opts = FlowOptions::fast();
        let f1 = fingerprint(&n1, &opts);
        assert_eq!(f1, fingerprint(&n1, &opts), "stable for identical inputs");
        assert_ne!(f1, fingerprint(&n2, &opts), "netlist changes invalidate");
        let mut other = FlowOptions::fast();
        other.placer.seed += 1;
        assert_ne!(f1, fingerprint(&n1, &other), "option changes invalidate");
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("cp-checkpoint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        let cp = sample();
        cp.save(&path).expect("saves");
        let back = Checkpoint::load(&path).expect("loads");
        assert_eq!(back.stage, cp.stage);
        assert_eq!(back.assignment, cp.assignment);
        let _ = std::fs::remove_file(&path);
    }
}
