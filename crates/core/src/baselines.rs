//! Baseline clustering flows the paper compares against.
//!
//! - **Blob placement [9]**: Louvain communities as clusters, IO-net weight
//!   ×4, uniform shapes (Table 2).
//! - **Leiden**: Leiden communities in our overall flow (Table 5).
//! - **Multilevel FC (MFC)**: TritonPart's default coarsening — Eq. 3 with
//!   β = γ = 0 and no grouping constraints (Table 5).

use crate::cluster::costs::EdgeCosts;
use crate::cluster::fc::{multilevel_fc, FcOptions};
use crate::cluster::ClusteringOptions;
use crate::error::FlowError;
use crate::flow::{run_flow_with_assignment, FlowOptions, FlowReport};
use cp_graph::coarsen::{leiden_multilevel, louvain_multilevel, CoarsenOptions};
use cp_graph::community::CommunityOptions;
use cp_netlist::netlist::Netlist;
use cp_netlist::Constraints;
use std::time::Instant;

/// Community detection over the netlist's cells (ports dropped), using a
/// bounded clique expansion so high-fanout nets stay tractable.
fn cell_graph(netlist: &Netlist) -> cp_graph::Graph {
    let (hg, _) = netlist.to_hypergraph_with_map();
    let n_cells = netlist.cell_count();
    let keep: Vec<u32> = (0..n_cells as u32).collect();
    let (cells_only, _) = hg.induce(&keep, 2);
    cells_only.bounded_clique_expansion(16)
}

/// Louvain clustering of the cells (the clustering of blob placement [9]).
///
/// Runs through the multi-level coarsening wrapper: below the coarsening
/// threshold this is exact Louvain (bit-identical labels); above it the
/// detection runs on a heavy-edge-matched coarse graph and projects back,
/// keeping million-cell designs tractable.
pub fn louvain_assignment(netlist: &Netlist, seed: u64) -> (Vec<u32>, f64) {
    let t0 = Instant::now();
    let g = cell_graph(netlist);
    let (labels, _q) = louvain_multilevel(
        &g,
        &CommunityOptions {
            seed,
            ..Default::default()
        },
        &CoarsenOptions::default(),
    );
    (labels, t0.elapsed().as_secs_f64())
}

/// Leiden clustering of the cells (Table 5 baseline), through the same
/// multi-level wrapper as [`louvain_assignment`].
pub fn leiden_assignment(netlist: &Netlist, seed: u64) -> (Vec<u32>, f64) {
    let t0 = Instant::now();
    let g = cell_graph(netlist);
    let (labels, _q) = leiden_multilevel(
        &g,
        &CommunityOptions {
            seed,
            ..Default::default()
        },
        &CoarsenOptions::default(),
    );
    (labels, t0.elapsed().as_secs_f64())
}

/// Plain multilevel FC (no hierarchy, no timing, no switching — Table 5's
/// MFC baseline).
pub fn mfc_assignment(netlist: &Netlist, clustering: &ClusteringOptions) -> (Vec<u32>, f64) {
    let t0 = Instant::now();
    let hg = netlist.to_hypergraph();
    let costs = EdgeCosts::uniform(hg.edge_count());
    let mut labels = multilevel_fc(
        &hg,
        netlist.cell_count(),
        &costs,
        None,
        &FcOptions {
            alpha: clustering.alpha,
            beta: 0.0,
            gamma: 0.0,
            target_clusters: clustering.target_clusters(netlist.cell_count()),
            max_cluster_size: clustering.max_cluster_size(),
            seed: clustering.seed,
            max_passes: 24,
        },
    );
    cp_graph::community::compact_labels(&mut labels);
    (labels, t0.elapsed().as_secs_f64())
}

/// The blob-placement flow of [9]: Louvain clusters, uniform shapes,
/// OpenROAD-like seeded placement.
///
/// # Errors
///
/// See [`run_flow_with_assignment`].
pub fn run_blob_flow(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
) -> Result<FlowReport, FlowError> {
    let (assignment, runtime) = louvain_assignment(netlist, options.clustering.seed);
    run_flow_with_assignment(netlist, constraints, &assignment, runtime, options)
}

/// Our overall flow with Leiden standing in for the PPA-aware clustering
/// (Table 5's "Leiden" row).
///
/// # Errors
///
/// See [`run_flow_with_assignment`].
pub fn run_leiden_flow(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
) -> Result<FlowReport, FlowError> {
    let (assignment, runtime) = leiden_assignment(netlist, options.clustering.seed);
    run_flow_with_assignment(netlist, constraints, &assignment, runtime, options)
}

/// Our overall flow with plain multilevel FC (Table 5's "MFC" row).
///
/// # Errors
///
/// See [`run_flow_with_assignment`].
pub fn run_mfc_flow(
    netlist: &Netlist,
    constraints: &Constraints,
    options: &FlowOptions,
) -> Result<FlowReport, FlowError> {
    let (assignment, runtime) = mfc_assignment(netlist, &options.clustering);
    run_flow_with_assignment(netlist, constraints, &assignment, runtime, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn setup() -> (Netlist, Constraints) {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(31)
            .generate_with_constraints()
    }

    #[test]
    fn louvain_and_leiden_find_multiple_communities() {
        let (n, _) = setup();
        let (lou, _) = louvain_assignment(&n, 1);
        let (lei, _) = leiden_assignment(&n, 1);
        assert_eq!(lou.len(), n.cell_count());
        assert_eq!(lei.len(), n.cell_count());
        let k_lou = lou.iter().copied().max().unwrap() + 1;
        let k_lei = lei.iter().copied().max().unwrap() + 1;
        assert!(k_lou > 1 && (k_lou as usize) < n.cell_count() / 2);
        assert!(k_lei > 1 && (k_lei as usize) < n.cell_count() / 2);
    }

    #[test]
    fn mfc_reaches_its_target() {
        let (n, _) = setup();
        let opts = ClusteringOptions {
            avg_cluster_size: 40,
            ..Default::default()
        };
        let (labels, _) = mfc_assignment(&n, &opts);
        let k = labels.iter().copied().max().unwrap() as usize + 1;
        let target = opts.target_clusters(n.cell_count());
        assert!(
            k >= target && k <= n.cell_count() / 4,
            "k = {k}, target {target}"
        );
    }

    #[test]
    fn baseline_flows_run_end_to_end() {
        let (n, c) = setup();
        let opts = FlowOptions::fast();
        for r in [
            run_blob_flow(&n, &c, &opts).expect("blob flow runs"),
            run_leiden_flow(&n, &c, &opts).expect("leiden flow runs"),
            run_mfc_flow(&n, &c, &opts).expect("mfc flow runs"),
        ] {
            assert!(r.hpwl > 0.0);
            assert!(r.ppa.rwl > 0.0);
            assert!(r.cluster_count > 1);
        }
    }
}
