//! Virtualized P&R (Section 3.2, Figure 3).
//!
//! For a cluster's sub-netlist and a candidate shape, V-P&R floorplans a
//! virtual die, runs placement and global routing, and scores the result:
//!
//! - `Cost_HPWL = HPWL_avg / (Width_core + Height_core)` (Eq. 4),
//! - `Cost_Congestion` = average congestion over the top-X% GCells (Eq. 5),
//! - `Total = Cost_HPWL + δ · Cost_Congestion` (δ = 0.01, after [13]).
//!
//! The candidate grid is the paper's 5 aspect ratios × 4 utilizations.

pub mod ml;
pub mod subnetlist;

use crate::error::FlowError;
use crate::stages;
use cp_netlist::floorplan::Rect;
use cp_netlist::netlist::Netlist;
use cp_netlist::{ClusterShape, Floorplan};
use cp_place::{GlobalPlacer, PlaceError, PlacementProblem, PlacerOptions};
use cp_resilience::RunControl;
use cp_route::{route_placed_netlist, RouterOptions};
use cp_trace::ArgValue;

pub use subnetlist::extract_subnetlist;

/// Polls the run control (when one is threaded in) at the per-candidate
/// interruption site.
fn poll_candidate(control: Option<&RunControl>) -> Option<cp_resilience::Interrupt> {
    control.and_then(|ctl| ctl.poll(cp_resilience::sites::VPR_CANDIDATE).err())
}

/// An interruption observed inside the candidate sweep, typed so the flow
/// can tell it apart from a genuine per-candidate evaluation failure
/// (which falls back to the uniform shape instead of aborting the run).
fn interrupted_candidate(interrupt: cp_resilience::Interrupt) -> FlowError {
    FlowError::Place(PlaceError::Interrupted {
        interrupt,
        iteration: 0,
        best: None,
    })
}

/// Span wrapping one cluster×candidate evaluation; `verdict` names the
/// ranking tier that paid for it (exact V-P&R, reduced-effort screening,
/// or the placement proxy).
fn candidate_span(shape: ClusterShape, verdict: &'static str) -> cp_trace::SpanGuard {
    cp_trace::span_with(
        stages::SPAN_VPR_CANDIDATE,
        &[
            ("ar", ArgValue::F(shape.aspect_ratio)),
            ("util", ArgValue::F(shape.utilization)),
            ("verdict", ArgValue::S(verdict)),
        ],
    )
}

/// V-P&R tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VprOptions {
    /// Congestion weight δ in the total cost.
    pub delta: f64,
    /// The X of "top X% GCells" in Eq. 5.
    pub top_percent: f64,
    /// Placer settings for the virtual die (reduced effort).
    pub placer: PlacerOptions,
    /// Router settings for the virtual die.
    pub router: RouterOptions,
}

impl Default for VprOptions {
    fn default() -> Self {
        Self {
            delta: 0.01,
            top_percent: 10.0,
            placer: PlacerOptions {
                max_iterations: 10,
                incremental_iterations: 5,
                cg_iterations: 30,
                ..Default::default()
            },
            router: RouterOptions::default(),
        }
    }
}

/// The cost of one shape candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeCost {
    /// The candidate.
    pub shape: ClusterShape,
    /// Eq. 4.
    pub hpwl_cost: f64,
    /// Eq. 5.
    pub congestion_cost: f64,
    /// `Cost_HPWL + δ · Cost_Congestion`.
    pub total: f64,
}

/// Counters from one shape search, aggregated into the flow's
/// `ShapingStats` so the report can show how much exact work the fast
/// path avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapeSearchStats {
    /// Exact V-P&R evaluations actually run.
    pub exact_evals: usize,
    /// Candidates never exactly evaluated (pruned by the surrogate rank).
    pub exact_evals_avoided: usize,
    /// Low-effort placement-proxy evaluations (untrained ranking path).
    pub proxy_evals: usize,
    /// Exact evaluations that started from a rescaled previous solution
    /// instead of a cold random scatter.
    pub warm_start_hits: usize,
}

impl ShapeSearchStats {
    /// Accumulates another search's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.exact_evals += other.exact_evals;
        self.exact_evals_avoided += other.exact_evals_avoided;
        self.proxy_evals += other.proxy_evals;
        self.warm_start_hits += other.warm_start_hits;
    }
}

/// A finished virtual placement, reusable as the starting point of the
/// next candidate's solve: the movable-cell positions (ports excluded)
/// plus the core they were placed in, so they can be rescaled onto a die
/// of a different shape.
#[derive(Debug, Clone)]
pub struct WarmStart {
    positions: Vec<(f64, f64)>,
    core: Rect,
}

impl WarmStart {
    /// Maps the stored positions onto `core` by rescaling each coordinate
    /// proportionally between the old and new die extents.
    fn rescaled_to(&self, core: &Rect) -> Vec<(f64, f64)> {
        let ow = self.core.width().max(1e-12);
        let oh = self.core.height().max(1e-12);
        self.positions
            .iter()
            .map(|&(x, y)| {
                (
                    core.llx + (x - self.core.llx) * core.width() / ow,
                    core.lly + (y - self.core.lly) * core.height() / oh,
                )
            })
            .collect()
    }
}

/// A cluster's sub-netlist prepared for repeated shape evaluation:
/// validation and the scoreable-net count are hoisted out of the
/// per-candidate path, so a 20-candidate sweep pays for them once.
#[derive(Debug, Clone, Copy)]
pub struct ClusterVpr<'a> {
    sub: &'a Netlist,
    net_count: usize,
}

impl<'a> ClusterVpr<'a> {
    /// Validates `sub` and precomputes per-cluster invariants.
    ///
    /// # Errors
    ///
    /// [`FlowError::Validation`] when `sub` is degenerate (no cells, no
    /// nets).
    pub fn new(sub: &'a Netlist) -> Result<Self, FlowError> {
        sub.validate()?;
        let net_count = sub
            .nets()
            .iter()
            .filter(|n| !n.is_clock && n.pin_count() >= 2)
            .count()
            .max(1);
        Ok(Self { sub, net_count })
    }

    /// Places and routes the cluster on a virtual die of the given shape
    /// and scores it (one arm of Figure 3).
    ///
    /// # Errors
    ///
    /// [`FlowError::Place`] / [`FlowError::Route`] when the virtual P&R
    /// fails for this shape.
    pub fn evaluate(
        &self,
        shape: ClusterShape,
        options: &VprOptions,
    ) -> Result<ShapeCost, FlowError> {
        if cp_resilience::faultpoint!(cp_resilience::sites::VPR_CANDIDATE_FAIL) {
            return Err(FlowError::Place(PlaceError::InvalidInput {
                reason: "injected fault: vpr.candidate.fail".to_string(),
            }));
        }
        let sub = self.sub;
        let fp = Floorplan::try_for_netlist(sub, shape.utilization, shape.aspect_ratio)?;
        let problem = PlacementProblem::from_netlist(sub, &fp);
        let placed = GlobalPlacer::new(options.placer).place(&problem)?;
        let mut positions = placed.positions;
        positions.extend_from_slice(&fp.port_positions);
        let routed = route_placed_netlist(sub, &positions, &fp, &options.router)?;
        let hpwl_avg = placed.hpwl / self.net_count as f64;
        let hpwl_cost = hpwl_avg / (fp.core.width() + fp.core.height());
        let congestion_cost = routed.congestion.top_percent_average(options.top_percent);
        Ok(ShapeCost {
            shape,
            hpwl_cost,
            congestion_cost,
            total: hpwl_cost + options.delta * congestion_cost,
        })
    }

    /// [`Self::evaluate`] with two fast-path levers: an optional warm
    /// start (the previous candidate's solution rescaled to this die,
    /// engaging the placer's incremental mode) and an `effort` fraction in
    /// `(0, 1]` scaling the placement iteration budget for successive
    /// halving. With `effort = 1.0` and no warm start this is exactly
    /// [`Self::evaluate`].
    ///
    /// Returns the cost together with a [`WarmStart`] snapshot of the
    /// solved positions for the next candidate to reuse.
    ///
    /// # Errors
    ///
    /// [`FlowError::Place`] / [`FlowError::Route`] when the virtual P&R
    /// fails for this shape.
    pub fn evaluate_warm(
        &self,
        shape: ClusterShape,
        options: &VprOptions,
        warm: Option<&WarmStart>,
        effort: f64,
    ) -> Result<(ShapeCost, WarmStart), FlowError> {
        self.evaluate_inner(shape, options, warm, effort, true)
    }

    /// Shared body of [`Self::evaluate`]/[`Self::evaluate_warm`]. With
    /// `route` off the congestion term is skipped (reported as 0) — used
    /// by the intermediate successive-halving rounds, which only need
    /// relative order and re-score survivors with routing in the final
    /// round.
    fn evaluate_inner(
        &self,
        shape: ClusterShape,
        options: &VprOptions,
        warm: Option<&WarmStart>,
        effort: f64,
        route: bool,
    ) -> Result<(ShapeCost, WarmStart), FlowError> {
        if cp_resilience::faultpoint!(cp_resilience::sites::VPR_CANDIDATE_FAIL) {
            return Err(FlowError::Place(PlaceError::InvalidInput {
                reason: "injected fault: vpr.candidate.fail".to_string(),
            }));
        }
        let sub = self.sub;
        let fp = Floorplan::try_for_netlist(sub, shape.utilization, shape.aspect_ratio)?;
        let mut problem = PlacementProblem::from_netlist(sub, &fp);
        if let Some(w) = warm {
            problem = problem.with_seeds(w.rescaled_to(&fp.core));
        }
        // Effort scales every iteration budget, including the CG solve —
        // the dominant per-iteration cost. At effort 1.0 this is the
        // identity, so full-effort paths are unaffected.
        let scale = |iters: usize| ((iters as f64 * effort).ceil() as usize).max(1);
        let placer = PlacerOptions {
            max_iterations: scale(options.placer.max_iterations),
            incremental_iterations: scale(options.placer.incremental_iterations),
            cg_iterations: scale(options.placer.cg_iterations),
            ..options.placer
        };
        let placed = GlobalPlacer::new(placer).place(&problem)?;
        let next_warm = WarmStart {
            positions: placed.positions.clone(),
            core: fp.core,
        };
        let congestion_cost = if route {
            let mut positions = placed.positions;
            positions.extend_from_slice(&fp.port_positions);
            let routed = route_placed_netlist(sub, &positions, &fp, &options.router)?;
            routed.congestion.top_percent_average(options.top_percent)
        } else {
            0.0
        };
        let hpwl_avg = placed.hpwl / self.net_count as f64;
        let hpwl_cost = hpwl_avg / (fp.core.width() + fp.core.height());
        let cost = ShapeCost {
            shape,
            hpwl_cost,
            congestion_cost,
            total: hpwl_cost + options.delta * congestion_cost,
        };
        Ok((cost, next_warm))
    }

    /// Cheap surrogate ranking for the untrained hybrid path: a 2-iteration
    /// placement per candidate, no routing, scored by Eq. 4 alone. The
    /// values are only used to *order* candidates, so skipping the
    /// congestion term is acceptable — exact V-P&R re-scores whatever
    /// survives the cut.
    ///
    /// # Errors
    ///
    /// Propagates the first (in candidate order) placement failure.
    pub fn proxy_costs(&self, options: &VprOptions) -> Result<Vec<f64>, FlowError> {
        let candidates = ClusterShape::candidates();
        let results = cp_parallel::par_map(&candidates, 1, |&shape| -> Result<f64, FlowError> {
            let _span = candidate_span(shape, "proxy");
            let fp = Floorplan::try_for_netlist(self.sub, shape.utilization, shape.aspect_ratio)?;
            let problem = PlacementProblem::from_netlist(self.sub, &fp);
            let placer = PlacerOptions {
                max_iterations: 1,
                cg_iterations: 5,
                ..options.placer
            };
            let placed = GlobalPlacer::new(placer).place(&problem)?;
            let hpwl_avg = placed.hpwl / self.net_count as f64;
            Ok(hpwl_avg / (fp.core.width() + fp.core.height()))
        });
        results.into_iter().collect()
    }
}

/// Places and routes `sub` on a virtual die of the given shape and scores
/// it (one arm of Figure 3).
///
/// # Errors
///
/// [`FlowError::Validation`] when `sub` is degenerate (no cells, no
/// nets); [`FlowError::Place`] / [`FlowError::Route`] when the virtual
/// P&R itself fails.
pub fn evaluate_shape(
    sub: &Netlist,
    shape: ClusterShape,
    options: &VprOptions,
) -> Result<ShapeCost, FlowError> {
    ClusterVpr::new(sub)?.evaluate(shape, options)
}

/// Sweeps the paper's 20 shape candidates through V-P&R; returns the best
/// shape and every candidate's cost (ties break toward the earlier
/// candidate, i.e. lower aspect ratio / utilization).
///
/// The candidates are independent virtual P&R runs, so they evaluate in
/// parallel (one candidate per chunk); selection and error propagation
/// happen afterwards in candidate order, preserving the serial sweep's
/// tie-breaking and first-error semantics exactly.
///
/// # Errors
///
/// Propagates the first (in candidate order) evaluation failure — with a
/// valid sub-netlist every candidate either scores or fails identically.
pub fn best_shape(
    sub: &Netlist,
    options: &VprOptions,
) -> Result<(ClusterShape, Vec<ShapeCost>), FlowError> {
    best_shape_with_control(sub, options, None)
}

/// [`best_shape`] polling a [`RunControl`] before each candidate, so a
/// cancellation or deadline interrupts the sweep between P&R runs instead
/// of after all twenty. The interruption surfaces as
/// [`PlaceError::Interrupted`] (see `poll_candidate`).
///
/// # Errors
///
/// See [`best_shape`]; additionally the interruption when `control` trips.
pub fn best_shape_with_control(
    sub: &Netlist,
    options: &VprOptions,
    control: Option<&RunControl>,
) -> Result<(ClusterShape, Vec<ShapeCost>), FlowError> {
    let ctx = ClusterVpr::new(sub)?;
    let candidates = ClusterShape::candidates();
    let results = cp_parallel::par_map(&candidates, 1, |&shape| {
        if let Some(interrupt) = poll_candidate(control) {
            return Err(interrupted_candidate(interrupt));
        }
        let _span = candidate_span(shape, "exact");
        ctx.evaluate(shape, options)
    });
    let mut costs = Vec::with_capacity(results.len());
    for r in results {
        costs.push(r?);
    }
    let mut best: Option<ShapeCost> = None;
    for &c in &costs {
        if best.is_none_or(|b| c.total < b.total) {
            best = Some(c);
        }
    }
    match best {
        Some(b) => Ok((b.shape, costs)),
        // Unreachable: `candidates()` is a non-empty constant grid.
        None => Ok((ClusterShape::UNIFORM, costs)),
    }
}

/// Surrogate-first shape search (the fast path behind
/// `ShapeMode::Hybrid`): a cheap ranking — the trained surrogate's
/// predicted Total Costs when available, otherwise the low-effort
/// placement proxy — picks the `top_k` most promising candidates, and
/// exact V-P&R runs only those, via successive halving with an effort ramp
/// and each solve warm-started from the previous candidate's solution
/// rescaled to the new die.
///
/// `surrogate_costs`, when given, must hold one predicted cost per
/// candidate in [`ClusterShape::candidates`] order (see
/// `MlShapeSelector::predicted_candidate_costs`).
///
/// With `top_k >= 20` the search delegates to [`best_shape`], so the
/// selected shape is bit-identical to the exact sweep's.
///
/// # Errors
///
/// [`FlowError::Validation`] for a degenerate sub-netlist; otherwise
/// propagates the first evaluation failure.
pub fn best_shape_hybrid(
    sub: &Netlist,
    options: &VprOptions,
    top_k: usize,
    surrogate_costs: Option<&[f64]>,
) -> Result<(ClusterShape, Vec<ShapeCost>, ShapeSearchStats), FlowError> {
    best_shape_hybrid_with_control(sub, options, top_k, surrogate_costs, None)
}

/// [`best_shape_hybrid`] polling a [`RunControl`] before each exact solve
/// (the successive-halving rounds run sequentially per cluster, so every
/// candidate is an interruption point).
///
/// # Errors
///
/// See [`best_shape_hybrid`]; additionally the interruption when
/// `control` trips.
pub fn best_shape_hybrid_with_control(
    sub: &Netlist,
    options: &VprOptions,
    top_k: usize,
    surrogate_costs: Option<&[f64]>,
    control: Option<&RunControl>,
) -> Result<(ClusterShape, Vec<ShapeCost>, ShapeSearchStats), FlowError> {
    let candidates = ClusterShape::candidates();
    let top_k = top_k.max(1);
    if top_k >= candidates.len() {
        let (best, costs) = best_shape_with_control(sub, options, control)?;
        let stats = ShapeSearchStats {
            exact_evals: candidates.len(),
            ..Default::default()
        };
        return Ok((best, costs, stats));
    }
    let ctx = ClusterVpr::new(sub)?;
    let mut stats = ShapeSearchStats::default();

    // Rank all candidates by the cheap cost; ties break to the earlier
    // candidate (stable sort), matching the exact sweep's preference for
    // lower aspect ratio / utilization.
    let ranking: Vec<f64> = match surrogate_costs {
        Some(costs) => {
            assert_eq!(costs.len(), candidates.len(), "one cost per candidate");
            costs.to_vec()
        }
        None => {
            stats.proxy_evals += candidates.len();
            ctx.proxy_costs(options)?
        }
    };
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| ranking[a].total_cmp(&ranking[b]));
    // The ranker's top pick is exempt from elimination: screening rounds
    // run at reduced effort and can misorder near-ties, so they may
    // promote candidates into the final round but never veto the
    // champion. Whenever the true winner is the ranker's #1, the cold
    // final round then selects it exactly as `best_shape` would.
    let champion = order[0];
    let mut survivors: Vec<usize> = order[..top_k].to_vec();
    survivors.sort_unstable();
    stats.exact_evals_avoided = candidates.len() - top_k;

    // Successive halving: each round halves the survivor set and raises
    // the placement effort, so full-budget solves are spent only on the
    // final contenders. Intermediate (screening) rounds skip routing —
    // they only need relative order — and warm-start every solve from one
    // shared base per round (the round's first solve, then the previous
    // round's best survivor). A shared base keeps the round comparable;
    // chaining candidate-to-candidate instead would hand later candidates
    // increasingly refined placements and bias the cut toward them. The
    // final round re-scores its survivors cold at full effort, which is
    // exactly [`ClusterVpr::evaluate`]: those costs are bitwise-equal to
    // the exact sweep's, so whenever the true winner survives the cut,
    // the hybrid selects the same shape as [`best_shape`].
    let total_rounds = (top_k as f64).log2().ceil().max(1.0) as usize;
    let mut base: Option<WarmStart> = None;
    let mut all_evals: Vec<ShapeCost> = Vec::new();
    let mut round_costs: Vec<ShapeCost> = Vec::new();
    for round in 0..total_rounds {
        let effort = (round + 1) as f64 / total_rounds as f64;
        let last = round + 1 == total_rounds;
        round_costs.clear();
        let mut round_warms: Vec<WarmStart> = Vec::new();
        for &ci in &survivors {
            if let Some(interrupt) = poll_candidate(control) {
                return Err(interrupted_candidate(interrupt));
            }
            let cost = if last {
                let _span = candidate_span(candidates[ci], "exact");
                ctx.evaluate(candidates[ci], options)?
            } else {
                let _span = candidate_span(candidates[ci], "screening");
                let (cost, w) =
                    ctx.evaluate_inner(candidates[ci], options, base.as_ref(), effort, false)?;
                if base.is_some() {
                    stats.warm_start_hits += 1;
                } else {
                    base = Some(w.clone());
                }
                round_warms.push(w);
                cost
            };
            stats.exact_evals += 1;
            round_costs.push(cost);
            all_evals.push(cost);
        }
        if !last && survivors.len() > 1 {
            let keep = survivors.len().div_ceil(2);
            let mut by_cost: Vec<usize> = (0..survivors.len()).collect();
            by_cost.sort_by(|&a, &b| {
                round_costs[a]
                    .total
                    .total_cmp(&round_costs[b].total)
                    .then(survivors[a].cmp(&survivors[b]))
            });
            base = Some(round_warms[by_cost[0]].clone());
            let mut kept: Vec<usize> = by_cost[..keep].iter().map(|&i| survivors[i]).collect();
            if !kept.contains(&champion) {
                kept.push(champion);
            }
            kept.sort_unstable();
            survivors = kept;
        }
    }

    // Select from the final round only: those costs share the full effort
    // level, so they are comparable; survivors are in candidate order, so
    // strict-less argmin keeps the earlier-candidate tie-break.
    let mut best = 0usize;
    for (i, c) in round_costs.iter().enumerate() {
        if c.total.total_cmp(&round_costs[best].total).is_lt() {
            best = i;
        }
    }
    Ok((round_costs[best].shape, all_evals, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::CellId;

    fn cluster_sub() -> Netlist {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(12)
            .generate();
        let cells: Vec<CellId> = (0..220).map(CellId).collect();
        extract_subnetlist(&n, &cells).expect("valid sub-netlist")
    }

    #[test]
    fn shape_costs_are_finite_and_positive() {
        let sub = cluster_sub();
        let c = evaluate_shape(&sub, ClusterShape::UNIFORM, &VprOptions::default())
            .expect("shape evaluates");
        assert!(c.hpwl_cost > 0.0 && c.hpwl_cost.is_finite());
        assert!(c.congestion_cost >= 0.0 && c.congestion_cost.is_finite());
        assert!((c.total - (c.hpwl_cost + 0.01 * c.congestion_cost)).abs() < 1e-12);
    }

    #[test]
    fn sweep_evaluates_all_twenty() {
        let sub = cluster_sub();
        let (best, costs) = best_shape(&sub, &VprOptions::default()).expect("sweep runs");
        assert_eq!(costs.len(), 20);
        let min = costs.iter().map(|c| c.total).fold(f64::INFINITY, f64::min);
        let best_cost = costs
            .iter()
            .find(|c| c.shape == best)
            .expect("best is a candidate");
        assert!((best_cost.total - min).abs() < 1e-12);
    }

    #[test]
    fn costs_vary_across_shapes() {
        let sub = cluster_sub();
        let (_, costs) = best_shape(&sub, &VprOptions::default()).expect("sweep runs");
        let min = costs.iter().map(|c| c.total).fold(f64::INFINITY, f64::min);
        let max = costs.iter().map(|c| c.total).fold(0.0f64, f64::max);
        assert!(
            max > min * 1.01,
            "shape choice should matter: {min} vs {max}"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let sub = cluster_sub();
        let a = evaluate_shape(&sub, ClusterShape::new(1.25, 0.8), &VprOptions::default());
        let b = evaluate_shape(&sub, ClusterShape::new(1.25, 0.8), &VprOptions::default());
        assert_eq!(a.expect("shape evaluates"), b.expect("shape evaluates"));
    }

    #[test]
    fn hybrid_with_full_top_k_matches_exact_sweep() {
        let sub = cluster_sub();
        let opts = VprOptions::default();
        let (exact, exact_costs) = best_shape(&sub, &opts).expect("sweep runs");
        let (hybrid, costs, stats) = best_shape_hybrid(&sub, &opts, 20, None).expect("hybrid runs");
        assert_eq!(exact, hybrid);
        assert_eq!(exact_costs, costs);
        assert_eq!(stats.exact_evals, 20);
        assert_eq!(stats.exact_evals_avoided, 0);
        assert_eq!(stats.proxy_evals, 0);
    }

    #[test]
    fn hybrid_prunes_and_warm_starts() {
        let sub = cluster_sub();
        let opts = VprOptions::default();
        let (shape, costs, stats) = best_shape_hybrid(&sub, &opts, 4, None).expect("hybrid runs");
        assert!(ClusterShape::candidates().contains(&shape));
        // top_k = 4 → 2 halving rounds: 4 screening evals (3 of them
        // warm-started) + 2 cold full-effort finals = 6 exact evals (7 if
        // the champion had to be re-added after screening), with 16
        // candidates never exactly evaluated.
        assert!(
            stats.exact_evals == 6 || stats.exact_evals == 7,
            "exact_evals = {}",
            stats.exact_evals
        );
        assert_eq!(stats.exact_evals_avoided, 16);
        assert_eq!(stats.proxy_evals, 20);
        assert_eq!(stats.warm_start_hits, 3);
        assert_eq!(costs.len(), stats.exact_evals);
        for c in &costs {
            assert!(c.total.is_finite() && c.total > 0.0);
        }
    }

    #[test]
    fn hybrid_is_deterministic() {
        let sub = cluster_sub();
        let opts = VprOptions::default();
        let a = best_shape_hybrid(&sub, &opts, 4, None).expect("hybrid runs");
        let b = best_shape_hybrid(&sub, &opts, 4, None).expect("hybrid runs");
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn hybrid_with_surrogate_ranking_skips_proxies() {
        let sub = cluster_sub();
        let opts = VprOptions::default();
        // Rank by a fake surrogate preferring the last candidates; the
        // search must still run and count zero proxy evaluations.
        let fake: Vec<f64> = (0..20).map(|i| -(i as f64)).collect();
        let (shape, _, stats) =
            best_shape_hybrid(&sub, &opts, 2, Some(&fake)).expect("hybrid runs");
        assert!(ClusterShape::candidates().contains(&shape));
        assert_eq!(stats.proxy_evals, 0);
        assert_eq!(stats.exact_evals, 2);
        assert_eq!(stats.exact_evals_avoided, 18);
    }

    #[test]
    fn warm_evaluate_at_full_effort_matches_cold() {
        let sub = cluster_sub();
        let opts = VprOptions::default();
        let ctx = ClusterVpr::new(&sub).expect("valid cluster");
        let shape = ClusterShape::new(1.25, 0.8);
        let cold = ctx.evaluate(shape, &opts).expect("cold evaluates");
        let (warmless, _) = ctx
            .evaluate_warm(shape, &opts, None, 1.0)
            .expect("warmless evaluates");
        assert_eq!(cold, warmless);
    }

    #[test]
    fn empty_subnetlist_is_a_typed_error() {
        let sub = cluster_sub();
        let err = evaluate_shape(
            &extract_subnetlist(&sub, &[]).expect("empty induction builds"),
            ClusterShape::UNIFORM,
            &VprOptions::default(),
        )
        .expect_err("no cells to place");
        assert!(matches!(err, FlowError::Validation(_)));
    }
}
