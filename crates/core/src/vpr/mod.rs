//! Virtualized P&R (Section 3.2, Figure 3).
//!
//! For a cluster's sub-netlist and a candidate shape, V-P&R floorplans a
//! virtual die, runs placement and global routing, and scores the result:
//!
//! - `Cost_HPWL = HPWL_avg / (Width_core + Height_core)` (Eq. 4),
//! - `Cost_Congestion` = average congestion over the top-X% GCells (Eq. 5),
//! - `Total = Cost_HPWL + δ · Cost_Congestion` (δ = 0.01, after [13]).
//!
//! The candidate grid is the paper's 5 aspect ratios × 4 utilizations.

pub mod ml;
pub mod subnetlist;

use crate::error::FlowError;
use cp_netlist::netlist::Netlist;
use cp_netlist::{ClusterShape, Floorplan};
use cp_place::{GlobalPlacer, PlacementProblem, PlacerOptions};
use cp_route::{route_placed_netlist, RouterOptions};

pub use subnetlist::extract_subnetlist;

/// V-P&R tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VprOptions {
    /// Congestion weight δ in the total cost.
    pub delta: f64,
    /// The X of "top X% GCells" in Eq. 5.
    pub top_percent: f64,
    /// Placer settings for the virtual die (reduced effort).
    pub placer: PlacerOptions,
    /// Router settings for the virtual die.
    pub router: RouterOptions,
}

impl Default for VprOptions {
    fn default() -> Self {
        Self {
            delta: 0.01,
            top_percent: 10.0,
            placer: PlacerOptions {
                max_iterations: 10,
                cg_iterations: 30,
                ..Default::default()
            },
            router: RouterOptions::default(),
        }
    }
}

/// The cost of one shape candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeCost {
    /// The candidate.
    pub shape: ClusterShape,
    /// Eq. 4.
    pub hpwl_cost: f64,
    /// Eq. 5.
    pub congestion_cost: f64,
    /// `Cost_HPWL + δ · Cost_Congestion`.
    pub total: f64,
}

/// A cluster's sub-netlist prepared for repeated shape evaluation:
/// validation and the scoreable-net count are hoisted out of the
/// per-candidate path, so a 20-candidate sweep pays for them once.
#[derive(Debug, Clone, Copy)]
pub struct ClusterVpr<'a> {
    sub: &'a Netlist,
    net_count: usize,
}

impl<'a> ClusterVpr<'a> {
    /// Validates `sub` and precomputes per-cluster invariants.
    ///
    /// # Errors
    ///
    /// [`FlowError::Validation`] when `sub` is degenerate (no cells, no
    /// nets).
    pub fn new(sub: &'a Netlist) -> Result<Self, FlowError> {
        sub.validate()?;
        let net_count = sub
            .nets()
            .iter()
            .filter(|n| !n.is_clock && n.pin_count() >= 2)
            .count()
            .max(1);
        Ok(Self { sub, net_count })
    }

    /// Places and routes the cluster on a virtual die of the given shape
    /// and scores it (one arm of Figure 3).
    ///
    /// # Errors
    ///
    /// [`FlowError::Place`] / [`FlowError::Route`] when the virtual P&R
    /// fails for this shape.
    pub fn evaluate(
        &self,
        shape: ClusterShape,
        options: &VprOptions,
    ) -> Result<ShapeCost, FlowError> {
        let sub = self.sub;
        let fp = Floorplan::try_for_netlist(sub, shape.utilization, shape.aspect_ratio)?;
        let problem = PlacementProblem::from_netlist(sub, &fp);
        let placed = GlobalPlacer::new(options.placer).place(&problem)?;
        let mut positions = placed.positions;
        positions.extend_from_slice(&fp.port_positions);
        let routed = route_placed_netlist(sub, &positions, &fp, &options.router)?;
        let hpwl_avg = placed.hpwl / self.net_count as f64;
        let hpwl_cost = hpwl_avg / (fp.core.width() + fp.core.height());
        let congestion_cost = routed.congestion.top_percent_average(options.top_percent);
        Ok(ShapeCost {
            shape,
            hpwl_cost,
            congestion_cost,
            total: hpwl_cost + options.delta * congestion_cost,
        })
    }
}

/// Places and routes `sub` on a virtual die of the given shape and scores
/// it (one arm of Figure 3).
///
/// # Errors
///
/// [`FlowError::Validation`] when `sub` is degenerate (no cells, no
/// nets); [`FlowError::Place`] / [`FlowError::Route`] when the virtual
/// P&R itself fails.
pub fn evaluate_shape(
    sub: &Netlist,
    shape: ClusterShape,
    options: &VprOptions,
) -> Result<ShapeCost, FlowError> {
    ClusterVpr::new(sub)?.evaluate(shape, options)
}

/// Sweeps the paper's 20 shape candidates through V-P&R; returns the best
/// shape and every candidate's cost (ties break toward the earlier
/// candidate, i.e. lower aspect ratio / utilization).
///
/// The candidates are independent virtual P&R runs, so they evaluate in
/// parallel (one candidate per chunk); selection and error propagation
/// happen afterwards in candidate order, preserving the serial sweep's
/// tie-breaking and first-error semantics exactly.
///
/// # Errors
///
/// Propagates the first (in candidate order) evaluation failure — with a
/// valid sub-netlist every candidate either scores or fails identically.
pub fn best_shape(
    sub: &Netlist,
    options: &VprOptions,
) -> Result<(ClusterShape, Vec<ShapeCost>), FlowError> {
    let ctx = ClusterVpr::new(sub)?;
    let candidates = ClusterShape::candidates();
    let results = cp_parallel::par_map(&candidates, 1, |&shape| ctx.evaluate(shape, options));
    let mut costs = Vec::with_capacity(results.len());
    for r in results {
        costs.push(r?);
    }
    let mut best: Option<ShapeCost> = None;
    for &c in &costs {
        if best.is_none_or(|b| c.total < b.total) {
            best = Some(c);
        }
    }
    match best {
        Some(b) => Ok((b.shape, costs)),
        // Unreachable: `candidates()` is a non-empty constant grid.
        None => Ok((ClusterShape::UNIFORM, costs)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};
    use cp_netlist::CellId;

    fn cluster_sub() -> Netlist {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(12)
            .generate();
        let cells: Vec<CellId> = (0..220).map(CellId).collect();
        extract_subnetlist(&n, &cells).expect("valid sub-netlist")
    }

    #[test]
    fn shape_costs_are_finite_and_positive() {
        let sub = cluster_sub();
        let c = evaluate_shape(&sub, ClusterShape::UNIFORM, &VprOptions::default())
            .expect("shape evaluates");
        assert!(c.hpwl_cost > 0.0 && c.hpwl_cost.is_finite());
        assert!(c.congestion_cost >= 0.0 && c.congestion_cost.is_finite());
        assert!((c.total - (c.hpwl_cost + 0.01 * c.congestion_cost)).abs() < 1e-12);
    }

    #[test]
    fn sweep_evaluates_all_twenty() {
        let sub = cluster_sub();
        let (best, costs) = best_shape(&sub, &VprOptions::default()).expect("sweep runs");
        assert_eq!(costs.len(), 20);
        let min = costs.iter().map(|c| c.total).fold(f64::INFINITY, f64::min);
        let best_cost = costs
            .iter()
            .find(|c| c.shape == best)
            .expect("best is a candidate");
        assert!((best_cost.total - min).abs() < 1e-12);
    }

    #[test]
    fn costs_vary_across_shapes() {
        let sub = cluster_sub();
        let (_, costs) = best_shape(&sub, &VprOptions::default()).expect("sweep runs");
        let min = costs.iter().map(|c| c.total).fold(f64::INFINITY, f64::min);
        let max = costs.iter().map(|c| c.total).fold(0.0f64, f64::max);
        assert!(
            max > min * 1.01,
            "shape choice should matter: {min} vs {max}"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let sub = cluster_sub();
        let a = evaluate_shape(&sub, ClusterShape::new(1.25, 0.8), &VprOptions::default());
        let b = evaluate_shape(&sub, ClusterShape::new(1.25, 0.8), &VprOptions::default());
        assert_eq!(a.expect("shape evaluates"), b.expect("shape evaluates"));
    }

    #[test]
    fn empty_subnetlist_is_a_typed_error() {
        let sub = cluster_sub();
        let err = evaluate_shape(
            &extract_subnetlist(&sub, &[]).expect("empty induction builds"),
            ClusterShape::UNIFORM,
            &VprOptions::default(),
        )
        .expect_err("no cells to place");
        assert!(matches!(err, FlowError::Validation(_)));
    }
}
