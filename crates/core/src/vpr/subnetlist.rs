//! Cluster sub-netlist induction (Figure 3, left).
//!
//! For a cluster's cell set, build a standalone netlist: internal nets are
//! copied; every inter-cluster net incident to the cluster gets an input
//! port (when the driver is outside) or an output port (when a sink is
//! outside), exactly as the paper describes.

use cp_netlist::netlist::{BuildNetlistError, Netlist, NetlistBuilder, PinRef, PortDir};
use cp_netlist::{CellId, HierTree};
use std::collections::HashMap;
use std::sync::Arc;

/// Induces the sub-netlist over `cells` (clock nets are dropped; CTS owns
/// them).
///
/// # Errors
///
/// [`BuildNetlistError`] when the projection is structurally invalid
/// (callers treat this as "cluster cannot be shaped" and fall back to the
/// uniform shape).
///
/// # Panics
///
/// Panics if `cells` contains duplicates.
pub fn extract_subnetlist(
    netlist: &Netlist,
    cells: &[CellId],
) -> Result<Netlist, BuildNetlistError> {
    let mut new_id = vec![u32::MAX; netlist.cell_count()];
    let mut builder =
        NetlistBuilder::new(format!("{}_sub", netlist.name()), netlist.library().clone());
    for (i, &c) in cells.iter().enumerate() {
        assert_eq!(new_id[c.index()], u32::MAX, "duplicate cell in cluster");
        let cell = netlist.cell(c);
        builder.add_cell(cell.name.clone(), cell.ty, HierTree::ROOT);
        new_id[c.index()] = i as u32;
    }
    let inside = |p: &PinRef| -> Option<PinRef> {
        match *p {
            PinRef::Cell { cell, pin } if new_id[cell.index()] != u32::MAX => Some(PinRef::Cell {
                cell: CellId(new_id[cell.index()]),
                pin,
            }),
            _ => None,
        }
    };
    for net in netlist.nets() {
        if net.is_clock {
            continue;
        }
        let driver_in = net.driver.as_ref().and_then(inside);
        let sinks_in: Vec<PinRef> = net.sinks.iter().filter_map(inside).collect();
        // Sinks lost in projection (cells outside the cluster or top ports)
        // make the net cross the boundary.
        let has_outside_sink = net.sinks.len() > sinks_in.len();
        match (driver_in, sinks_in.is_empty()) {
            (Some(driver), _) => {
                // Driver inside: keep internal sinks; an output port stands
                // in for any outside sinks.
                let mut sinks = sinks_in;
                if has_outside_sink {
                    let port = builder.add_port(format!("po_{}", net.name), PortDir::Output);
                    sinks.push(PinRef::Port(port));
                }
                builder.add_net(net.name.clone(), Some(driver), sinks);
            }
            (None, false) => {
                // Driver outside: an input port drives the internal sinks.
                let port = builder.add_port(format!("pi_{}", net.name), PortDir::Input);
                builder.add_net(net.name.clone(), Some(PinRef::Port(port)), sinks_in);
            }
            (None, true) => {} // net does not touch the cluster
        }
    }
    builder.finish()
}

/// Memoizes [`extract_subnetlist`] by cell set.
///
/// Dataset generation perturbs clustering hyperparameters and re-induces
/// every large cluster per configuration; the same cell sets recur across
/// configurations, so each distinct cluster is extracted exactly once.
/// Extractions are shared via `Arc`, so the 20-candidate shape grid (and
/// any parallel consumers) reuse one netlist without copies.
///
/// A cache instance is bound to one parent netlist: keys are cell-id
/// sets, so reusing it across designs would alias unrelated clusters.
#[derive(Debug, Default)]
pub struct SubnetlistCache {
    map: HashMap<Vec<u32>, Arc<Netlist>>,
    hits: usize,
    misses: usize,
}

impl SubnetlistCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized sub-netlist for `cells`, extracting on first
    /// sight.
    ///
    /// # Errors
    ///
    /// Same as [`extract_subnetlist`] (failed extractions are not cached).
    ///
    /// # Panics
    ///
    /// Panics if `cells` contains duplicates (as [`extract_subnetlist`]).
    pub fn get_or_extract(
        &mut self,
        netlist: &Netlist,
        cells: &[CellId],
    ) -> Result<Arc<Netlist>, BuildNetlistError> {
        let key: Vec<u32> = cells.iter().map(|c| c.0).collect();
        if let Some(sub) = self.map.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(sub));
        }
        let sub = Arc::new(extract_subnetlist(netlist, cells)?);
        self.misses += 1;
        self.map.insert(key, Arc::clone(&sub));
        Ok(sub)
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that had to extract.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn design() -> Netlist {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(6)
            .generate()
    }

    #[test]
    fn sub_netlist_covers_the_cells() {
        let n = design();
        let cells: Vec<CellId> = (0..100).map(CellId).collect();
        let sub = extract_subnetlist(&n, &cells).expect("valid sub-netlist");
        assert_eq!(sub.cell_count(), 100);
        // Masters preserved.
        for (i, &c) in cells.iter().enumerate() {
            assert_eq!(sub.master(CellId(i as u32)).name, n.master(c).name);
        }
    }

    #[test]
    fn boundary_nets_become_ports() {
        let n = design();
        let cells: Vec<CellId> = (0..50).map(CellId).collect();
        let sub = extract_subnetlist(&n, &cells).expect("valid sub-netlist");
        assert!(
            sub.port_count() > 0,
            "a 50-cell slice must touch outside nets"
        );
        // Every port is wired.
        for p in sub.ports() {
            assert!(p.net.is_some(), "port {} unconnected", p.name);
        }
    }

    #[test]
    fn whole_design_has_io_ports_only_for_real_io() {
        let n = design();
        let all: Vec<CellId> = (0..n.cell_count() as u32).map(CellId).collect();
        let sub = extract_subnetlist(&n, &all).expect("valid sub-netlist");
        assert_eq!(sub.cell_count(), n.cell_count());
        // The sub-netlist replaces real top ports with boundary ports; the
        // count matches the nets that touched a top port.
        let io_nets = n
            .nets()
            .iter()
            .filter(|net| {
                !net.is_clock
                    && (matches!(net.driver, Some(PinRef::Port(_)))
                        || net.sinks.iter().any(|s| matches!(s, PinRef::Port(_))))
            })
            .count();
        assert_eq!(sub.port_count(), io_nets);
    }

    #[test]
    fn clock_is_dropped() {
        let n = design();
        let all: Vec<CellId> = (0..n.cell_count() as u32).map(CellId).collect();
        let sub = extract_subnetlist(&n, &all).expect("valid sub-netlist");
        assert!(sub.nets().iter().all(|net| !net.is_clock));
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_cells_panic() {
        let n = design();
        let _ = extract_subnetlist(&n, &[CellId(0), CellId(0)]);
    }

    #[test]
    fn cache_extracts_each_cluster_once() {
        let n = design();
        let a: Vec<CellId> = (0..40).map(CellId).collect();
        let b: Vec<CellId> = (40..90).map(CellId).collect();
        let mut cache = SubnetlistCache::new();
        let s1 = cache.get_or_extract(&n, &a).expect("valid sub-netlist");
        let s2 = cache.get_or_extract(&n, &a).expect("valid sub-netlist");
        let s3 = cache.get_or_extract(&n, &b).expect("valid sub-netlist");
        assert!(Arc::ptr_eq(&s1, &s2), "repeat lookup must share");
        assert!(!Arc::ptr_eq(&s1, &s3));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        // Cached result matches a fresh extraction.
        let fresh = extract_subnetlist(&n, &a).expect("valid sub-netlist");
        assert_eq!(s1.cell_count(), fresh.cell_count());
        assert_eq!(s1.port_count(), fresh.port_count());
    }
}
