//! ML acceleration of V-P&R (Section 3.2, Figure 4).
//!
//! Feature extraction produces the paper's 28 logical node features — 2
//! design parameters, 17 cluster-level and 9 cell-level — with the
//! categorical cell type one-hot encoded over 8 classes, giving the 35-dim
//! convolution input of Figure 4. Training data comes from perturbing the
//! clustering hyperparameters and labeling every (cluster, shape) pair
//! with the exact V-P&R Total Cost; the trained GNN then replaces the 20
//! OpenROAD runs per cluster.

use crate::cluster::{ppa_aware_clustering, ClusteringOptions};
use crate::error::FlowError;
use crate::vpr::subnetlist::SubnetlistCache;
use crate::vpr::{best_shape, ClusterVpr, VprOptions};
use cp_gnn::model::{ModelConfig, TotalCostModel};
use cp_gnn::sample::GraphSample;
use cp_gnn::sparse::SparseSym;
use cp_gnn::tensor::Matrix;
use cp_gnn::train::{train, TrainOptions, TrainStats};
use cp_graph::{centrality, connectivity, metrics, Graph};
use cp_netlist::library::{CellClass, LogicFunction};
use cp_netlist::netlist::{Netlist, PinRef};
use cp_netlist::{CellId, ClusterShape, Constraints};

/// Number of cell-type one-hot classes.
pub const TYPE_CLASSES: usize = 8;
/// Total node feature width (2 + 17 + 8 + 8).
pub const FEATURE_DIM: usize = 35;

/// Exact Stoer–Wagner is cubic; above this node count the edge
/// connectivity feature falls back to the min-degree upper bound.
const EXACT_CONNECTIVITY_LIMIT: usize = 128;

/// Cell-type class for the one-hot feature.
pub fn type_class(f: LogicFunction) -> usize {
    use LogicFunction::*;
    match f {
        Inv => 0,
        Buf => 1,
        Nand2 | Nor2 => 2,
        And2 | Or2 => 3,
        Xor2 | Xnor2 | Xor3 => 4,
        Mux2 => 5,
        Aoi21 | Oai21 | Maj3 | Opaque => 6,
        Dff => 7,
    }
}

/// Shape-independent parts of a cluster's features, reusable across the 20
/// candidates.
#[derive(Debug, Clone)]
pub struct ClusterFeatures {
    adj: SparseSym,
    /// Rows: cells; cols: the 33 shape-independent features (slots 2..35).
    base: Matrix,
}

/// Extracts the shape-independent features of a cluster sub-netlist.
pub fn cluster_features(sub: &Netlist) -> ClusterFeatures {
    let n = sub.cell_count();
    // Cells-only projection of the connectivity.
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut n_pins = 0usize;
    let mut fan5_10 = 0usize;
    let mut fan_gt10 = 0usize;
    let mut internal = 0usize;
    let mut border = 0usize;
    let mut net_sizes = 0usize;
    let mut n_nets = 0usize;
    for net in sub.nets() {
        if net.is_clock {
            continue;
        }
        n_nets += 1;
        let fanout = net.sinks.len();
        n_pins += net.pin_count();
        net_sizes += net.pin_count();
        if (5..=10).contains(&fanout) {
            fan5_10 += 1;
        } else if fanout > 10 {
            fan_gt10 += 1;
        }
        let mut cells: Vec<u32> = Vec::new();
        let mut touches_port = false;
        for p in net.driver.iter().chain(net.sinks.iter()) {
            match *p {
                PinRef::Cell { cell, .. } => cells.push(cell.0),
                PinRef::Port(_) => touches_port = true,
            }
        }
        if touches_port {
            border += 1;
        } else {
            internal += 1;
        }
        cells.sort_unstable();
        cells.dedup();
        if cells.len() >= 2 && cells.len() <= 32 {
            let w = 1.0 / (cells.len() as f64 - 1.0);
            for i in 0..cells.len() {
                for j in (i + 1)..cells.len() {
                    edges.push((cells[i], cells[j], w));
                }
            }
        } else if cells.len() > 32 {
            let w = 1.0 / (cells.len() as f64 - 1.0);
            for &c in &cells[1..] {
                edges.push((cells[0], c, w));
            }
        }
    }
    let g = Graph::from_edges(n, &edges);

    // Whole-cluster metrics.
    let clust_coeffs = metrics::clustering_coefficients(&g);
    let avg_clust = if n == 0 {
        0.0
    } else {
        clust_coeffs.iter().sum::<f64>() / n as f64
    };
    let density = metrics::density(&g);
    let ecc = metrics::eccentricities(&g);
    let diameter = ecc.iter().copied().max().unwrap_or(0) as f64;
    let radius = ecc.iter().copied().min().unwrap_or(0) as f64;
    let efficiency = metrics::global_efficiency(&g);
    let (_, colors) = metrics::greedy_coloring(&g);
    let edge_conn = if n <= EXACT_CONNECTIVITY_LIMIT {
        connectivity::edge_connectivity(&g) as f64
    } else {
        (0..n as u32).map(|v| g.degree(v)).min().unwrap_or(0) as f64
    };
    let total_area: f64 = (0..n as u32).map(|c| sub.master(CellId(c)).area()).sum();
    let avg_deg = if n == 0 {
        0.0
    } else {
        (0..n as u32).map(|v| g.degree(v)).sum::<usize>() as f64 / n as f64
    };
    let avg_net_deg = if n_nets == 0 {
        0.0
    } else {
        net_sizes as f64 / n_nets as f64
    };
    let ln = |x: f64| (1.0 + x).ln();
    let cluster_feats: [f64; 17] = [
        ln(n as f64),
        ln(n_nets as f64),
        ln(n_pins as f64),
        ln(fan5_10 as f64),
        ln(fan_gt10 as f64),
        ln(internal as f64),
        ln(border as f64),
        ln(total_area),
        avg_deg / 10.0,
        avg_net_deg / 10.0,
        avg_clust,
        density,
        diameter / 10.0,
        radius / 10.0,
        ln(edge_conn),
        ln(colors as f64),
        efficiency,
    ];

    // Cell-level metrics.
    let betw = centrality::betweenness(&g);
    let close = centrality::closeness(&g);
    let deg_cent = centrality::degree_centrality(&g);
    let nb_deg = centrality::average_neighbor_degree(&g);

    let base = Matrix::from_fn(n, FEATURE_DIM - 2, |r, c| {
        let cell = CellId(r as u32);
        match c {
            0..=16 => cluster_feats[c],
            17 => ln(sub.master(cell).area()),
            18 => ln(g.degree(r as u32) as f64),
            19 => ln(nb_deg[r]),
            20 => betw[r],
            21 => close[r],
            22 => deg_cent[r],
            23 => clust_coeffs[r],
            24 => ecc[r] as f64 / 10.0,
            _ => {
                let class = if sub.master(cell).class == CellClass::ClockBuffer {
                    1
                } else {
                    type_class(sub.master(cell).function)
                };
                if c - 25 == class {
                    1.0
                } else {
                    0.0
                }
            }
        }
    });
    let adj = SparseSym::normalized_from_edges(n, &edges);
    ClusterFeatures { adj, base }
}

impl ClusterFeatures {
    /// Materializes the full 35-dim sample for one shape candidate.
    pub fn with_shape(&self, shape: ClusterShape) -> GraphSample {
        let n = self.base.rows;
        let features = Matrix::from_fn(n, FEATURE_DIM, |r, c| match c {
            0 => shape.utilization,
            1 => shape.aspect_ratio,
            _ => self.base.get(r, c - 2),
        });
        GraphSample {
            adj: self.adj.clone(),
            features,
        }
    }
}

/// Dataset generation settings.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Clustering-hyperparameter perturbations to run.
    pub configs: usize,
    /// Skip clusters smaller than this.
    pub min_cells: usize,
    /// Cap clusters drawn per configuration (0 = all).
    pub max_clusters_per_config: usize,
    /// Base clustering options to perturb.
    pub base: ClusteringOptions,
    /// V-P&R settings for labeling.
    pub vpr: VprOptions,
    /// Perturbation seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            configs: 4,
            min_cells: 50,
            max_clusters_per_config: 6,
            base: ClusteringOptions::default(),
            vpr: VprOptions::default(),
            seed: 23,
        }
    }
}

/// Generates labeled `(sample, Total Cost)` pairs the way the paper does:
/// perturb the clustering seed/coarsening hyperparameters, induce each
/// large-enough cluster's sub-netlist, and run exact V-P&R on all 20 shape
/// candidates.
///
/// # Errors
///
/// Propagates the first clustering or V-P&R failure ([`FlowError`]) —
/// label generation must not silently drop samples.
pub fn generate_dataset(
    netlist: &Netlist,
    constraints: &Constraints,
    config: &DatasetConfig,
) -> Result<Vec<(GraphSample, f64)>, FlowError> {
    let mut data = Vec::new();
    // Perturbed configurations frequently rediscover the same clusters;
    // the cache makes each distinct cluster's extraction a one-time cost.
    let mut cache = SubnetlistCache::new();
    for k in 0..config.configs {
        let perturbed = ClusteringOptions {
            seed: config.seed ^ (0x9E37_79B9 * (k as u64 + 1)),
            avg_cluster_size: config.base.avg_cluster_size * (2 + k % 3) / 2,
            alpha: config.base.alpha,
            beta: config.base.beta * (1.0 + k as f64 * 0.5),
            gamma: config.base.gamma * (1.0 + (k % 2) as f64),
            ..config.base
        };
        let clustering = ppa_aware_clustering(netlist, constraints, &perturbed)?;
        let mut members: Vec<Vec<CellId>> = vec![Vec::new(); clustering.cluster_count];
        for (i, &c) in clustering.assignment.iter().enumerate() {
            members[c as usize].push(CellId(i as u32));
        }
        members.retain(|m| m.len() >= config.min_cells);
        members.sort_by_key(|m| std::cmp::Reverse(m.len()));
        if config.max_clusters_per_config > 0 {
            members.truncate(config.max_clusters_per_config);
        }
        for cells in &members {
            let sub = cache.get_or_extract(netlist, cells)?;
            let feats = cluster_features(&sub);
            // Label the 20-candidate grid in parallel; validation and the
            // net count are hoisted into the context, and errors propagate
            // in candidate order like the serial loop did.
            let ctx = ClusterVpr::new(&sub)?;
            let candidates = ClusterShape::candidates();
            let costs =
                cp_parallel::par_map(&candidates, 1, |&shape| ctx.evaluate(shape, &config.vpr));
            for (&shape, cost) in candidates.iter().zip(costs) {
                data.push((feats.with_shape(shape), cost?.total));
            }
        }
    }
    Ok(data)
}

/// The trained shape selector.
///
/// Labels are standardized (z-scored) for training — our simulator's Total
/// Cost values span a much narrower range than the paper's, which starves
/// gradient descent — and de-standardized on prediction, so reported
/// MAE/R² stay in the raw label scale.
#[derive(Debug, Clone)]
pub struct MlShapeSelector {
    model: TotalCostModel,
    label_mean: f64,
    label_std: f64,
}

impl MlShapeSelector {
    /// Trains a fresh model on a labeled dataset; returns the selector and
    /// the training statistics (in the raw label scale).
    ///
    /// # Panics
    ///
    /// Panics if `dataset` is empty.
    pub fn train(
        dataset: &[(GraphSample, f64)],
        options: &TrainOptions,
        model_seed: u64,
    ) -> (Self, TrainStats) {
        assert!(!dataset.is_empty(), "empty dataset");
        let mean = dataset.iter().map(|(_, l)| l).sum::<f64>() / dataset.len() as f64;
        let var = dataset
            .iter()
            .map(|(_, l)| (l - mean) * (l - mean))
            .sum::<f64>()
            / dataset.len() as f64;
        let std = var.sqrt().max(1e-9);
        let standardized: Vec<(GraphSample, f64)> = dataset
            .iter()
            .map(|(s, l)| (s.clone(), (l - mean) / std))
            .collect();
        let mut model = TotalCostModel::new(&ModelConfig::default(), model_seed);
        let z_stats = train(&mut model, &standardized, options);
        let selector = Self {
            model,
            label_mean: mean,
            label_std: std,
        };
        // Re-express statistics in the raw label scale.
        let (train_mae, train_r2) = selector.evaluate(dataset);
        let stats = TrainStats {
            final_loss: z_stats.final_loss * std * std,
            train_mae,
            train_r2,
        };
        (selector, stats)
    }

    /// Wraps an already-trained model (no label rescaling).
    pub fn from_model(model: TotalCostModel) -> Self {
        Self {
            model,
            label_mean: 0.0,
            label_std: 1.0,
        }
    }

    /// The underlying model (predictions are in standardized space).
    pub fn model(&self) -> &TotalCostModel {
        &self.model
    }

    /// Predicted Total Cost per sample, in the raw label scale. Runs one
    /// batched forward pass over all samples (bit-identical to per-sample
    /// prediction, pinned by the `batched_forward` proptests in cp-gnn).
    pub fn predict_costs(&self, samples: &[GraphSample]) -> Vec<f64> {
        self.model
            .predict_batched(samples)
            .into_iter()
            .map(|z| z * self.label_std + self.label_mean)
            .collect()
    }

    /// `(MAE, R²)` of the selector on labeled data, in the raw scale.
    pub fn evaluate(&self, data: &[(GraphSample, f64)]) -> (f64, f64) {
        let (samples, labels): (Vec<_>, Vec<f64>) =
            data.iter().map(|(s, l)| (s.clone(), *l)).unzip();
        let pred = self.predict_costs(&samples);
        (
            cp_gnn::metrics::mae(&pred, &labels),
            cp_gnn::metrics::r2_score(&pred, &labels),
        )
    }

    /// Picks the best shape for a cluster by predicting Total Cost for all
    /// 20 candidates — the ML replacement for [`best_shape`].
    pub fn select_shape(&self, sub: &Netlist) -> ClusterShape {
        self.select_shapes_batched(&[sub])[0]
    }

    /// Picks the best shape for every cluster in one batched forward pass
    /// over all `clusters × 20` candidate samples. Feature extraction runs
    /// once per cluster (the 33 shape-independent columns are shared across
    /// the 20 candidates) and in parallel across clusters; selection is
    /// identical to calling [`Self::select_shape`] per cluster.
    pub fn select_shapes_batched(&self, subs: &[&Netlist]) -> Vec<ClusterShape> {
        let candidates = ClusterShape::candidates();
        self.predicted_candidate_costs(subs)
            .iter()
            .map(|costs| candidates[argmin(costs)])
            .collect()
    }

    /// Predicted Total Cost (raw label scale) for all 20 candidates of each
    /// cluster, scored in a single batched forward pass. Row order follows
    /// `subs`; column order follows [`ClusterShape::candidates`]. This is
    /// the surrogate ranking consumed by `ShapeMode::Hybrid`.
    pub fn predicted_candidate_costs(&self, subs: &[&Netlist]) -> Vec<Vec<f64>> {
        let candidates = ClusterShape::candidates();
        let _span = cp_trace::span_with(
            "vpr.surrogate_batch",
            &[
                ("clusters", cp_trace::ArgValue::U(subs.len() as u64)),
                (
                    "candidates",
                    cp_trace::ArgValue::U((subs.len() * candidates.len()) as u64),
                ),
            ],
        );
        let feats = cp_parallel::par_map(subs, 1, |sub| cluster_features(sub));
        let samples: Vec<GraphSample> = feats
            .iter()
            .flat_map(|f| candidates.iter().map(|&s| f.with_shape(s)))
            .collect();
        let pred = self.predict_costs(&samples);
        pred.chunks(candidates.len()).map(<[f64]>::to_vec).collect()
    }
}

/// Argmin with `total_cmp`: a NaN prediction (pathological model state)
/// orders last instead of poisoning the selection; ties break to the
/// earlier candidate.
fn argmin(costs: &[f64]) -> usize {
    let mut best = 0usize;
    for (i, p) in costs.iter().enumerate() {
        if p.total_cmp(&costs[best]).is_lt() {
            best = i;
        }
    }
    best
}

/// Convenience used by ablations: exact V-P&R selection.
///
/// # Errors
///
/// Propagates the [`best_shape`] failure.
pub fn select_shape_exact(sub: &Netlist, options: &VprOptions) -> Result<ClusterShape, FlowError> {
    Ok(best_shape(sub, options)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpr::extract_subnetlist;
    use cp_netlist::generator::{DesignProfile, GeneratorConfig};

    fn sub() -> Netlist {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(13)
            .generate();
        let cells: Vec<CellId> = (0..80).map(CellId).collect();
        extract_subnetlist(&n, &cells).expect("valid sub-netlist")
    }

    #[test]
    fn feature_dimensions() {
        let s = sub();
        let f = cluster_features(&s);
        let sample = f.with_shape(ClusterShape::UNIFORM);
        assert_eq!(sample.features.cols, FEATURE_DIM);
        assert_eq!(sample.features.rows, s.cell_count());
        // Shape params land in slots 0 and 1.
        assert_eq!(sample.features.get(0, 0), 0.90);
        assert_eq!(sample.features.get(0, 1), 1.0);
    }

    #[test]
    fn one_hot_is_exactly_one() {
        let s = sub();
        let f = cluster_features(&s).with_shape(ClusterShape::UNIFORM);
        for r in 0..f.features.rows {
            let sum: f64 = (27..35).map(|c| f.features.get(r, c)).sum();
            assert_eq!(sum, 1.0, "row {r} one-hot malformed");
        }
    }

    #[test]
    fn features_are_finite() {
        let s = sub();
        let f = cluster_features(&s).with_shape(ClusterShape::new(1.75, 0.75));
        for v in f.features.data() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn type_classes_cover_all_functions() {
        use LogicFunction::*;
        for f in [
            Buf, Inv, And2, Nand2, Or2, Nor2, Xor2, Xnor2, Mux2, Aoi21, Oai21, Maj3, Xor3, Dff,
            Opaque,
        ] {
            assert!(type_class(f) < TYPE_CLASSES);
        }
    }

    #[test]
    fn multi_cluster_batch_matches_per_cluster_scoring() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(13)
            .generate();
        let a: Vec<CellId> = (0..80).map(CellId).collect();
        let b: Vec<CellId> = (80..150).map(CellId).collect();
        let sub_a = extract_subnetlist(&n, &a).expect("valid sub-netlist");
        let sub_b = extract_subnetlist(&n, &b).expect("valid sub-netlist");
        let selector = MlShapeSelector::from_model(TotalCostModel::new(&ModelConfig::default(), 7));

        let batched = selector.predicted_candidate_costs(&[&sub_a, &sub_b]);
        assert_eq!(batched.len(), 2);
        for (sub, costs) in [(&sub_a, &batched[0]), (&sub_b, &batched[1])] {
            let feats = cluster_features(sub);
            let samples: Vec<GraphSample> = ClusterShape::candidates()
                .iter()
                .map(|&s| feats.with_shape(s))
                .collect();
            let solo = selector.predict_costs(&samples);
            assert_eq!(costs.len(), solo.len());
            for (x, y) in costs.iter().zip(&solo) {
                assert_eq!(x.to_bits(), y.to_bits(), "cross-cluster batching drifted");
            }
        }
        let shapes = selector.select_shapes_batched(&[&sub_a, &sub_b]);
        assert_eq!(shapes[0], selector.select_shape(&sub_a));
        assert_eq!(shapes[1], selector.select_shape(&sub_b));
    }

    #[test]
    fn tiny_dataset_trains_and_selects() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(14)
            .generate();
        let (nl, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(14)
            .generate_with_constraints();
        assert_eq!(n.cell_count(), nl.cell_count());
        let cfg = DatasetConfig {
            configs: 1,
            min_cells: 30,
            max_clusters_per_config: 2,
            base: ClusteringOptions {
                avg_cluster_size: 60,
                ..Default::default()
            },
            ..Default::default()
        };
        let data = generate_dataset(&nl, &c, &cfg).expect("dataset generates");
        assert!(!data.is_empty());
        assert_eq!(data.len() % 20, 0, "20 shapes per cluster");
        let (selector, stats) = MlShapeSelector::train(
            &data,
            &TrainOptions {
                epochs: 3,
                ..Default::default()
            },
            5,
        );
        assert!(stats.final_loss.is_finite());
        let s = sub();
        let shape = selector.select_shape(&s);
        assert!(ClusterShape::candidates().contains(&shape));
    }
}
