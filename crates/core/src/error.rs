//! Typed errors and recovery diagnostics for the end-to-end flow.
//!
//! [`FlowError`] is the single error type every public flow entry point
//! returns: it wraps the per-stage errors of the lower crates so a caller
//! can match on *which* stage rejected the input without stringly-typed
//! inspection. [`FlowDiagnostics`] is the other half of the story — events
//! the flow recovered from on its own (divergence reverts, shape
//! fallbacks, dropped regions) without failing the run.

use cp_netlist::netlist::BuildNetlistError;
use cp_netlist::ValidationError;
use cp_place::PlaceError;
use cp_resilience::{Interrupt, InterruptKind};
use cp_route::RouteError;
use cp_timing::TimingError;
use std::fmt;
use std::path::PathBuf;

/// Partial progress preserved when a run was interrupted (cancellation,
/// deadline, or memory budget): enough for a caller to report what
/// happened, keep the best placement seen, and resume from the last
/// checkpoint instead of restarting cold.
#[derive(Debug, Clone, PartialEq)]
pub struct InterruptedFlow {
    /// The interrupt that stopped the run (kind, site, elapsed, heap).
    pub interrupt: Interrupt,
    /// The stage that was executing or about to execute.
    pub stage: &'static str,
    /// Recoveries collected before the interruption.
    pub diagnostics: FlowDiagnostics,
    /// Best placement snapshot available at the interruption, if a placer
    /// had produced one.
    pub best: Option<cp_place::BestSnapshot>,
    /// The progressive checkpoint file, when checkpointing was enabled —
    /// it holds the last *completed* stage and is resumable.
    pub checkpoint: Option<PathBuf>,
}

/// Why the flow could not produce a [`crate::flow::FlowReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Pre-flight validation rejected the netlist, floorplan request or
    /// constraints before any stage ran.
    Validation(ValidationError),
    /// A sub-netlist induction produced a structurally invalid netlist.
    Subnetlist(BuildNetlistError),
    /// Global placement, legalization or CTS failed.
    Place(PlaceError),
    /// Static timing analysis failed (e.g. a combinational cycle).
    Timing(TimingError),
    /// Global routing failed.
    Route(RouteError),
    /// The run's `RunControl` was cancelled.
    Cancelled(Box<InterruptedFlow>),
    /// The run's deadline passed.
    DeadlineExceeded(Box<InterruptedFlow>),
    /// The run's memory budget was exceeded.
    BudgetExceeded(Box<InterruptedFlow>),
    /// A parallel worker panicked; the panic was contained by the pool and
    /// re-raised here as a typed error.
    WorkerPanic {
        /// Stage whose parallel region panicked.
        stage: &'static str,
        /// The contained panic's payload message.
        message: String,
    },
    /// A checkpoint could not be loaded (missing file, malformed or
    /// schema-invalid JSON, version or fingerprint mismatch).
    Checkpoint {
        /// What was wrong.
        reason: String,
    },
}

impl FlowError {
    /// Wraps an [`InterruptedFlow`] in the variant matching its kind.
    pub fn from_interrupted(flow: InterruptedFlow) -> Self {
        match flow.interrupt.kind {
            InterruptKind::Cancelled => Self::Cancelled(Box::new(flow)),
            InterruptKind::DeadlineExceeded => Self::DeadlineExceeded(Box::new(flow)),
            InterruptKind::BudgetExceeded => Self::BudgetExceeded(Box::new(flow)),
        }
    }

    /// The interruption details, when this error is an interrupt variant.
    pub fn interrupted(&self) -> Option<&InterruptedFlow> {
        match self {
            Self::Cancelled(i) | Self::DeadlineExceeded(i) | Self::BudgetExceeded(i) => Some(i),
            _ => None,
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Validation(e) => write!(f, "input validation failed: {e}"),
            Self::Subnetlist(e) => write!(f, "sub-netlist induction failed: {e}"),
            Self::Place(e) => write!(f, "placement failed: {e}"),
            Self::Timing(e) => write!(f, "timing analysis failed: {e}"),
            Self::Route(e) => write!(f, "routing failed: {e}"),
            Self::Cancelled(i) | Self::DeadlineExceeded(i) | Self::BudgetExceeded(i) => write!(
                f,
                "flow interrupted at stage '{}': {}{}",
                i.stage,
                i.interrupt,
                match &i.checkpoint {
                    Some(p) => format!(" (resumable checkpoint: {})", p.display()),
                    None => String::new(),
                }
            ),
            Self::WorkerPanic { stage, message } => {
                write!(f, "worker panicked during {stage}: {message}")
            }
            Self::Checkpoint { reason } => write!(f, "checkpoint unusable: {reason}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Validation(e) => Some(e),
            Self::Subnetlist(e) => Some(e),
            Self::Place(e) => Some(e),
            Self::Timing(e) => Some(e),
            Self::Route(e) => Some(e),
            Self::Cancelled(_)
            | Self::DeadlineExceeded(_)
            | Self::BudgetExceeded(_)
            | Self::WorkerPanic { .. }
            | Self::Checkpoint { .. } => None,
        }
    }
}

impl From<ValidationError> for FlowError {
    fn from(e: ValidationError) -> Self {
        Self::Validation(e)
    }
}

impl From<BuildNetlistError> for FlowError {
    fn from(e: BuildNetlistError) -> Self {
        Self::Subnetlist(e)
    }
}

impl From<PlaceError> for FlowError {
    fn from(e: PlaceError) -> Self {
        Self::Place(e)
    }
}

impl From<TimingError> for FlowError {
    fn from(e: TimingError) -> Self {
        Self::Timing(e)
    }
}

impl From<RouteError> for FlowError {
    fn from(e: RouteError) -> Self {
        Self::Route(e)
    }
}

/// One recovery the flow performed instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// The global placer diverged and its best finite snapshot was
    /// restored (`revert_if_diverge`).
    PlacerReverted {
        /// Which placement this was ("flat placement", "cluster
        /// placement", "congestion refinement").
        stage: &'static str,
    },
    /// V-P&R could not evaluate a cluster's sub-netlist; the cluster kept
    /// the uniform default shape.
    ShapeFallback {
        /// The cluster that fell back.
        cluster: u32,
    },
    /// An Innovus-style region constraint was infeasible (too small for
    /// its cluster's cell area after clamping to the core) and was
    /// dropped.
    RegionDropped {
        /// The cluster whose region was dropped.
        cluster: u32,
    },
    /// The run's [`cp_resilience::RunControl`] was cancelled (recorded
    /// when an interrupted run still produced a partial artifact).
    Cancelled {
        /// The check site that observed the cancellation.
        site: &'static str,
    },
    /// The run's deadline passed (recorded when an interrupted run still
    /// produced a partial artifact).
    DeadlineExceeded {
        /// The check site that observed the expiry.
        site: &'static str,
    },
    /// A stage checkpoint was written.
    CheckpointWritten {
        /// The completed stage the checkpoint captures.
        stage: &'static str,
    },
    /// The flow resumed from a checkpoint instead of recomputing.
    Resumed {
        /// The last completed stage restored from the checkpoint.
        stage: &'static str,
    },
}

impl RecoveryEvent {
    /// `true` for resilience bookkeeping events (checkpoints, resumes):
    /// they describe *how* the run executed, not what it computed, so
    /// deterministic-equality comparisons between a clean run and a
    /// resumed run must ignore them (see
    /// [`crate::flow::FlowReport::deterministic_eq`]).
    pub fn is_bookkeeping(&self) -> bool {
        matches!(self, Self::CheckpointWritten { .. } | Self::Resumed { .. })
    }
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PlacerReverted { stage } => {
                write!(f, "{stage} diverged; reverted to the best snapshot")
            }
            Self::ShapeFallback { cluster } => {
                write!(f, "cluster {cluster}: V-P&R failed, kept the uniform shape")
            }
            Self::RegionDropped { cluster } => {
                write!(f, "cluster {cluster}: infeasible region constraint dropped")
            }
            Self::Cancelled { site } => write!(f, "cancelled at {site}"),
            Self::DeadlineExceeded { site } => write!(f, "deadline exceeded at {site}"),
            Self::CheckpointWritten { stage } => {
                write!(f, "checkpoint written after {stage}")
            }
            Self::Resumed { stage } => write!(f, "resumed from checkpoint at {stage}"),
        }
    }
}

/// Default cap on stored [`FlowDiagnostics`] events (see
/// [`crate::flow::FlowOptions::diagnostics_limit`]).
pub const DEFAULT_DIAGNOSTICS_LIMIT: usize = 256;

/// Recovery events collected over one flow run, reported on
/// [`crate::flow::FlowReport::diagnostics`]. Storage is capped so a
/// pathological run (or many runs recording into a reused struct) cannot
/// grow without bound: past the limit, events are counted in `dropped`
/// (and in the `flow.diagnostics.dropped` metric) instead of stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDiagnostics {
    /// Stored recoveries, in pipeline order (at most the configured limit).
    pub events: Vec<RecoveryEvent>,
    /// Recoveries that happened but were not stored because the cap was
    /// reached.
    pub dropped: usize,
    limit: usize,
}

impl Default for FlowDiagnostics {
    fn default() -> Self {
        Self::with_limit(DEFAULT_DIAGNOSTICS_LIMIT)
    }
}

impl FlowDiagnostics {
    /// An empty collection storing at most `limit` events.
    pub fn with_limit(limit: usize) -> Self {
        Self {
            events: Vec::new(),
            dropped: 0,
            limit,
        }
    }

    /// `true` when the flow ran without any recovery (stored or dropped).
    pub fn is_clean(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Records one recovery event, dropping (but counting) it past the
    /// configured limit. Each recovery is also mirrored to the trace as
    /// an instant event so it shows up on the timeline where it fired.
    pub fn record(&mut self, event: RecoveryEvent) {
        match &event {
            RecoveryEvent::PlacerReverted { .. } => {
                cp_trace::instant("recovery.placer_reverted", &[]);
            }
            RecoveryEvent::ShapeFallback { cluster } => cp_trace::instant(
                "recovery.shape_fallback",
                &[("cluster", cp_trace::ArgValue::U(*cluster as u64))],
            ),
            RecoveryEvent::RegionDropped { cluster } => cp_trace::instant(
                "recovery.region_dropped",
                &[("cluster", cp_trace::ArgValue::U(*cluster as u64))],
            ),
            RecoveryEvent::Cancelled { site } => cp_trace::instant(
                "recovery.cancelled",
                &[("site", cp_trace::ArgValue::S(site))],
            ),
            RecoveryEvent::DeadlineExceeded { site } => cp_trace::instant(
                "recovery.deadline_exceeded",
                &[("site", cp_trace::ArgValue::S(site))],
            ),
            RecoveryEvent::CheckpointWritten { stage } => cp_trace::instant(
                "recovery.checkpoint_written",
                &[("stage", cp_trace::ArgValue::S(stage))],
            ),
            RecoveryEvent::Resumed { stage } => cp_trace::instant(
                "recovery.resumed",
                &[("stage", cp_trace::ArgValue::S(stage))],
            ),
        }
        if self.events.len() < self.limit {
            self.events.push(event);
        } else {
            self.dropped += 1;
            cp_trace::counter_add("flow.diagnostics.dropped", 1);
        }
    }

    /// Replaces the stored events with ones restored from a checkpoint,
    /// without re-emitting their trace instants (they belong to the run
    /// that recorded them, not this one).
    pub fn restore(&mut self, events: Vec<RecoveryEvent>, dropped: usize) {
        self.events = events;
        self.dropped = dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_tag_the_stage() {
        let e: FlowError = ValidationError::EmptyNetlist.into();
        assert!(matches!(e, FlowError::Validation(_)));
        let e: FlowError = PlaceError::NonFinite { stage: "legalize" }.into();
        assert!(matches!(e, FlowError::Place(_)));
        let e: FlowError = TimingError::CombinationalCycle { unresolved_nets: 2 }.into();
        assert!(matches!(e, FlowError::Timing(_)));
        let e: FlowError = RouteError::NonFinitePin { net: 7 }.into();
        assert!(matches!(e, FlowError::Route(_)));
    }

    #[test]
    fn display_names_the_stage() {
        let e = FlowError::from(ValidationError::EmptyNetlist);
        assert!(e.to_string().contains("validation"));
        let e = FlowError::from(RouteError::NonFinitePin { net: 0 });
        assert!(e.to_string().contains("routing"));
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = FlowError::from(PlaceError::Diverged {
            iteration: 3,
            best_hpwl: 10.0,
        });
        assert!(e.source().is_some());
    }

    #[test]
    fn diagnostics_collect_events() {
        let mut d = FlowDiagnostics::default();
        assert!(d.is_clean());
        d.record(RecoveryEvent::PlacerReverted {
            stage: "flat placement",
        });
        d.record(RecoveryEvent::ShapeFallback { cluster: 3 });
        assert!(!d.is_clean());
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.dropped, 0);
        assert!(d.events[0].to_string().contains("diverged"));
    }

    #[test]
    fn diagnostics_cap_drops_and_counts() {
        let mut d = FlowDiagnostics::with_limit(2);
        for c in 0..5 {
            d.record(RecoveryEvent::ShapeFallback { cluster: c });
        }
        assert_eq!(d.events.len(), 2, "cap holds");
        assert_eq!(d.dropped, 3);
        assert!(!d.is_clean(), "dropped events still count as recoveries");
        // A zero limit stores nothing but still counts.
        let mut z = FlowDiagnostics::with_limit(0);
        z.record(RecoveryEvent::RegionDropped { cluster: 1 });
        assert!(z.events.is_empty());
        assert_eq!(z.dropped, 1);
        assert!(!z.is_clean());
    }
}
