//! Canonical stage and span names for the flow.
//!
//! One constant per pipeline stage, shared by the trace spans, the
//! [`StageTimings`](crate::flow::StageTimings) labels and the recovery
//! events — so the flat and clustered paths can never drift apart on
//! labels again, and trace-derived timings line up with the
//! `timings.get(...)` keys benches already use.

/// Root span of the flat (default) flow.
pub const FLOW_FLAT: &str = "flow.flat";
/// Root span of the clustered flow (Algorithm 1).
pub const FLOW_CLUSTERED: &str = "flow.clustered";

/// PPA-aware clustering (incl. STA/activity extraction).
pub const CLUSTERING: &str = "clustering";
/// Cluster shape selection (V-P&R sweep / surrogate / hybrid).
pub const SHAPING: &str = "shaping";
/// Placement of the clustered netlist (seed positions).
pub const CLUSTER_PLACEMENT: &str = "cluster placement";
/// Flat placement (seeded in the clustered flow, from scratch in the
/// default flow).
pub const FLAT_PLACEMENT: &str = "flat placement";
/// Legalization + detailed refinement.
pub const LEGALIZE_REFINE: &str = "legalize+refine";
/// CTS, global routing, post-route STA and power.
pub const PPA: &str = "ppa";
/// Congestion-driven refinement pass (recovery-event label; its time is
/// part of [`FLAT_PLACEMENT`]).
pub const CONGESTION_REFINEMENT: &str = "congestion refinement";

/// Every per-stage timing label, in pipeline order. Trace-derived
/// [`StageTimings`](crate::flow::StageTimings) are filtered to this set.
pub const ALL: [&str; 6] = [
    CLUSTERING,
    SHAPING,
    CLUSTER_PLACEMENT,
    FLAT_PLACEMENT,
    LEGALIZE_REFINE,
    PPA,
];

/// Span wrapping one cluster's shape search (args: `cluster`, `ranker`).
pub const SPAN_VPR_CLUSTER: &str = "vpr.cluster";
/// Span wrapping one cluster×candidate evaluation (args: `ar`, `util`,
/// `verdict` ∈ exact/proxy/screening).
pub const SPAN_VPR_CANDIDATE: &str = "vpr.candidate";
