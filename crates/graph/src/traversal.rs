//! Breadth-first traversal, shortest paths and connected components.

use crate::Graph;
use std::collections::VecDeque;

/// Unreachable marker returned by [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `source` to every node (`UNREACHABLE` if disconnected).
///
/// # Examples
///
/// ```
/// use cp_graph::{Graph, traversal};
///
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0)]);
/// let d = traversal::bfs_distances(&g, 0);
/// assert_eq!(d[2], 2);
/// assert_eq!(d[3], traversal::UNREACHABLE);
/// ```
pub fn bfs_distances(g: &Graph, source: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &(v, _) in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Labels connected components; returns `(labels, component_count)`.
///
/// Labels are dense in `0..component_count` and assigned in order of the
/// smallest node index in each component.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = next;
        queue.push_back(start as u32);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in g.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Returns `true` if the graph is connected (vacuously true when empty).
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() == 0 || connected_components(g).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path_graph() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
        assert!(is_connected(&Graph::from_edges(2, &[(0, 1, 1.0)])));
    }
}
