//! Global minimum cut / edge connectivity via the Stoer–Wagner algorithm.

use crate::Graph;

/// Weighted global minimum cut (Stoer–Wagner).
///
/// Returns the total weight of the lightest cut separating the graph into
/// two non-empty sides. Returns `0.0` for graphs with fewer than two nodes
/// or for disconnected graphs.
///
/// # Examples
///
/// ```
/// use cp_graph::{Graph, connectivity};
///
/// // Two triangles joined by a single bridge of weight 1.
/// let g = Graph::from_edges(6, &[
///     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
///     (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
///     (2, 3, 1.0),
/// ]);
/// assert_eq!(connectivity::min_cut(&g), 1.0);
/// ```
pub fn min_cut(g: &Graph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    // Dense weight matrix; clusters passed to this are small (GNN features).
    let mut w = vec![vec![0.0f64; n]; n];
    for (u, v, weight) in g.edges() {
        if u != v {
            w[u as usize][v as usize] += weight;
            w[v as usize][u as usize] += weight;
        }
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    while active.len() > 1 {
        let m = active.len();
        let mut weights = vec![0.0f64; m];
        let mut added = vec![false; m];
        let mut prev = 0usize;
        let mut last = 0usize;
        for it in 0..m {
            let mut sel = usize::MAX;
            for i in 0..m {
                if !added[i] && (sel == usize::MAX || weights[i] > weights[sel]) {
                    sel = i;
                }
            }
            added[sel] = true;
            if it == m - 1 {
                // Cut-of-the-phase: weight of `sel` to the rest.
                best = best.min(weights[sel]);
                // Merge `sel` into `prev`.
                let (a, b) = (active[prev], active[sel]);
                for &node in &active {
                    w[a][node] += w[b][node];
                    w[node][a] += w[node][b];
                }
                last = sel;
            } else {
                prev = sel;
                for i in 0..m {
                    if !added[i] {
                        weights[i] += w[active[sel]][active[i]];
                    }
                }
            }
        }
        active.remove(last);
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// Edge connectivity of an unweighted view of the graph: the Stoer–Wagner
/// minimum cut with all edge weights treated as 1.
pub fn edge_connectivity(g: &Graph) -> u32 {
    let unit = Graph::from_edges(
        g.node_count(),
        &g.edges()
            .filter(|&(u, v, _)| u != v)
            .map(|(u, v, _)| (u, v, 1.0))
            .collect::<Vec<_>>(),
    );
    min_cut(&unit).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_has_connectivity_two() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        assert_eq!(edge_connectivity(&g), 2);
    }

    #[test]
    fn path_has_connectivity_one() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(edge_connectivity(&g), 1);
    }

    #[test]
    fn complete_graph_connectivity() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v, 1.0));
            }
        }
        let g = Graph::from_edges(5, &edges);
        assert_eq!(edge_connectivity(&g), 4);
    }

    #[test]
    fn disconnected_graph_cut_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert_eq!(min_cut(&g), 0.0);
    }

    #[test]
    fn weighted_cut_prefers_light_bridge() {
        let g = Graph::from_edges(4, &[(0, 1, 10.0), (1, 2, 0.5), (2, 3, 10.0)]);
        assert!((min_cut(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(min_cut(&Graph::new(0)), 0.0);
        assert_eq!(min_cut(&Graph::new(1)), 0.0);
    }
}
