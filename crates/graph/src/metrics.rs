//! Whole-graph metrics used as GNN cluster-level features.
//!
//! The paper's cluster-level feature set (Section 3.2) includes the average
//! clustering coefficient, density, diameter, radius, edge connectivity,
//! number of colors used by greedy coloring, and average global efficiency.

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::Graph;

/// Local clustering coefficient of every node.
///
/// `C(u) = 2 · triangles(u) / (deg(u) · (deg(u) - 1))`, 0 when `deg(u) < 2`.
/// Self-loops are ignored.
pub fn clustering_coefficients(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0; n];
    for u in 0..n as u32 {
        let neigh: Vec<u32> = g
            .neighbors(u)
            .iter()
            .map(|&(v, _)| v)
            .filter(|&v| v != u)
            .collect();
        let k = neigh.len();
        if k < 2 {
            continue;
        }
        let mut triangles = 0usize;
        for i in 0..k {
            for j in (i + 1)..k {
                if g.has_edge(neigh[i], neigh[j]) {
                    triangles += 1;
                }
            }
        }
        out[u as usize] = 2.0 * triangles as f64 / (k * (k - 1)) as f64;
    }
    out
}

/// Average of the local clustering coefficients (0 for an empty graph).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    clustering_coefficients(g).iter().sum::<f64>() / n as f64
}

/// Graph density `2m / (n(n-1))`, self-loops excluded; 0 for `n < 2`.
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    let m = g.edges().filter(|&(u, v, _)| u != v).count();
    2.0 * m as f64 / (n * (n - 1)) as f64
}

/// Hop eccentricity of every node (`u32::MAX` on disconnected graphs is
/// clamped to the largest finite distance within the node's component).
pub fn eccentricities(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut out = vec![0u32; n];
    for u in 0..n as u32 {
        let dist = bfs_distances(g, u);
        out[u as usize] = dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0);
    }
    out
}

/// `(diameter, radius)` in hops, computed per-component-max /-min over the
/// finite eccentricities. `(0, 0)` for empty graphs.
pub fn diameter_radius(g: &Graph) -> (u32, u32) {
    let ecc = eccentricities(g);
    let diameter = ecc.iter().copied().max().unwrap_or(0);
    let radius = ecc.iter().copied().min().unwrap_or(0);
    (diameter, radius)
}

/// Average global efficiency: mean of `1/d(u,v)` over all ordered pairs,
/// with `1/∞ = 0` for disconnected pairs. 0 for `n < 2`.
pub fn global_efficiency(g: &Graph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for u in 0..n as u32 {
        let dist = bfs_distances(g, u);
        for (v, &d) in dist.iter().enumerate() {
            if v as u32 != u && d != UNREACHABLE && d > 0 {
                sum += 1.0 / d as f64;
            }
        }
    }
    sum / (n * (n - 1)) as f64
}

/// Greedy (first-fit, descending-degree order) vertex coloring.
///
/// Returns `(colors, color_count)` — the assignment and the number of
/// colors used. Self-loops are ignored.
pub fn greedy_coloring(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
    let mut colors = vec![u32::MAX; n];
    let mut max_color = 0u32;
    let mut used = vec![false; n + 1];
    for &u in &order {
        for &(v, _) in g.neighbors(u) {
            let c = colors[v as usize];
            if c != u32::MAX {
                used[c as usize] = true;
            }
        }
        let mut c = 0u32;
        while used[c as usize] {
            c += 1;
        }
        colors[u as usize] = c;
        max_color = max_color.max(c);
        for &(v, _) in g.neighbors(u) {
            let cv = colors[v as usize];
            if cv != u32::MAX {
                used[cv as usize] = false;
            }
        }
    }
    let count = if n == 0 { 0 } else { max_color as usize + 1 };
    (colors, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
    }

    #[test]
    fn triangle_clusters_perfectly() {
        let c = clustering_coefficients(&triangle());
        assert_eq!(c, vec![1.0, 1.0, 1.0]);
        assert_eq!(average_clustering(&triangle()), 1.0);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        assert!((density(&triangle()) - 1.0).abs() < 1e-12);
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        assert!((density(&g) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_radius_of_path() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(diameter_radius(&g), (3, 2));
    }

    #[test]
    fn efficiency_of_complete_graph_is_one() {
        assert!((global_efficiency(&triangle()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_of_disconnected_pairs_is_zero() {
        assert_eq!(global_efficiency(&Graph::new(3)), 0.0);
    }

    #[test]
    fn coloring_is_proper_and_small() {
        let g = triangle();
        let (colors, k) = greedy_coloring(&g);
        assert_eq!(k, 3);
        for (u, v, _) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
        // A bipartite path needs two colors.
        let p = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let (pc, pk) = greedy_coloring(&p);
        assert_eq!(pk, 2);
        for (u, v, _) in p.edges() {
            assert_ne!(pc[u as usize], pc[v as usize]);
        }
    }

    #[test]
    fn empty_graph_metrics() {
        let g = Graph::new(0);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(density(&g), 0.0);
        assert_eq!(diameter_radius(&g), (0, 0));
        assert_eq!(greedy_coloring(&g).1, 0);
    }
}
