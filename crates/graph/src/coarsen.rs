//! Multi-level graph coarsening (heavy-edge matching) and the
//! coarsen–uncoarsen wrapper for community detection.
//!
//! Louvain/Leiden cost grows with the node count per level; at 10⁵–10⁶
//! nodes the first local-moving pass dominates the whole clustering
//! stage. The standard remedy (hMETIS, TritonPart) is multi-level: shrink
//! the graph by deterministic heavy-edge matching until it fits a size
//! threshold, detect communities on the coarse graph, and project the
//! labels back through the matching hierarchy. Matching merges only
//! strongly-connected pairs, which is exactly the signal modularity
//! clustering follows, so quality loss is small while the detection cost
//! drops by the coarsening factor per level.

use crate::community::{self, CommunityOptions};
use crate::Graph;

/// Options for [`coarsen_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoarsenOptions {
    /// Stop coarsening once the node count is at or below this.
    pub threshold: usize,
    /// Hard cap on matching levels (a level that stops shrinking also
    /// terminates the loop).
    pub max_levels: usize,
}

impl Default for CoarsenOptions {
    fn default() -> Self {
        Self {
            threshold: 50_000,
            max_levels: 16,
        }
    }
}

/// One greedy heavy-edge matching pass. Returns a dense coarse id per
/// node and the coarse node count.
///
/// Nodes are visited in index order; an unmatched node pairs with its
/// heaviest unmatched neighbor (ties broken toward the smaller id).
/// Deterministic by construction — no RNG, no hashing.
pub fn heavy_edge_matching(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.node_count();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    // Visit heaviest-edge-first (ties by id) so strong pairs claim each
    // other before a weakly-connected earlier node can steal an endpoint.
    let heaviest: Vec<f64> = (0..n as u32)
        .map(|u| {
            g.neighbors(u)
                .iter()
                .filter(|&&(v, _)| v != u)
                .map(|&(_, w)| w)
                .fold(0.0, f64::max)
        })
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        heaviest[b as usize]
            .total_cmp(&heaviest[a as usize])
            .then(a.cmp(&b))
    });
    for u in order {
        if mate[u as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(f64, u32)> = None;
        for &(v, w) in g.neighbors(u) {
            if v == u || mate[v as usize] != UNMATCHED {
                continue;
            }
            match best {
                Some((bw, bv)) if w < bw || (w == bw && v >= bv) => {}
                _ => best = Some((w, v)),
            }
        }
        if let Some((_, v)) = best {
            mate[u as usize] = v;
            mate[v as usize] = u;
        }
    }
    // Coarse ids in first-appearance order: a matched pair shares the id
    // minted when its smaller endpoint is visited.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for u in 0..n {
        if map[u] != UNMATCHED {
            continue;
        }
        map[u] = next;
        let v = mate[u];
        if v != UNMATCHED {
            map[v as usize] = next;
        }
        next += 1;
    }
    (map, next as usize)
}

/// Aggregates `g` by the node map `map` (into `k` coarse nodes), merging
/// parallel edges and keeping intra-group weight as self-loops — the same
/// contraction community aggregation uses, so modularity is preserved.
pub fn contract(g: &Graph, map: &[u32], k: usize) -> Graph {
    let mut coarse = Graph::new(k);
    for (u, v, w) in g.edges() {
        coarse.add_edge(map[u as usize], map[v as usize], w);
    }
    coarse.merge_parallel_edges();
    coarse
}

/// Coarsens `g` by repeated heavy-edge matching until it has at most
/// `opts.threshold` nodes (or a level stops shrinking).
///
/// Returns the coarse graph, the composed original-node → coarse-node
/// map, and the number of matching levels applied (0 when `g` is already
/// small enough — the returned graph is then a clone of `g`).
pub fn coarsen_to(g: &Graph, opts: &CoarsenOptions) -> (Graph, Vec<u32>, usize) {
    let n = g.node_count();
    let mut composed: Vec<u32> = (0..n as u32).collect();
    let mut current = g.clone();
    let mut levels = 0usize;
    while current.node_count() > opts.threshold && levels < opts.max_levels {
        let (map, k) = heavy_edge_matching(&current);
        if k == current.node_count() {
            break; // nothing matched; a further pass cannot shrink either
        }
        for id in composed.iter_mut() {
            *id = map[*id as usize];
        }
        current = contract(&current, &map, k);
        levels += 1;
    }
    (current, composed, levels)
}

/// Louvain through the multi-level wrapper: coarsen to
/// `opts.threshold` nodes, detect on the coarse graph, project back.
///
/// Below the threshold this is exactly [`community::louvain`] (zero
/// levels, same labels bit for bit). Returns `(labels, modularity)` with
/// the modularity evaluated on the *original* graph.
pub fn louvain_multilevel(
    g: &Graph,
    copts: &CommunityOptions,
    opts: &CoarsenOptions,
) -> (Vec<u32>, f64) {
    project_communities(g, opts, |coarse| community::louvain(coarse, copts))
}

/// Leiden through the multi-level wrapper (see [`louvain_multilevel`]).
pub fn leiden_multilevel(
    g: &Graph,
    copts: &CommunityOptions,
    opts: &CoarsenOptions,
) -> (Vec<u32>, f64) {
    project_communities(g, opts, |coarse| community::leiden(coarse, copts))
}

/// The generic coarsen–detect–project wrapper: any community detector
/// that labels the coarse graph can run under it.
pub fn project_communities(
    g: &Graph,
    opts: &CoarsenOptions,
    detect: impl FnOnce(&Graph) -> (Vec<u32>, f64),
) -> (Vec<u32>, f64) {
    let _span = cp_trace::span_with(
        "graph.coarsen",
        &[("nodes", cp_trace::ArgValue::U(g.node_count() as u64))],
    );
    let (coarse, map, levels) = coarsen_to(g, opts);
    if cp_trace::telemetry_enabled() {
        cp_trace::observe("graph.coarsen.levels", levels as f64);
    }
    if levels == 0 {
        return detect(g);
    }
    let (coarse_labels, _) = detect(&coarse);
    let mut labels: Vec<u32> = map.iter().map(|&id| coarse_labels[id as usize]).collect();
    community::compact_labels(&mut labels);
    let q = community::modularity(g, &labels);
    (labels, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        Graph::from_edges(
            8,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (4, 5, 1.0),
                (4, 6, 1.0),
                (4, 7, 1.0),
                (5, 6, 1.0),
                (5, 7, 1.0),
                (6, 7, 1.0),
                (3, 4, 0.1),
            ],
        )
    }

    #[test]
    fn matching_halves_a_path() {
        // 0-1-2-3 path: 0 matches 1, 2 matches 3.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let (map, k) = heavy_edge_matching(&g);
        assert_eq!(k, 2);
        assert_eq!(map, vec![0, 0, 1, 1]);
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Triangle with one heavy edge: the heavy pair must match.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 5.0), (0, 2, 1.0)]);
        let (map, k) = heavy_edge_matching(&g);
        assert_eq!(k, 2);
        assert_eq!(map[1], map[2]);
        assert_ne!(map[0], map[1]);
    }

    #[test]
    fn contract_preserves_total_weight() {
        let g = two_cliques();
        let (map, k) = heavy_edge_matching(&g);
        let c = contract(&g, &map, k);
        assert!((c.total_weight() - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn coarsen_to_respects_threshold() {
        let g = two_cliques();
        let (coarse, map, levels) = coarsen_to(
            &g,
            &CoarsenOptions {
                threshold: 3,
                max_levels: 16,
            },
        );
        assert!(coarse.node_count() <= 4, "{}", coarse.node_count());
        assert!(levels >= 1);
        assert_eq!(map.len(), 8);
        assert!(map.iter().all(|&m| (m as usize) < coarse.node_count()));
    }

    #[test]
    fn below_threshold_is_identity() {
        let g = two_cliques();
        let copts = CommunityOptions::default();
        let direct = community::louvain(&g, &copts);
        let wrapped = louvain_multilevel(
            &g,
            &copts,
            &CoarsenOptions {
                threshold: 100,
                max_levels: 16,
            },
        );
        assert_eq!(direct.0, wrapped.0);
        assert_eq!(direct.1.to_bits(), wrapped.1.to_bits());
    }

    #[test]
    fn multilevel_still_finds_the_cliques() {
        let g = two_cliques();
        let opts = CoarsenOptions {
            threshold: 4,
            max_levels: 16,
        };
        for (labels, q) in [
            louvain_multilevel(&g, &CommunityOptions::default(), &opts),
            leiden_multilevel(&g, &CommunityOptions::default(), &opts),
        ] {
            assert_eq!(labels[0], labels[3]);
            assert_eq!(labels[4], labels[7]);
            assert_ne!(labels[0], labels[4]);
            assert!(q > 0.3, "q = {q}");
        }
    }

    #[test]
    fn multilevel_is_deterministic() {
        let g = two_cliques();
        let opts = CoarsenOptions {
            threshold: 2,
            max_levels: 16,
        };
        let a = louvain_multilevel(&g, &CommunityOptions::default(), &opts);
        let b = louvain_multilevel(&g, &CommunityOptions::default(), &opts);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
}
