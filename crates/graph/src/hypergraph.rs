//! Weighted hypergraphs and clique expansion.

use crate::Graph;

/// A weighted hypergraph over vertices `0..n`.
///
/// Hyperedges are stored as vertex lists with a scalar weight. Incidence
/// lists (vertex → hyperedges) are built lazily on construction.
///
/// # Examples
///
/// ```
/// use cp_graph::Hypergraph;
///
/// let h = Hypergraph::new(4, vec![(vec![0, 1, 2], 1.0), (vec![2, 3], 2.0)]);
/// assert_eq!(h.vertex_count(), 4);
/// assert_eq!(h.edge_count(), 2);
/// assert_eq!(h.incident(2), &[0, 1]);
/// assert_eq!(h.pin_count(), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Hypergraph {
    vertex_count: usize,
    edges: Vec<Vec<u32>>,
    weights: Vec<f64>,
    incidence: Vec<Vec<u32>>,
}

impl Hypergraph {
    /// Builds a hypergraph from `(vertices, weight)` hyperedges.
    ///
    /// Hyperedges with fewer than one vertex are kept (degenerate but legal);
    /// duplicate vertices within a hyperedge are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any vertex index is `>= vertex_count`.
    pub fn new(vertex_count: usize, edges: Vec<(Vec<u32>, f64)>) -> Self {
        let mut incidence = vec![Vec::new(); vertex_count];
        let mut edge_lists = Vec::with_capacity(edges.len());
        let mut weights = Vec::with_capacity(edges.len());
        for (eid, (mut verts, w)) in edges.into_iter().enumerate() {
            verts.sort_unstable();
            verts.dedup();
            for &v in &verts {
                assert!(
                    (v as usize) < vertex_count,
                    "vertex {v} out of range (n = {vertex_count})"
                );
                incidence[v as usize].push(eid as u32);
            }
            edge_lists.push(verts);
            weights.push(w);
        }
        Self {
            vertex_count,
            edges: edge_lists,
            weights,
            incidence,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total number of pins (vertex–hyperedge incidences).
    pub fn pin_count(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// The vertices of hyperedge `e`.
    pub fn edge(&self, e: u32) -> &[u32] {
        &self.edges[e as usize]
    }

    /// The weight of hyperedge `e`.
    pub fn weight(&self, e: u32) -> f64 {
        self.weights[e as usize]
    }

    /// Hyperedges incident to vertex `v`.
    pub fn incident(&self, v: u32) -> &[u32] {
        &self.incidence[v as usize]
    }

    /// Degree of vertex `v` (number of incident hyperedges).
    pub fn degree(&self, v: u32) -> usize {
        self.incidence[v as usize].len()
    }

    /// Average vertex degree (0 for empty hypergraphs).
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count == 0 {
            0.0
        } else {
            self.pin_count() as f64 / self.vertex_count as f64
        }
    }

    /// Average hyperedge size (0 when there are no edges).
    pub fn average_edge_size(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.pin_count() as f64 / self.edges.len() as f64
        }
    }

    /// Standard clique expansion: every hyperedge `e` contributes a clique
    /// over its vertices with per-pair weight `w_e / (|e| - 1)` [16].
    ///
    /// Single-vertex hyperedges contribute nothing. Parallel clique edges
    /// are merged by weight summation.
    pub fn clique_expansion(&self) -> Graph {
        let mut g = Graph::new(self.vertex_count);
        for (verts, &w) in self.edges.iter().zip(&self.weights) {
            if verts.len() < 2 {
                continue;
            }
            let pair_w = w / (verts.len() as f64 - 1.0);
            for i in 0..verts.len() {
                for j in (i + 1)..verts.len() {
                    g.add_edge(verts[i], verts[j], pair_w);
                }
            }
        }
        g.merge_parallel_edges();
        g
    }

    /// Star expansion on small nets plus clique on large: cliques explode on
    /// high-fanout nets, so nets with more than `clique_threshold` vertices
    /// are expanded as a star around their first vertex (the driver, by
    /// netlist convention).
    pub fn bounded_clique_expansion(&self, clique_threshold: usize) -> Graph {
        let mut g = Graph::new(self.vertex_count);
        for (verts, &w) in self.edges.iter().zip(&self.weights) {
            if verts.len() < 2 {
                continue;
            }
            let pair_w = w / (verts.len() as f64 - 1.0);
            if verts.len() <= clique_threshold {
                for i in 0..verts.len() {
                    for j in (i + 1)..verts.len() {
                        g.add_edge(verts[i], verts[j], pair_w);
                    }
                }
            } else {
                let hub = verts[0];
                for &v in &verts[1..] {
                    g.add_edge(hub, v, pair_w);
                }
            }
        }
        g.merge_parallel_edges();
        g
    }

    /// Restricts the hypergraph to `keep` vertices, renumbering them densely
    /// in the order given. Hyperedges are truncated to the kept vertices;
    /// edges left with fewer than `min_size` vertices are dropped.
    ///
    /// Returns the sub-hypergraph and, for each original hyperedge, the id
    /// it maps to (or `None` if dropped).
    pub fn induce(&self, keep: &[u32], min_size: usize) -> (Hypergraph, Vec<Option<u32>>) {
        let mut new_id = vec![u32::MAX; self.vertex_count];
        for (i, &v) in keep.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        let mut edge_map = vec![None; self.edges.len()];
        for (eid, (verts, &w)) in self.edges.iter().zip(&self.weights).enumerate() {
            let kept: Vec<u32> = verts
                .iter()
                .filter_map(|&v| {
                    let nv = new_id[v as usize];
                    (nv != u32::MAX).then_some(nv)
                })
                .collect();
            if kept.len() >= min_size {
                edge_map[eid] = Some(edges.len() as u32);
                edges.push((kept, w));
            }
        }
        (Hypergraph::new(keep.len(), edges), edge_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        Hypergraph::new(
            5,
            vec![
                (vec![0, 1, 2], 1.0),
                (vec![2, 3], 2.0),
                (vec![3, 4], 1.0),
                (vec![4], 1.0),
            ],
        )
    }

    #[test]
    fn counts() {
        let h = sample();
        assert_eq!(h.vertex_count(), 5);
        assert_eq!(h.edge_count(), 4);
        assert_eq!(h.pin_count(), 8);
        assert_eq!(h.degree(2), 2);
        assert_eq!(h.degree(4), 2);
        assert!((h.average_degree() - 8.0 / 5.0).abs() < 1e-12);
        assert!((h.average_edge_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_within_edge() {
        let h = Hypergraph::new(2, vec![(vec![0, 0, 1], 1.0)]);
        assert_eq!(h.edge(0), &[0, 1]);
    }

    #[test]
    fn clique_expansion_weights() {
        let h = sample();
        let g = h.clique_expansion();
        // Hyperedge {0,1,2} w=1 ⇒ pairs at 1/2 each.
        assert!((g.edge_weight(0, 1).unwrap() - 0.5).abs() < 1e-12);
        // Hyperedge {2,3} w=2 ⇒ pair at 2.
        assert!((g.edge_weight(2, 3).unwrap() - 2.0).abs() < 1e-12);
        // Singleton edge {4} contributes nothing.
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    fn bounded_expansion_stars_large_nets() {
        let big: Vec<u32> = (0..10).collect();
        let h = Hypergraph::new(10, vec![(big, 1.0)]);
        let g = h.bounded_clique_expansion(5);
        assert_eq!(g.degree(0), 9); // hub
        assert_eq!(g.degree(1), 1);
        let full = h.clique_expansion();
        assert_eq!(full.degree(1), 9);
    }

    #[test]
    fn induce_renumbers_and_drops() {
        let h = sample();
        let (sub, emap) = h.induce(&[2, 3, 4], 2);
        assert_eq!(sub.vertex_count(), 3);
        // {0,1,2} truncated to {2}→ dropped at min_size 2.
        assert_eq!(emap[0], None);
        // {2,3} → {0,1}
        assert_eq!(emap[1], Some(0));
        assert_eq!(sub.edge(0), &[0, 1]);
        // {3,4} → {1,2}
        assert_eq!(sub.edge(emap[2].unwrap()), &[1, 2]);
        assert_eq!(emap[3], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vertex_out_of_range_panics() {
        Hypergraph::new(1, vec![(vec![0, 1], 1.0)]);
    }
}
