//! Weighted hypergraphs and clique expansion.

use crate::Graph;

/// A weighted hypergraph over vertices `0..n`.
///
/// Storage is arena-backed structure-of-arrays: hyperedge pin lists live
/// in one flat `edge_arena` indexed by `edge_ptr` (CSR layout), and the
/// vertex → hyperedge incidence lives in a second flat arena. Compared to
/// the earlier `Vec<Vec<u32>>` layout this removes one pointer chase and
/// one allocation per net, which matters when the flow walks millions of
/// nets per placement iteration. The accessor API returns slices, so the
/// layout is invisible to callers.
///
/// # Examples
///
/// ```
/// use cp_graph::Hypergraph;
///
/// let h = Hypergraph::new(4, vec![(vec![0, 1, 2], 1.0), (vec![2, 3], 2.0)]);
/// assert_eq!(h.vertex_count(), 4);
/// assert_eq!(h.edge_count(), 2);
/// assert_eq!(h.incident(2), &[0, 1]);
/// assert_eq!(h.pin_count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hypergraph {
    vertex_count: usize,
    /// `edge_ptr[e]..edge_ptr[e+1]` bounds hyperedge `e`'s pins in
    /// `edge_arena`.
    edge_ptr: Vec<u32>,
    /// All pins, concatenated in hyperedge order (sorted within an edge).
    edge_arena: Vec<u32>,
    weights: Vec<f64>,
    /// `inc_ptr[v]..inc_ptr[v+1]` bounds vertex `v`'s incident hyperedges
    /// in `inc_arena`.
    inc_ptr: Vec<u32>,
    /// Incident hyperedge ids, concatenated in vertex order (ascending
    /// within a vertex).
    inc_arena: Vec<u32>,
}

impl Default for Hypergraph {
    fn default() -> Self {
        Self::new(0, Vec::new())
    }
}

impl Hypergraph {
    /// Builds a hypergraph from `(vertices, weight)` hyperedges.
    ///
    /// Hyperedges with fewer than one vertex are kept (degenerate but legal);
    /// duplicate vertices within a hyperedge are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any vertex index is `>= vertex_count`, or if the total
    /// pin count overflows the `u32` arena index space.
    pub fn new(vertex_count: usize, edges: Vec<(Vec<u32>, f64)>) -> Self {
        let mut edge_ptr = Vec::with_capacity(edges.len() + 1);
        edge_ptr.push(0u32);
        let mut edge_arena: Vec<u32> = Vec::new();
        let mut weights = Vec::with_capacity(edges.len());
        let mut degree = vec![0u32; vertex_count];
        for (mut verts, w) in edges {
            verts.sort_unstable();
            verts.dedup();
            for &v in &verts {
                assert!(
                    (v as usize) < vertex_count,
                    "vertex {v} out of range (n = {vertex_count})"
                );
                degree[v as usize] += 1;
            }
            edge_arena.extend_from_slice(&verts);
            assert!(
                edge_arena.len() < u32::MAX as usize,
                "pin count overflows the u32 arena index"
            );
            edge_ptr.push(edge_arena.len() as u32);
            weights.push(w);
        }
        // Incidence arena: prefix-sum the degrees, then scatter hyperedge
        // ids in edge order, which leaves each vertex's list ascending.
        let mut inc_ptr = Vec::with_capacity(vertex_count + 1);
        inc_ptr.push(0u32);
        let mut acc = 0u32;
        for &d in &degree {
            acc += d;
            inc_ptr.push(acc);
        }
        let mut cursor: Vec<u32> = inc_ptr[..vertex_count].to_vec();
        let mut inc_arena = vec![0u32; acc as usize];
        for e in 0..weights.len() {
            for i in edge_ptr[e]..edge_ptr[e + 1] {
                let v = edge_arena[i as usize] as usize;
                inc_arena[cursor[v] as usize] = e as u32;
                cursor[v] += 1;
            }
        }
        Self {
            vertex_count,
            edge_ptr,
            edge_arena,
            weights,
            inc_ptr,
            inc_arena,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Total number of pins (vertex–hyperedge incidences).
    pub fn pin_count(&self) -> usize {
        self.edge_arena.len()
    }

    /// The vertices of hyperedge `e`.
    pub fn edge(&self, e: u32) -> &[u32] {
        let e = e as usize;
        &self.edge_arena[self.edge_ptr[e] as usize..self.edge_ptr[e + 1] as usize]
    }

    /// The weight of hyperedge `e`.
    pub fn weight(&self, e: u32) -> f64 {
        self.weights[e as usize]
    }

    /// Hyperedges incident to vertex `v`.
    pub fn incident(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.inc_arena[self.inc_ptr[v] as usize..self.inc_ptr[v + 1] as usize]
    }

    /// Degree of vertex `v` (number of incident hyperedges).
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        (self.inc_ptr[v + 1] - self.inc_ptr[v]) as usize
    }

    /// Average vertex degree (0 for empty hypergraphs).
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count == 0 {
            0.0
        } else {
            self.pin_count() as f64 / self.vertex_count as f64
        }
    }

    /// Average hyperedge size (0 when there are no edges).
    pub fn average_edge_size(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.pin_count() as f64 / self.weights.len() as f64
        }
    }

    /// Standard clique expansion: every hyperedge `e` contributes a clique
    /// over its vertices with per-pair weight `w_e / (|e| - 1)` [16].
    ///
    /// Single-vertex hyperedges contribute nothing. Parallel clique edges
    /// are merged by weight summation.
    pub fn clique_expansion(&self) -> Graph {
        let mut g = Graph::new(self.vertex_count);
        for e in 0..self.edge_count() as u32 {
            let verts = self.edge(e);
            if verts.len() < 2 {
                continue;
            }
            let pair_w = self.weights[e as usize] / (verts.len() as f64 - 1.0);
            for i in 0..verts.len() {
                for j in (i + 1)..verts.len() {
                    g.add_edge(verts[i], verts[j], pair_w);
                }
            }
        }
        g.merge_parallel_edges();
        g
    }

    /// Star expansion on small nets plus clique on large: cliques explode on
    /// high-fanout nets, so nets with more than `clique_threshold` vertices
    /// are expanded as a star around their first vertex (the driver, by
    /// netlist convention).
    pub fn bounded_clique_expansion(&self, clique_threshold: usize) -> Graph {
        let mut g = Graph::new(self.vertex_count);
        for e in 0..self.edge_count() as u32 {
            let verts = self.edge(e);
            if verts.len() < 2 {
                continue;
            }
            let pair_w = self.weights[e as usize] / (verts.len() as f64 - 1.0);
            if verts.len() <= clique_threshold {
                for i in 0..verts.len() {
                    for j in (i + 1)..verts.len() {
                        g.add_edge(verts[i], verts[j], pair_w);
                    }
                }
            } else {
                let hub = verts[0];
                for &v in &verts[1..] {
                    g.add_edge(hub, v, pair_w);
                }
            }
        }
        g.merge_parallel_edges();
        g
    }

    /// Restricts the hypergraph to `keep` vertices, renumbering them densely
    /// in the order given. Hyperedges are truncated to the kept vertices;
    /// edges left with fewer than `min_size` vertices are dropped.
    ///
    /// Returns the sub-hypergraph and, for each original hyperedge, the id
    /// it maps to (or `None` if dropped).
    pub fn induce(&self, keep: &[u32], min_size: usize) -> (Hypergraph, Vec<Option<u32>>) {
        let mut new_id = vec![u32::MAX; self.vertex_count];
        for (i, &v) in keep.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        let mut edge_map = vec![None; self.edge_count()];
        for e in 0..self.edge_count() as u32 {
            let kept: Vec<u32> = self
                .edge(e)
                .iter()
                .filter_map(|&v| {
                    let nv = new_id[v as usize];
                    (nv != u32::MAX).then_some(nv)
                })
                .collect();
            if kept.len() >= min_size {
                edge_map[e as usize] = Some(edges.len() as u32);
                edges.push((kept, self.weights[e as usize]));
            }
        }
        (Hypergraph::new(keep.len(), edges), edge_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        Hypergraph::new(
            5,
            vec![
                (vec![0, 1, 2], 1.0),
                (vec![2, 3], 2.0),
                (vec![3, 4], 1.0),
                (vec![4], 1.0),
            ],
        )
    }

    #[test]
    fn counts() {
        let h = sample();
        assert_eq!(h.vertex_count(), 5);
        assert_eq!(h.edge_count(), 4);
        assert_eq!(h.pin_count(), 8);
        assert_eq!(h.degree(2), 2);
        assert_eq!(h.degree(4), 2);
        assert!((h.average_degree() - 8.0 / 5.0).abs() < 1e-12);
        assert!((h.average_edge_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_within_edge() {
        let h = Hypergraph::new(2, vec![(vec![0, 0, 1], 1.0)]);
        assert_eq!(h.edge(0), &[0, 1]);
    }

    #[test]
    fn incidence_lists_are_ascending() {
        let h = sample();
        for v in 0..h.vertex_count() as u32 {
            let inc = h.incident(v);
            assert!(inc.windows(2).all(|w| w[0] < w[1]), "vertex {v}: {inc:?}");
        }
        assert_eq!(h.incident(3), &[1, 2]);
    }

    #[test]
    fn default_is_empty() {
        let h = Hypergraph::default();
        assert_eq!(h.vertex_count(), 0);
        assert_eq!(h.edge_count(), 0);
        assert_eq!(h, Hypergraph::new(0, Vec::new()));
    }

    #[test]
    fn clique_expansion_weights() {
        let h = sample();
        let g = h.clique_expansion();
        // Hyperedge {0,1,2} w=1 ⇒ pairs at 1/2 each.
        assert!((g.edge_weight(0, 1).unwrap() - 0.5).abs() < 1e-12);
        // Hyperedge {2,3} w=2 ⇒ pair at 2.
        assert!((g.edge_weight(2, 3).unwrap() - 2.0).abs() < 1e-12);
        // Singleton edge {4} contributes nothing.
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    fn bounded_expansion_stars_large_nets() {
        let big: Vec<u32> = (0..10).collect();
        let h = Hypergraph::new(10, vec![(big, 1.0)]);
        let g = h.bounded_clique_expansion(5);
        assert_eq!(g.degree(0), 9); // hub
        assert_eq!(g.degree(1), 1);
        let full = h.clique_expansion();
        assert_eq!(full.degree(1), 9);
    }

    #[test]
    fn induce_renumbers_and_drops() {
        let h = sample();
        let (sub, emap) = h.induce(&[2, 3, 4], 2);
        assert_eq!(sub.vertex_count(), 3);
        // {0,1,2} truncated to {2}→ dropped at min_size 2.
        assert_eq!(emap[0], None);
        // {2,3} → {0,1}
        assert_eq!(emap[1], Some(0));
        assert_eq!(sub.edge(0), &[0, 1]);
        // {3,4} → {1,2}
        assert_eq!(sub.edge(emap[2].unwrap()), &[1, 2]);
        assert_eq!(emap[3], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vertex_out_of_range_panics() {
        Hypergraph::new(1, vec![(vec![0, 1], 1.0)]);
    }
}
