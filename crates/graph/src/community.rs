//! Community detection: modularity, Louvain and Leiden.
//!
//! These serve as the clustering baselines of the paper: blob placement [9]
//! builds placement-relevant clusters with Louvain, and Table 5 compares the
//! PPA-aware clustering against Leiden.

use crate::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Node strength with self-loops counted twice (Newman's convention).
fn strength(g: &Graph, u: u32) -> f64 {
    g.weighted_degree(u) + g.edge_weight(u, u).unwrap_or(0.0)
}

/// Newman modularity of a labeling.
///
/// `Q = Σ_c [ Σ_in(c)/(2m) − (Σ_tot(c)/(2m))² ]` where `m` is the total
/// edge weight. Returns 0 for graphs without edges.
///
/// # Panics
///
/// Panics if `labels.len() != g.node_count()`.
pub fn modularity(g: &Graph, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), g.node_count(), "label count mismatch");
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |x| x as usize + 1);
    let mut intra = vec![0.0f64; k];
    let mut tot = vec![0.0f64; k];
    for (u, v, w) in g.edges() {
        if labels[u as usize] == labels[v as usize] {
            intra[labels[u as usize] as usize] += w;
        }
    }
    for u in 0..g.node_count() as u32 {
        tot[labels[u as usize] as usize] += strength(g, u);
    }
    let two_m = 2.0 * m;
    intra
        .iter()
        .zip(&tot)
        .map(|(&i, &t)| i / m - (t / two_m) * (t / two_m))
        .sum()
}

/// Renumbers labels densely to `0..k`, preserving first-appearance order.
///
/// The remap table is a dense `Vec` indexed by the old label (sized to
/// the maximum label present), not a hash map: the clustering path calls
/// this once per coarsening pass over million-entry label arrays, where
/// hashing costs real time and — more importantly — any map whose
/// iteration order leaked into the result would be a determinism hazard.
/// The dense table has no iteration order at all; assignment order is
/// exactly first-appearance order in `labels`.
pub fn compact_labels(labels: &mut [u32]) -> usize {
    let max = match labels.iter().copied().max() {
        Some(m) => m as usize,
        None => return 0,
    };
    const UNASSIGNED: u32 = u32::MAX;
    let mut remap = vec![UNASSIGNED; max + 1];
    let mut next = 0u32;
    for l in labels.iter_mut() {
        let slot = &mut remap[*l as usize];
        if *slot == UNASSIGNED {
            *slot = next;
            next += 1;
        }
        *l = *slot;
    }
    next as usize
}

/// Options shared by [`louvain`] and [`leiden`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityOptions {
    /// Resolution parameter γ (1.0 = classic modularity).
    pub resolution: f64,
    /// RNG seed for the node-visit order.
    pub seed: u64,
    /// Maximum number of aggregation levels.
    pub max_levels: usize,
    /// Minimum modularity gain to accept a move.
    pub min_gain: f64,
}

impl Default for CommunityOptions {
    fn default() -> Self {
        Self {
            resolution: 1.0,
            seed: 1,
            max_levels: 32,
            min_gain: 1e-9,
        }
    }
}

/// One pass of greedy local moving. Returns `true` if any node moved.
fn local_move(g: &Graph, labels: &mut [u32], opts: &CommunityOptions, rng: &mut StdRng) -> bool {
    let n = g.node_count();
    let m = g.total_weight();
    if m <= 0.0 || n == 0 {
        return false;
    }
    let two_m = 2.0 * m;
    let mut tot = vec![0.0f64; n];
    for u in 0..n as u32 {
        tot[labels[u as usize] as usize] += strength(g, u);
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut neighbor_weight: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut moved_any = false;
    let mut improved = true;
    while improved {
        improved = false;
        for &u in &order {
            let cu = labels[u as usize];
            let ku = strength(g, u);
            // Weights from u to each neighboring community.
            for &(v, w) in g.neighbors(u) {
                if v == u {
                    continue;
                }
                let cv = labels[v as usize];
                if neighbor_weight[cv as usize] == 0.0 {
                    touched.push(cv);
                }
                neighbor_weight[cv as usize] += w;
            }
            // Gain of staying vs moving; remove u from its community first.
            tot[cu as usize] -= ku;
            let base =
                neighbor_weight[cu as usize] - opts.resolution * tot[cu as usize] * ku / two_m;
            let mut best_comm = cu;
            let mut best_gain = base;
            for &c in &touched {
                if c == cu {
                    continue;
                }
                let gain =
                    neighbor_weight[c as usize] - opts.resolution * tot[c as usize] * ku / two_m;
                if gain > best_gain + opts.min_gain {
                    best_gain = gain;
                    best_comm = c;
                }
            }
            tot[best_comm as usize] += ku;
            if best_comm != cu {
                labels[u as usize] = best_comm;
                improved = true;
                moved_any = true;
            }
            for &c in &touched {
                neighbor_weight[c as usize] = 0.0;
            }
            touched.clear();
        }
    }
    moved_any
}

/// Builds the aggregated graph whose nodes are the communities of `labels`.
fn aggregate(g: &Graph, labels: &[u32], k: usize) -> Graph {
    let mut agg = Graph::new(k);
    for (u, v, w) in g.edges() {
        let (cu, cv) = (labels[u as usize], labels[v as usize]);
        agg.add_edge(cu, cv, w);
    }
    agg.merge_parallel_edges();
    agg
}

/// Louvain community detection [Blondel et al. 2008].
///
/// Returns `(labels, modularity)` with labels densified to `0..k`.
///
/// # Examples
///
/// ```
/// use cp_graph::{Graph, community};
///
/// // Two cliques joined by one edge split into two communities.
/// let g = Graph::from_edges(6, &[
///     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
///     (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
///     (2, 3, 1.0),
/// ]);
/// let (labels, q) = community::louvain(&g, &community::CommunityOptions::default());
/// assert_eq!(labels[0], labels[1]);
/// assert_eq!(labels[3], labels[5]);
/// assert_ne!(labels[0], labels[3]);
/// assert!(q > 0.3);
/// ```
pub fn louvain(g: &Graph, opts: &CommunityOptions) -> (Vec<u32>, f64) {
    let _span = cp_trace::span_with(
        "graph.louvain",
        &[("nodes", cp_trace::ArgValue::U(g.node_count() as u64))],
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = g.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut level_graph = g.clone();
    let mut level_labels: Vec<u32> = (0..n as u32).collect();
    for _ in 0..opts.max_levels {
        let moved = local_move(&level_graph, &mut level_labels, opts, &mut rng);
        let k = compact_labels(&mut level_labels);
        // Project the level labels down to original nodes.
        for l in labels.iter_mut() {
            *l = level_labels[*l as usize];
        }
        if !moved || k == level_graph.node_count() {
            break;
        }
        level_graph = aggregate(&level_graph, &level_labels, k);
        level_labels = (0..k as u32).collect();
    }
    compact_labels(&mut labels);
    let q = modularity(g, &labels);
    (labels, q)
}

/// Refinement phase of Leiden: split each community into well-connected
/// sub-communities by greedy merging of singletons (within communities).
fn refine(g: &Graph, labels: &[u32], opts: &CommunityOptions, rng: &mut StdRng) -> Vec<u32> {
    let n = g.node_count();
    let m = g.total_weight();
    let two_m = 2.0 * m;
    // Each node starts as its own refined community.
    let mut refined: Vec<u32> = (0..n as u32).collect();
    let mut ref_tot: Vec<f64> = (0..n as u32).map(|u| strength(g, u)).collect();
    let mut ref_size = vec![1u32; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut neighbor_weight = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    for &u in &order {
        // Only singleton refined communities may move (Leiden rule).
        if ref_size[refined[u as usize] as usize] != 1 {
            continue;
        }
        let cu = labels[u as usize];
        let ku = strength(g, u);
        for &(v, w) in g.neighbors(u) {
            if v == u || labels[v as usize] != cu {
                continue;
            }
            let rc = refined[v as usize];
            if neighbor_weight[rc as usize] == 0.0 {
                touched.push(rc);
            }
            neighbor_weight[rc as usize] += w;
        }
        let ru = refined[u as usize];
        let mut best = ru;
        let mut best_gain = 0.0;
        for &rc in &touched {
            if rc == ru {
                continue;
            }
            let gain =
                neighbor_weight[rc as usize] - opts.resolution * ref_tot[rc as usize] * ku / two_m;
            if gain > best_gain + opts.min_gain {
                best_gain = gain;
                best = rc;
            }
        }
        if best != ru {
            ref_tot[ru as usize] -= ku;
            ref_size[ru as usize] -= 1;
            ref_tot[best as usize] += ku;
            ref_size[best as usize] += 1;
            refined[u as usize] = best;
        }
        for &rc in &touched {
            neighbor_weight[rc as usize] = 0.0;
        }
        touched.clear();
    }
    refined
}

/// Leiden community detection [Traag et al. 2019].
///
/// Like Louvain but with a refinement phase that keeps communities
/// well-connected; aggregation happens on the *refined* partition while the
/// local-moving partition seeds the next level.
///
/// Returns `(labels, modularity)` with labels densified to `0..k`.
pub fn leiden(g: &Graph, opts: &CommunityOptions) -> (Vec<u32>, f64) {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n = g.node_count();
    // node_of[orig] = the current-level node that contains `orig`.
    let mut node_of: Vec<u32> = (0..n as u32).collect();
    let mut level_graph = g.clone();
    let mut level_labels: Vec<u32> = (0..n as u32).collect();
    for _ in 0..opts.max_levels {
        let moved = local_move(&level_graph, &mut level_labels, opts, &mut rng);
        compact_labels(&mut level_labels);
        let mut refined = refine(&level_graph, &level_labels, opts, &mut rng);
        let rk = compact_labels(&mut refined);
        if !moved || rk == level_graph.node_count() {
            break;
        }
        // Each refined community becomes one node of the next level; its
        // initial community is the coarse community it sits inside.
        let mut coarse_of_refined = vec![0u32; rk];
        for u in 0..level_graph.node_count() {
            coarse_of_refined[refined[u] as usize] = level_labels[u];
        }
        for id in node_of.iter_mut() {
            *id = refined[*id as usize];
        }
        level_graph = aggregate(&level_graph, &refined, rk);
        level_labels = coarse_of_refined;
    }
    let mut labels: Vec<u32> = node_of
        .iter()
        .map(|&id| level_labels[id as usize])
        .collect();
    compact_labels(&mut labels);
    let q = modularity(g, &labels);
    (labels, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> Graph {
        Graph::from_edges(
            8,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (4, 5, 1.0),
                (4, 6, 1.0),
                (4, 7, 1.0),
                (5, 6, 1.0),
                (5, 7, 1.0),
                (6, 7, 1.0),
                (3, 4, 1.0),
            ],
        )
    }

    #[test]
    fn modularity_of_singletons_is_negative_or_zero() {
        let g = two_cliques();
        let labels: Vec<u32> = (0..8).collect();
        assert!(modularity(&g, &labels) <= 0.0);
    }

    #[test]
    fn modularity_of_ideal_split() {
        let g = two_cliques();
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let q = modularity(&g, &labels);
        assert!(q > 0.3, "q = {q}");
    }

    #[test]
    fn louvain_finds_two_cliques() {
        let g = two_cliques();
        let (labels, q) = louvain(&g, &CommunityOptions::default());
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[7]);
        assert_ne!(labels[0], labels[4]);
        assert!(q > 0.3);
    }

    #[test]
    fn leiden_finds_two_cliques() {
        let g = two_cliques();
        let (labels, q) = leiden(&g, &CommunityOptions::default());
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[7]);
        assert_ne!(labels[0], labels[4]);
        assert!(q > 0.3);
    }

    #[test]
    fn louvain_is_deterministic_per_seed() {
        let g = two_cliques();
        let a = louvain(&g, &CommunityOptions::default());
        let b = louvain(&g, &CommunityOptions::default());
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn compact_labels_densifies() {
        let mut l = vec![7, 7, 3, 9, 3];
        let k = compact_labels(&mut l);
        assert_eq!(k, 3);
        assert_eq!(l, vec![0, 0, 1, 2, 1]);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Graph::new(0);
        let (labels, q) = louvain(&g, &CommunityOptions::default());
        assert!(labels.is_empty());
        assert_eq!(q, 0.0);
    }

    #[test]
    fn resolution_controls_granularity() {
        let g = two_cliques();
        let coarse = louvain(
            &g,
            &CommunityOptions {
                resolution: 0.1,
                ..Default::default()
            },
        );
        let fine = louvain(
            &g,
            &CommunityOptions {
                resolution: 4.0,
                ..Default::default()
            },
        );
        let k_coarse = coarse.0.iter().max().map_or(0, |&x| x + 1);
        let k_fine = fine.0.iter().max().map_or(0, |&x| x + 1);
        assert!(k_coarse <= k_fine, "{k_coarse} vs {k_fine}");
    }
}
