//! Graph and hypergraph algorithms for the clustered-placement toolkit.
//!
//! This crate is the algorithmic substrate under netlist clustering and GNN
//! feature extraction. It provides:
//!
//! - [`Graph`]: a simple undirected weighted graph with adjacency lists.
//! - [`Hypergraph`]: weighted hypergraphs plus [`Hypergraph::clique_expansion`]
//!   with the standard `1/(|e|-1)` edge weights.
//! - Traversal and distance queries ([`traversal`]).
//! - Centralities used as GNN cell-level features ([`centrality`]):
//!   betweenness (Brandes), closeness, degree centrality, average
//!   neighborhood degree.
//! - Whole-graph metrics used as GNN cluster-level features ([`metrics`]):
//!   clustering coefficient, density, diameter/radius/eccentricity, global
//!   efficiency, greedy coloring.
//! - Global min-cut / edge connectivity via Stoer–Wagner ([`connectivity`]).
//! - Community detection ([`community`]): modularity, Louvain and Leiden,
//!   which serve as the clustering baselines of the paper's Tables 2 and 5.
//! - Multi-level coarsening ([`coarsen`]): deterministic heavy-edge
//!   matching plus a coarsen–uncoarsen wrapper so community detection
//!   stays tractable at 10⁵–10⁶ nodes.
//!
//! # Examples
//!
//! ```
//! use cp_graph::Graph;
//!
//! // A triangle plus a pendant vertex.
//! let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]);
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.degree(2), 3);
//! let ecc = cp_graph::metrics::eccentricities(&g);
//! assert_eq!(ecc[3], 2);
//! ```

pub mod centrality;
pub mod coarsen;
pub mod community;
pub mod connectivity;
pub mod graph;
pub mod hypergraph;
pub mod metrics;
pub mod traversal;

pub use crate::graph::Graph;
pub use crate::hypergraph::Hypergraph;
