//! Undirected weighted graph with adjacency lists.

/// An undirected weighted graph over nodes `0..n`.
///
/// Parallel edges are merged at construction time by summing their weights;
/// self-loops are kept (they matter for community-detection aggregation).
///
/// # Examples
///
/// ```
/// use cp_graph::Graph;
///
/// let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 0.5)]);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.weighted_degree(1), 2.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    adj: Vec<Vec<(u32, f64)>>,
    edge_count: usize,
    total_weight: f64,
}

impl Graph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edge_count: 0,
            total_weight: 0.0,
        }
    }

    /// Builds a graph from an edge list `(u, v, w)`.
    ///
    /// Duplicate `(u, v)` pairs are merged by summing weights.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g.merge_parallel_edges();
        g
    }

    /// Adds an undirected edge. Parallel edges accumulate until
    /// [`Graph::merge_parallel_edges`] is called (done automatically by
    /// [`Graph::from_edges`]).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) {
        assert!((u as usize) < self.adj.len(), "node {u} out of range");
        assert!((v as usize) < self.adj.len(), "node {v} out of range");
        if u == v {
            self.adj[u as usize].push((v, w));
        } else {
            self.adj[u as usize].push((v, w));
            self.adj[v as usize].push((u, w));
        }
        self.edge_count += 1;
        self.total_weight += w;
    }

    /// Merges parallel edges by summing weights, and sorts adjacency lists.
    pub fn merge_parallel_edges(&mut self) {
        let mut edge_count = 0usize;
        for list in &mut self.adj {
            list.sort_by_key(|&(v, _)| v);
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(list.len());
            for &(v, w) in list.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == v => last.1 += w,
                    _ => merged.push((v, w)),
                }
            }
            *list = merged;
        }
        // Recount: each non-loop edge appears in two lists, loops in one.
        let mut loops = 0usize;
        let mut non_loops = 0usize;
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, _) in list {
                if v as usize == u {
                    loops += 1;
                } else {
                    non_loops += 1;
                }
            }
        }
        edge_count += loops + non_loops / 2;
        self.edge_count = edge_count;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct edges (after merging), counting self-loops once.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Neighbors of `u` with edge weights. A self-loop appears once.
    pub fn neighbors(&self, u: u32) -> &[(u32, f64)] {
        &self.adj[u as usize]
    }

    /// Unweighted degree of `u` (number of incident distinct edges;
    /// self-loops count once).
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Weighted degree (strength) of `u`. Self-loop weights count once.
    pub fn weighted_degree(&self, u: u32) -> f64 {
        self.adj[u as usize].iter().map(|&(_, w)| w).sum()
    }

    /// Returns `true` if nodes `u` and `v` are adjacent.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize]
            .binary_search_by_key(&v, |&(x, _)| x)
            .is_ok()
    }

    /// Weight of the edge `(u, v)` if present.
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<f64> {
        self.adj[u as usize]
            .binary_search_by_key(&v, |&(x, _)| x)
            .ok()
            .map(|i| self.adj[u as usize][i].1)
    }

    /// Iterates over all distinct edges `(u, v, w)` with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            list.iter()
                .filter(move |&&(v, _)| v as usize >= u)
                .map(move |&(v, w)| (u as u32, v, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn from_edges_merges_parallel() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0), (0, 1, 2.0)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.weighted_degree(0), 3.0);
    }

    #[test]
    fn self_loop_counted_once() {
        let g = Graph::from_edges(2, &[(0, 0, 1.5), (0, 1, 1.0)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.weighted_degree(0), 2.5);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _) in edges {
            assert!(u <= v);
        }
    }

    #[test]
    fn total_weight_accumulates() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::new(1);
        g.add_edge(0, 1, 1.0);
    }
}
