//! Node centralities used as GNN cell-level features.
//!
//! The paper's cell-level feature set (Section 3.2) includes betweenness
//! centrality, closeness centrality, degree centrality and the average
//! neighborhood degree; all four are computed here on the (unweighted)
//! clique-expanded cluster graph.

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::Graph;
use std::collections::VecDeque;

/// Brandes' betweenness centrality on the unweighted graph.
///
/// Values are normalized by `(n-1)(n-2)/2` (undirected convention) so they
/// fall in `[0, 1]` for connected graphs. Returns zeros for `n < 3`.
///
/// # Examples
///
/// ```
/// use cp_graph::{Graph, centrality};
///
/// // Path a-b-c: b lies on the single a..c shortest path.
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
/// let bc = centrality::betweenness(&g);
/// assert!(bc[1] > bc[0]);
/// assert_eq!(bc[0], 0.0);
/// ```
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0; n];
    if n < 3 {
        return centrality;
    }
    let mut stack: Vec<u32> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut queue = VecDeque::new();

    for s in 0..n as u32 {
        stack.clear();
        for p in preds.iter_mut() {
            p.clear();
        }
        sigma.fill(0.0);
        dist.fill(-1);
        delta.fill(0.0);
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            let dv = dist[v as usize];
            for &(w, _) in g.neighbors(v) {
                if w == v {
                    continue;
                }
                if dist[w as usize] < 0 {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dv + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                centrality[w as usize] += delta[w as usize];
            }
        }
    }
    // Each undirected pair was counted twice; normalize to [0, 1].
    let scale = 1.0 / ((n - 1) as f64 * (n - 2) as f64);
    for c in &mut centrality {
        *c *= scale;
    }
    centrality
}

/// Closeness centrality: `(reachable-1) / sum(dist)` scaled by the
/// reachable fraction (the Wasserman–Faust formula used by NetworkX).
///
/// Isolated nodes score 0.
pub fn closeness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0; n];
    if n <= 1 {
        return out;
    }
    for u in 0..n as u32 {
        let dist = bfs_distances(g, u);
        let mut total = 0u64;
        let mut reachable = 0u64;
        for &d in &dist {
            if d != UNREACHABLE && d > 0 {
                total += d as u64;
                reachable += 1;
            }
        }
        if total > 0 {
            let frac = reachable as f64 / (n - 1) as f64;
            out[u as usize] = frac * reachable as f64 / total as f64;
        }
    }
    out
}

/// Degree centrality: `degree(u) / (n - 1)` (Freeman [10]).
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    let scale = 1.0 / (n - 1) as f64;
    (0..n as u32).map(|u| g.degree(u) as f64 * scale).collect()
}

/// Average degree over each node's neighbors (0 for isolated nodes).
pub fn average_neighbor_degree(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    (0..n as u32)
        .map(|u| {
            let neigh = g.neighbors(u);
            if neigh.is_empty() {
                0.0
            } else {
                neigh.iter().map(|&(v, _)| g.degree(v) as f64).sum::<f64>() / neigh.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star5() -> Graph {
        Graph::from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)])
    }

    #[test]
    fn star_center_has_maximum_betweenness() {
        let bc = betweenness(&star5());
        assert!(
            (bc[0] - 1.0).abs() < 1e-12,
            "center of a star is on all pairs: {bc:?}"
        );
        for &leaf in &bc[1..] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    fn path_betweenness_values() {
        // Path 0-1-2-3: node 1 covers pairs (0,2),(0,3); node 2 covers (0,3),(1,3).
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let bc = betweenness(&g);
        let norm = 2.0 / ((4.0 - 1.0) * (4.0 - 2.0));
        assert!((bc[1] - 2.0 * norm).abs() < 1e-12);
        assert!((bc[2] - 2.0 * norm).abs() < 1e-12);
    }

    #[test]
    fn closeness_star() {
        let c = closeness(&star5());
        assert!((c[0] - 1.0).abs() < 1e-12);
        // Leaves: distances 1 + 2+2+2 = 7, closeness 4/7.
        assert!((c[1] - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_disconnected_scaled() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        let c = closeness(&g);
        // Node 0 reaches 1 node of 3 ⇒ (1/3) * 1/1.
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn degree_centrality_star() {
        let c = degree_centrality(&star5());
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn average_neighbor_degree_star() {
        let d = average_neighbor_degree(&star5());
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn betweenness_small_graphs_are_zero() {
        assert_eq!(betweenness(&Graph::new(2)), vec![0.0, 0.0]);
    }
}
