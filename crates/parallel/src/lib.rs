//! Deterministic work-stealing thread pool for the placement flow.
//!
//! Dependency-free `rayon`-flavored data parallelism, sized for the three
//! hot layers of this workspace (V-P&R shape search, the global placer's
//! linear algebra, and the GNN kernels). The design trades a little peak
//! throughput for a hard guarantee the flow's reproducibility story
//! depends on:
//!
//! **Determinism contract.** Every primitive in this crate produces
//! bit-identical results for *any* thread count, including the inline
//! sequential path (`CP_THREADS=1`). The mechanism is fixed-shape
//! chunking: work is split into chunks whose boundaries depend only on
//! the input size (never on the thread count), each chunk's result is
//! stored by chunk index, and reductions combine the per-chunk partials
//! with a fixed-order pairwise tree ([`tree_combine`]). Threads *steal
//! chunks* from a shared atomic counter, so scheduling is dynamic but the
//! arithmetic — including floating-point association — is not.
//!
//! **Thread count.** `CP_THREADS` controls the default worker budget
//! (default: available cores; `1` = run everything inline on the calling
//! thread). [`with_threads`] overrides the budget for a scope, which is
//! how the scaling bench sweeps 1/2/4/8 threads in one process and how
//! the determinism tests compare the sequential and parallel paths.
//!
//! Workers are spawned lazily on first parallel call and parked on a
//! shared queue afterwards; nested parallel calls from worker threads are
//! allowed (inner regions push chunks other idle workers can steal, and
//! the submitting thread always participates, so progress never depends
//! on another region finishing first).

use cp_resilience::{Interrupt, RunControl};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

/// Why a fallible parallel region ([`try_par_for`], [`try_par_map`])
/// terminated without completing every chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionError {
    /// A chunk's task panicked; the panic was contained by the pool's
    /// `catch_unwind` (siblings kept their work, the pool survives) and
    /// is re-raised here as a typed error with the payload preserved.
    Panicked {
        /// The panic payload's message (`&str`/`String` payloads; other
        /// payload types surface as a placeholder).
        message: String,
    },
    /// The region's [`RunControl`] was interrupted; remaining chunks were
    /// drained without running.
    Interrupted(Interrupt),
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Panicked { message } => write!(f, "a parallel task panicked: {message}"),
            Self::Interrupted(i) => write!(f, "parallel region interrupted: {i}"),
        }
    }
}

impl std::error::Error for RegionError {}

/// Extracts a human-readable message from a panic payload.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The panic message used when the worker-panic fault fires (see
/// [`cp_resilience::sites::WORKER_PANIC`]).
const INJECTED_PANIC_MSG: &str = "injected fault: parallel.worker.panic";

/// Locks ignoring poisoning: a panicked task is already being reported
/// through the job's panic flag, so the guarded data stays usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide default thread budget: `CP_THREADS` when set to a
/// positive integer, otherwise the number of available cores.
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("CP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Hardware cores the OS reports, independent of `CP_THREADS` and
/// [`with_threads`] overrides. This is what bench reports should record as
/// `detected_cores`: the machine's capacity, not the configured budget.
pub fn detected_cores() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

thread_local! {
    static OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The thread budget in effect on this thread: the innermost
/// [`with_threads`] override, or [`max_threads`].
pub fn current_threads() -> usize {
    OVERRIDE
        .with(std::cell::Cell::get)
        .unwrap_or_else(max_threads)
}

/// Runs `f` with the thread budget overridden to `threads` (clamped to at
/// least 1). The override is scoped to this thread and restored on exit,
/// including on unwind.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// One parallel region. Lives in an `Arc` so stale queue entries stay
/// valid after the region completes; the type-erased `task` pointer is
/// only dereferenced while the submitter provably blocks in [`par_for`].
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    chunks: usize,
    /// Ambient trace span on the submitting thread; workers adopt it so
    /// spans opened inside chunks nest under the span that spawned the
    /// region (0 = tracing off or no ambient span).
    parent_span: u64,
    /// Cancellation/deadline/budget handle for fallible regions. `None`
    /// for the infallible primitives, whose behavior is unchanged.
    control: Option<RunControl>,
    /// Next chunk index to steal.
    next: AtomicUsize,
    /// Workers currently inside the region.
    active: AtomicUsize,
    /// Set by the submitter once every chunk has been claimed; late
    /// workers that see it never touch `task`.
    closed: AtomicBool,
    panicked: AtomicBool,
    /// Once set, remaining chunks are claimed but not run (fast drain
    /// after the first panic or interrupt).
    abandoned: AtomicBool,
    /// First captured panic, keyed by chunk index — the lowest-indexed
    /// chunk's message wins so reporting is stable under scheduling.
    panic_slot: Mutex<Option<(usize, String)>>,
    /// First observed interrupt.
    interrupt_slot: Mutex<Option<Interrupt>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

// SAFETY: `task` points at a `Sync` closure on the submitting thread's
// stack; the submitter blocks until `active` drains back to zero before
// the pointee can go out of scope, and `closed` keeps late workers from
// dereferencing it afterwards (see the interleaving argument in
// `par_for`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Steals and runs chunks until the counter is exhausted, returning
    /// how many this participant ran. Panics in the task are captured
    /// into `panic_slot` so every participant keeps draining (a worker
    /// must never unwind out of the pool loop); after the first panic or
    /// interrupt the region is abandoned and remaining chunks are claimed
    /// without running.
    fn run_chunks(&self) -> usize {
        // SAFETY: see the struct-level invariant — the submitter keeps the
        // pointee alive while any participant is registered.
        let task = unsafe { &*self.task };
        let mut ran = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.chunks {
                break;
            }
            if self.abandoned.load(Ordering::SeqCst) {
                continue;
            }
            if let Some(ctl) = &self.control {
                if let Err(interrupt) = ctl.poll(cp_resilience::sites::POOL_CHUNK) {
                    self.record_interrupt(interrupt);
                    continue;
                }
            }
            ran += 1;
            let inject = self.control.is_some()
                && cp_resilience::faultpoint!(cp_resilience::sites::WORKER_PANIC);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if inject {
                    panic!("{INJECTED_PANIC_MSG}");
                }
                task(i)
            }));
            if let Err(payload) = outcome {
                self.record_panic(i, payload_message(payload.as_ref()));
            }
        }
        ran
    }

    /// Records a contained panic (lowest chunk index wins) and abandons
    /// the region.
    fn record_panic(&self, chunk: usize, message: String) {
        self.panicked.store(true, Ordering::SeqCst);
        if self.control.is_some() {
            self.abandoned.store(true, Ordering::SeqCst);
        }
        let mut slot = lock(&self.panic_slot);
        match &*slot {
            Some((c, _)) if *c <= chunk => {}
            _ => *slot = Some((chunk, message)),
        }
    }

    /// Records the first observed interrupt and abandons the region.
    fn record_interrupt(&self, interrupt: Interrupt) {
        self.abandoned.store(true, Ordering::SeqCst);
        let mut slot = lock(&self.interrupt_slot);
        if slot.is_none() {
            *slot = Some(interrupt);
        }
    }

    /// Worker-side entry: register, steal chunks unless the region
    /// already closed (running them under the submitter's trace span),
    /// deregister, and wake the submitter when last out.
    fn run_worker(&self, worker: u32) {
        self.active.fetch_add(1, Ordering::SeqCst);
        if !self.closed.load(Ordering::SeqCst) {
            let ran = cp_trace::run_with_parent(self.parent_span, || self.run_chunks());
            if ran > 0 {
                cp_trace::counter_add_slot("pool.worker.tasks", worker, ran as u64);
            }
        }
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = lock(&self.done);
            self.done_cv.notify_all();
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
}

struct Pool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Spawns workers up to `want` (lazily, on demand). Spawn failures
    /// degrade gracefully to fewer workers — the submitter always
    /// participates, so the region still completes.
    fn ensure_workers(&self, want: usize) {
        let mut n = lock(&self.spawned);
        while *n < want {
            let shared = Arc::clone(&self.shared);
            let index = *n as u32;
            let spawned = thread::Builder::new()
                .name(format!("cp-par-{n}"))
                .spawn(move || worker_loop(&shared, index));
            if spawned.is_err() {
                break;
            }
            *n += 1;
        }
    }
}

fn worker_loop(shared: &Shared, index: u32) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        job.run_worker(index);
    }
}

/// Runs `task(i)` for every chunk index `0..chunks`, stealing chunks
/// across up to [`current_threads`] threads (the caller included). Blocks
/// until every chunk has finished. With a budget of 1 (or a single
/// chunk), runs inline with zero synchronization.
///
/// Scheduling is dynamic; determinism is the *caller's* contract — each
/// chunk must write only chunk-indexed state (see [`par_map`],
/// [`par_sum`] for ready-made deterministic shapes).
///
/// # Panics
///
/// Panics if any chunk's task panicked, after all participants have left
/// the region. The lowest-indexed panicking chunk's payload message is
/// preserved in the new panic's message.
pub fn par_for(chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    match par_for_region(chunks, None, task) {
        Ok(()) => {}
        Err(RegionError::Panicked { message }) => {
            panic!("cp-parallel: a parallel task panicked: {message}");
        }
        // Unreachable: regions without a control are never interrupted.
        Err(RegionError::Interrupted(i)) => {
            panic!("cp-parallel: control-free region interrupted: {i}");
        }
    }
}

/// Fallible [`par_for`]: runs chunks under `control`, checking it before
/// each chunk ([`cp_resilience::sites::POOL_CHUNK`], uncounted so the
/// schedule-dependent number of polls never perturbs deterministic
/// check counting). On the first panic or interrupt the region is
/// abandoned — remaining chunks are claimed but not run — and the typed
/// error is returned after every participant has left. A contained panic
/// preserves the payload message; the pool itself always survives.
pub fn try_par_for(
    chunks: usize,
    control: &RunControl,
    task: &(dyn Fn(usize) + Sync),
) -> Result<(), RegionError> {
    par_for_region(chunks, Some(control), task)
}

/// Shared region driver for [`par_for`] and [`try_par_for`].
fn par_for_region(
    chunks: usize,
    control: Option<&RunControl>,
    task: &(dyn Fn(usize) + Sync),
) -> Result<(), RegionError> {
    if chunks == 0 {
        return Ok(());
    }
    let budget = current_threads().min(chunks);
    if budget <= 1 {
        return inline_region(chunks, control, task);
    }
    let p = pool();
    p.ensure_workers(budget - 1);
    // SAFETY: erase the task's lifetime for the queue. Soundness argument:
    // a worker dereferences `task` only after registering in `active` and
    // stealing a chunk `< chunks`. Chunk exhaustion is monotone, and the
    // submitter sets `closed` only after exhaustion, then blocks until
    // `active == 0` (SeqCst total order makes the register/closed-check
    // pair on the worker and the closed-store/active-read pair here
    // mutually visible). So either the worker registered in time — and we
    // wait for it — or it observes `closed` and never touches `task`.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(Job {
        task: task_static as *const _,
        chunks,
        parent_span: cp_trace::current_span_id(),
        control: control.cloned(),
        next: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        panicked: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
        panic_slot: Mutex::new(None),
        interrupt_slot: Mutex::new(None),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
    });
    {
        let mut q = lock(&p.shared.queue);
        for _ in 0..budget - 1 {
            q.push_back(Arc::clone(&job));
        }
    }
    p.shared.available.notify_all();
    let ran = job.run_chunks();
    if ran > 0 {
        cp_trace::counter_add("pool.submitter.tasks", ran as u64);
    }
    job.closed.store(true, Ordering::SeqCst);
    {
        let mut guard = lock(&job.done);
        while job.active.load(Ordering::SeqCst) != 0 {
            guard = job
                .done_cv
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    if job.panicked.load(Ordering::SeqCst) {
        let message = lock(&job.panic_slot)
            .take()
            .map(|(_, m)| m)
            .unwrap_or_else(|| "opaque panic payload".to_string());
        return Err(RegionError::Panicked { message });
    }
    if let Some(interrupt) = lock(&job.interrupt_slot).take() {
        return Err(RegionError::Interrupted(interrupt));
    }
    Ok(())
}

/// Sequential fallback for a budget of one (or a single chunk). The
/// control-free path calls the task directly — panics unwind natively —
/// so the infallible primitives keep their zero-overhead inline path.
fn inline_region(
    chunks: usize,
    control: Option<&RunControl>,
    task: &(dyn Fn(usize) + Sync),
) -> Result<(), RegionError> {
    let Some(ctl) = control else {
        for i in 0..chunks {
            task(i);
        }
        return Ok(());
    };
    for i in 0..chunks {
        ctl.poll(cp_resilience::sites::POOL_CHUNK)
            .map_err(RegionError::Interrupted)?;
        let inject = cp_resilience::faultpoint!(cp_resilience::sites::WORKER_PANIC);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("{INJECTED_PANIC_MSG}");
            }
            task(i)
        }));
        if let Err(payload) = outcome {
            return Err(RegionError::Panicked {
                message: payload_message(payload.as_ref()),
            });
        }
    }
    Ok(())
}

/// Number of fixed-size chunks covering `n` items (`chunk` clamped to at
/// least 1). This is the only chunk geometry the crate uses, so results
/// depend on `(n, chunk)` alone.
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk.max(1))
}

/// Runs `f(chunk_index, range)` over the fixed chunking of `0..n`.
pub fn par_ranges(n: usize, chunk: usize, f: impl Fn(usize, Range<usize>) + Sync) {
    let chunk = chunk.max(1);
    par_for(chunk_count(n, chunk), &|i| {
        let start = i * chunk;
        f(i, start..(start + chunk).min(n));
    });
}

/// Raw-pointer wrapper so disjoint chunk writers can share one buffer.
/// Accessed through [`SendPtr::get`] so closures capture the `Sync`
/// wrapper rather than the raw pointer field.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}
// SAFETY: every user writes a disjoint index range (enforced by the fixed
// chunk geometry), so aliased mutation never occurs.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Maps `f` over one fixed-size range per chunk, returning the per-chunk
/// results ordered by chunk index. The building block for deterministic
/// reductions: combine the returned partials in any *fixed* order.
pub fn par_map_ranges<R: Send>(
    n: usize,
    chunk: usize,
    f: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let chunk = chunk.max(1);
    let chunks = chunk_count(n, chunk);
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(chunks);
    // SAFETY: MaybeUninit slots need no initialization.
    unsafe { out.set_len(chunks) };
    let ptr = SendPtr(out.as_mut_ptr());
    par_for(chunks, &|i| {
        let start = i * chunk;
        let v = f(start..(start + chunk).min(n));
        // SAFETY: chunk `i` owns slot `i` exclusively.
        unsafe { ptr.get().add(i).write(MaybeUninit::new(v)) };
    });
    // A panicking chunk aborts via par_for's panic before reaching here,
    // leaking (not dropping) the buffer — safe, if wasteful.
    let mut out = ManuallyDrop::new(out);
    // SAFETY: all `chunks` slots were initialized exactly once above.
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), chunks, out.capacity()) }
}

/// Parallel element map with order-preserving output: `out[i] = f(&items[i])`.
pub fn par_map<T: Sync, R: Send>(items: &[T], chunk: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit slots need no initialization.
    unsafe { out.set_len(n) };
    let ptr = SendPtr(out.as_mut_ptr());
    par_ranges(n, chunk, |_, r| {
        for i in r {
            // SAFETY: index `i` belongs to exactly one chunk.
            unsafe { ptr.get().add(i).write(MaybeUninit::new(f(&items[i]))) };
        }
    });
    let mut out = ManuallyDrop::new(out);
    // SAFETY: all `n` slots were initialized exactly once above.
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), n, out.capacity()) }
}

/// Fallible [`par_map`]: maps `f` over `items` under `control`. `Ok`
/// means every element was produced, so partial results can never leak
/// out of an interrupted or panicked region; on `Err` the intermediate
/// buffer is discarded without dropping element contents (initialized
/// slots leak their heap allocations — safe, if wasteful, and only on
/// the error path).
pub fn try_par_map<T: Sync, R: Send>(
    items: &[T],
    chunk: usize,
    control: &RunControl,
    f: impl Fn(&T) -> R + Sync,
) -> Result<Vec<R>, RegionError> {
    let n = items.len();
    let chunk = chunk.max(1);
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit slots need no initialization.
    unsafe { out.set_len(n) };
    let ptr = SendPtr(out.as_mut_ptr());
    let result = par_for_region(chunk_count(n, chunk), Some(control), &|ci| {
        let start = ci * chunk;
        let end = (start + chunk).min(n);
        for (i, item) in items.iter().enumerate().take(end).skip(start) {
            // SAFETY: index `i` belongs to exactly one chunk.
            unsafe { ptr.get().add(i).write(MaybeUninit::new(f(item))) };
        }
    });
    match result {
        Ok(()) => {
            let mut out = ManuallyDrop::new(out);
            // SAFETY: Ok means every chunk completed, so all `n` slots
            // were initialized exactly once above.
            Ok(unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<R>(), n, out.capacity()) })
        }
        // Dropping Vec<MaybeUninit<R>> frees the buffer without running
        // any R destructors — safe even with uninitialized slots.
        Err(e) => Err(e),
    }
}

/// Splits `data` into fixed-size chunks and hands each chunk mutably to
/// `f(chunk_index, offset, slice)` — slices are disjoint, so this is safe
/// parallel in-place mutation.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk: usize,
    f: impl Fn(usize, usize, &mut [T]) + Sync,
) {
    let n = data.len();
    let ptr = SendPtr(data.as_mut_ptr());
    par_ranges(n, chunk, |ci, r| {
        // SAFETY: ranges from the fixed chunking are pairwise disjoint.
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        f(ci, r.start, slice);
    });
}

/// [`par_chunks_mut`] fused with a deterministic reduction: each chunk
/// mutates its disjoint slice and returns a partial, and the partials are
/// tree-combined in fixed order ([`tree_combine`]) — one memory pass
/// where a mutate-then-reduce pair would take two. The reduction is
/// bit-identical to running [`par_chunks_mut`] followed by [`par_sum`]
/// over the same chunk geometry whenever `f` accumulates its partial in
/// index order.
pub fn par_chunks_mut_sum<T: Send>(
    data: &mut [T],
    chunk: usize,
    f: impl Fn(usize, usize, &mut [T]) -> f64 + Sync,
) -> f64 {
    let n = data.len();
    let chunk = chunk.max(1);
    let ptr = SendPtr(data.as_mut_ptr());
    let parts = par_map_ranges(n, chunk, |r| {
        // SAFETY: ranges from the fixed chunking are pairwise disjoint.
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
        f(r.start / chunk, r.start, slice)
    });
    tree_combine(parts, |a, b| a + b).unwrap_or(0.0)
}

/// Two-buffer [`par_chunks_mut_sum`]: `a` and `b` are chunked with the
/// same fixed geometry and each chunk mutates both disjoint slices,
/// returning a partial for the fixed-order tree reduction. The CG fused
/// kernels use this to update the iterate and the residual — and reduce
/// the new residual norm — in a single pass.
///
/// # Panics
///
/// Panics if `a` and `b` differ in length.
pub fn par_chunks2_mut_sum<T: Send>(
    a: &mut [T],
    b: &mut [T],
    chunk: usize,
    f: impl Fn(usize, usize, &mut [T], &mut [T]) -> f64 + Sync,
) -> f64 {
    assert_eq!(a.len(), b.len(), "par_chunks2_mut_sum buffers differ");
    let n = a.len();
    let chunk = chunk.max(1);
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    let parts = par_map_ranges(n, chunk, |r| {
        // SAFETY: ranges from the fixed chunking are pairwise disjoint,
        // and `a`/`b` are distinct exclusive borrows.
        let sa = unsafe { std::slice::from_raw_parts_mut(pa.get().add(r.start), r.len()) };
        let sb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(r.start), r.len()) };
        f(r.start / chunk, r.start, sa, sb)
    });
    tree_combine(parts, |a, b| a + b).unwrap_or(0.0)
}

/// Combines `parts` pairwise in fixed order until one value remains:
/// `((p0 ⊕ p1) ⊕ (p2 ⊕ p3)) ⊕ …`. The combination tree depends only on
/// `parts.len()`, which is what makes the reductions here bit-identical
/// across thread counts.
pub fn tree_combine<A>(mut parts: Vec<A>, combine: impl Fn(A, A) -> A) -> Option<A> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.pop()
}

/// Deterministic parallel sum: `f` produces each fixed chunk's partial
/// (computed sequentially inside the chunk), and the partials are
/// tree-combined in fixed order. For `n <= chunk` this degenerates to the
/// plain sequential sum.
pub fn par_sum(n: usize, chunk: usize, f: impl Fn(Range<usize>) -> f64 + Sync) -> f64 {
    if n == 0 {
        return 0.0;
    }
    tree_combine(par_map_ranges(n, chunk, f), |a, b| a + b).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = with_threads(4, || par_map(&items, 7, |&x| x * 2));
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_sum_is_thread_count_invariant() {
        // Values chosen so float addition order matters.
        let vals: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2_654_435_761_u64) % 1000) as f64 * 1e-3 + 1e9 * ((i % 7) as f64))
            .collect();
        let sum_at = |t: usize| {
            with_threads(t, || {
                par_sum(vals.len(), 128, |r| {
                    let mut s = 0.0;
                    for i in r {
                        s += vals[i];
                    }
                    s
                })
            })
        };
        let s1 = sum_at(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(s1.to_bits(), sum_at(t).to_bits(), "threads = {t}");
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_slices() {
        let mut data = vec![0usize; 501];
        with_threads(4, || {
            par_chunks_mut(&mut data, 13, |_, offset, slice| {
                for (k, v) in slice.iter_mut().enumerate() {
                    *v = offset + k;
                }
            });
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn par_chunks_mut_sum_matches_separate_passes() {
        let vals: Vec<f64> = (0..5000)
            .map(|i| ((i * 2_654_435_761_u64) % 997) as f64 * 1e-3)
            .collect();
        // Reference: mutate, then reduce over the same chunk geometry.
        let mut a = vals.clone();
        par_chunks_mut(&mut a, 128, |_, off, s| {
            for (k, v) in s.iter_mut().enumerate() {
                *v = *v * 2.0 + (off + k) as f64;
            }
        });
        let want = par_sum(a.len(), 128, |r| {
            let mut s = 0.0;
            for i in r {
                s += a[i] * a[i];
            }
            s
        });
        for t in [1usize, 4, 8] {
            let mut b = vals.clone();
            let got = with_threads(t, || {
                par_chunks_mut_sum(&mut b, 128, |_, off, s| {
                    let mut acc = 0.0;
                    for (k, v) in s.iter_mut().enumerate() {
                        *v = *v * 2.0 + (off + k) as f64;
                        acc += *v * *v;
                    }
                    acc
                })
            });
            assert_eq!(want.to_bits(), got.to_bits(), "threads = {t}");
            assert_eq!(a, b, "threads = {t}");
        }
    }

    #[test]
    fn par_chunks2_mut_sum_is_thread_count_invariant() {
        let n = 3000;
        let run = |t: usize| {
            let mut x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
            let mut r: Vec<f64> = (0..n).map(|i| (n - i) as f64 * 0.25).collect();
            let s = with_threads(t, || {
                par_chunks2_mut_sum(&mut x, &mut r, 64, |_, _, sx, sr| {
                    let mut acc = 0.0;
                    for (xi, ri) in sx.iter_mut().zip(sr.iter_mut()) {
                        *xi += 0.125 * *ri;
                        *ri -= 0.25 * *xi;
                        acc += *ri * *ri;
                    }
                    acc
                })
            });
            (x, r, s.to_bits())
        };
        let base = run(1);
        for t in [2, 4, 8] {
            assert_eq!(base, run(t), "threads = {t}");
        }
    }

    #[test]
    #[should_panic(expected = "buffers differ")]
    fn par_chunks2_mut_sum_rejects_length_mismatch() {
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 5];
        par_chunks2_mut_sum(&mut a, &mut b, 2, |_, _, _, _| 0.0);
    }

    #[test]
    fn all_threads_participate() {
        let seen = AtomicU64::new(0);
        with_threads(4, || {
            par_for(64, &|_| {
                // Record which thread ran a chunk (best effort; the
                // submitter may legitimately steal everything on a loaded
                // machine, so only the side-effect count is asserted).
                seen.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        assert_eq!(seen.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn nested_parallelism_completes() {
        let total = AtomicU64::new(0);
        with_threads(4, || {
            par_for(8, &|_| {
                let inner = par_sum(100, 10, |r| r.map(|i| i as f64).sum());
                assert_eq!(inner, 4950.0);
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn with_threads_restores_budget() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    #[should_panic(expected = "a parallel task panicked")]
    fn panics_propagate_to_the_submitter() {
        with_threads(4, || {
            par_for(16, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        });
    }

    #[test]
    fn try_par_for_preserves_panic_message() {
        let ctl = RunControl::unlimited();
        for threads in [1, 4] {
            let err = with_threads(threads, || {
                try_par_for(16, &ctl, &|i| {
                    if i == 5 {
                        panic!("task {i} exploded");
                    }
                })
            })
            .expect_err("panicking region must fail");
            match err {
                RegionError::Panicked { message } => {
                    assert!(message.contains("exploded"), "got: {message}")
                }
                other => panic!("expected Panicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_par_for_pool_survives_contained_panic() {
        let ctl = RunControl::unlimited();
        let _ = with_threads(4, || try_par_for(8, &ctl, &|_| panic!("boom")));
        // The pool must still run subsequent regions to completion.
        let ok = AtomicU64::new(0);
        with_threads(4, || {
            par_for(32, &|_| {
                ok.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert_eq!(ok.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn try_par_for_observes_cancellation() {
        for threads in [1, 4] {
            let ctl = RunControl::unlimited();
            ctl.cancel();
            let ran = AtomicU64::new(0);
            let err = with_threads(threads, || {
                try_par_for(64, &ctl, &|_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                })
            })
            .expect_err("cancelled region must fail");
            assert!(matches!(err, RegionError::Interrupted(_)), "got {err:?}");
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads = {threads}");
        }
    }

    #[test]
    fn try_par_map_matches_par_map_when_uninterrupted() {
        let items: Vec<u64> = (0..500).collect();
        let ctl = RunControl::unlimited();
        for threads in [1, 4] {
            let out = with_threads(threads, || try_par_map(&items, 7, &ctl, |&x| x * 3))
                .expect("uninterrupted map succeeds");
            assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_par_map_cancelled_yields_no_partial_results() {
        let ctl = RunControl::unlimited();
        ctl.cancel();
        let items: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let err = with_threads(4, || try_par_map(&items, 4, &ctl, |s| format!("out-{s}")))
            .expect_err("cancelled map must fail");
        assert!(matches!(err, RegionError::Interrupted(_)));
    }

    #[test]
    fn tree_combine_shape_is_fixed() {
        // Combine with string concatenation to observe the tree shape.
        let parts: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let combined =
            tree_combine(parts, |a, b| format!("({a}{b})")).expect("non-empty parts combine");
        assert_eq!(combined, "(((01)(23))4)");
    }

    #[test]
    fn zero_and_single_chunk_edge_cases() {
        assert_eq!(par_sum(0, 16, |_| 1.0), 0.0);
        assert_eq!(par_sum(5, 16, |r| r.len() as f64), 5.0);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        par_for(0, &|_| panic!("must not run"));
    }
}
