//! Synthetic standard-cell library — the NanGate45 stand-in.
//!
//! Units used throughout the toolkit:
//!
//! | Quantity    | Unit | Note |
//! |-------------|------|------|
//! | distance    | µm   | |
//! | time        | ps   | `kΩ · fF = ps` keeps delay math unit-free |
//! | capacitance | fF   | |
//! | resistance  | kΩ   | |
//! | energy      | fJ   | internal energy per output toggle |
//! | power       | µW   | leakage; reports convert to W |
//!
//! Cell delay uses the standard linear model
//! `d = intrinsic + drive_res · C_load`, and every combinational function
//! carries a truth table so vectorless switching activity can be propagated
//! exactly (Boolean-difference method).

use crate::ids::CellTypeId;
use std::collections::HashMap;

/// Coarse classification of a cell master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Ordinary combinational logic.
    Combinational,
    /// Edge-triggered flip-flop.
    Sequential,
    /// Clock buffer (used by CTS; excluded from signal clustering costs).
    ClockBuffer,
    /// Block abstraction (used for cluster macros in the clustered netlist).
    Macro,
}

/// Logic function of a cell, used for delay arcs and activity propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicFunction {
    /// `y = a`
    Buf,
    /// `y = !a`
    Inv,
    /// `y = a & b`
    And2,
    /// `y = !(a & b)`
    Nand2,
    /// `y = a | b`
    Or2,
    /// `y = !(a | b)`
    Nor2,
    /// `y = a ^ b`
    Xor2,
    /// `y = !(a ^ b)`
    Xnor2,
    /// `y = s ? b : a` (inputs ordered `a, b, s`)
    Mux2,
    /// `y = !((a & b) | c)` (and-or-invert)
    Aoi21,
    /// `y = !((a | b) & c)` (or-and-invert)
    Oai21,
    /// Majority of three (full-adder carry)
    Maj3,
    /// `y = a ^ b ^ c` (full-adder sum)
    Xor3,
    /// D flip-flop (inputs `d, ck`; output `q`)
    Dff,
    /// Opaque block (cluster macro)
    Opaque,
}

impl LogicFunction {
    /// Number of signal input pins (the DFF clock pin counts).
    pub fn input_count(self) -> usize {
        match self {
            Self::Buf | Self::Inv => 1,
            Self::And2
            | Self::Nand2
            | Self::Or2
            | Self::Nor2
            | Self::Xor2
            | Self::Xnor2
            | Self::Dff => 2,
            Self::Mux2 | Self::Aoi21 | Self::Oai21 | Self::Maj3 | Self::Xor3 => 3,
            Self::Opaque => 0,
        }
    }

    /// Evaluates the combinational function (`None` for sequential/opaque).
    pub fn eval(self, inputs: &[bool]) -> Option<bool> {
        let v = |i: usize| inputs[i];
        Some(match self {
            Self::Buf => v(0),
            Self::Inv => !v(0),
            Self::And2 => v(0) & v(1),
            Self::Nand2 => !(v(0) & v(1)),
            Self::Or2 => v(0) | v(1),
            Self::Nor2 => !(v(0) | v(1)),
            Self::Xor2 => v(0) ^ v(1),
            Self::Xnor2 => !(v(0) ^ v(1)),
            Self::Mux2 => {
                if v(2) {
                    v(1)
                } else {
                    v(0)
                }
            }
            Self::Aoi21 => !((v(0) & v(1)) | v(2)),
            Self::Oai21 => !((v(0) | v(1)) & v(2)),
            Self::Maj3 => (v(0) & v(1)) | (v(1) & v(2)) | (v(0) & v(2)),
            Self::Xor3 => v(0) ^ v(1) ^ v(2),
            Self::Dff | Self::Opaque => return None,
        })
    }

    /// Truth table over `input_count()` inputs, bit `i` = output for the
    /// minterm whose input `j` is bit `j` of `i`. `None` for DFF/opaque.
    pub fn truth_table(self) -> Option<u16> {
        if matches!(self, Self::Dff | Self::Opaque) {
            return None;
        }
        let n = self.input_count();
        let mut table = 0u16;
        for m in 0..(1u16 << n) {
            let bits: Vec<bool> = (0..n).map(|j| (m >> j) & 1 == 1).collect();
            if self.eval(&bits) == Some(true) {
                table |= 1 << m;
            }
        }
        Some(table)
    }

    /// `true` for [`LogicFunction::Dff`].
    pub fn is_sequential(self) -> bool {
        matches!(self, Self::Dff)
    }
}

/// A cell master (library cell).
#[derive(Debug, Clone, PartialEq)]
pub struct CellType {
    /// Master name, e.g. `NAND2_X1`.
    pub name: String,
    /// Classification.
    pub class: CellClass,
    /// Logic function for timing arcs and activity propagation.
    pub function: LogicFunction,
    /// Width in µm.
    pub width: f64,
    /// Height in µm (one row height for standard cells).
    pub height: f64,
    /// Input pin names, in [`LogicFunction`] input order.
    pub input_names: Vec<String>,
    /// Input pin capacitances in fF, same order.
    pub input_caps: Vec<f64>,
    /// Output pin name (empty for sink-only masters).
    pub output_name: String,
    /// Output drive resistance in kΩ.
    pub drive_res: f64,
    /// Intrinsic (load-independent) delay in ps.
    pub intrinsic_delay: f64,
    /// Internal energy per output toggle in fJ.
    pub internal_energy: f64,
    /// Leakage power in µW.
    pub leakage: f64,
}

impl CellType {
    /// Footprint area in µm².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Index of the clock pin for sequential cells (`ck` is input 1).
    pub fn clock_pin(&self) -> Option<usize> {
        self.function.is_sequential().then_some(1)
    }

    /// Number of input pins.
    pub fn input_count(&self) -> usize {
        self.input_names.len()
    }
}

/// A cell library plus the interconnect technology constants the delay and
/// congestion models need.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Library name.
    pub name: String,
    /// Standard-cell row height in µm.
    pub row_height: f64,
    /// Placement site width in µm.
    pub site_width: f64,
    /// Wire resistance in kΩ/µm.
    pub wire_res: f64,
    /// Wire capacitance in fF/µm.
    pub wire_cap: f64,
    /// Routing track capacity per GCell edge per layer direction.
    pub tracks_per_layer: u32,
    /// Number of horizontal routing layers (vertical count assumed equal).
    pub horizontal_layers: u32,
    types: Vec<CellType>,
    by_name: HashMap<String, CellTypeId>,
}

impl Library {
    /// Creates an empty library with the given technology constants.
    pub fn new(name: impl Into<String>, row_height: f64, site_width: f64) -> Self {
        Self {
            name: name.into(),
            row_height,
            site_width,
            wire_res: 0.004,
            wire_cap: 0.20,
            tracks_per_layer: 10,
            horizontal_layers: 3,
            types: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Registers a cell master, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a master with the same name already exists.
    pub fn add(&mut self, cell: CellType) -> CellTypeId {
        let id = CellTypeId(self.types.len() as u32);
        let prev = self.by_name.insert(cell.name.clone(), id);
        assert!(prev.is_none(), "duplicate cell master {}", cell.name);
        self.types.push(cell);
        id
    }

    /// Looks up a master by id.
    pub fn cell(&self, id: CellTypeId) -> &CellType {
        &self.types[id.index()]
    }

    /// Looks up a master id by name.
    pub fn find(&self, name: &str) -> Option<CellTypeId> {
        self.by_name.get(name).copied()
    }

    /// All masters in id order.
    pub fn cells(&self) -> &[CellType] {
        &self.types
    }

    /// Number of masters.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// `true` if the library holds no masters.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The synthetic 45 nm-flavored library used across the toolkit: a
    /// NanGate45 stand-in with drive-strength variants of the common gates.
    ///
    /// # Examples
    ///
    /// ```
    /// use cp_netlist::Library;
    ///
    /// let lib = Library::nangate45ish();
    /// let inv = lib.cell(lib.find("INV_X1").unwrap());
    /// assert!(inv.area() > 0.0);
    /// ```
    pub fn nangate45ish() -> Self {
        let mut lib = Self::new("nangate45ish", 1.4, 0.19);
        let h = lib.row_height;
        let site_width = lib.site_width;
        let w = move |sites: u32| sites as f64 * site_width;
        use LogicFunction::*;
        let gate = |name: &str,
                    f: LogicFunction,
                    sites: u32,
                    cap: f64,
                    res: f64,
                    intr: f64,
                    energy: f64,
                    leak: f64| {
            let names: Vec<String> = match f.input_count() {
                1 => vec!["a".into()],
                2 if f.is_sequential() => vec!["d".into(), "ck".into()],
                2 => vec!["a".into(), "b".into()],
                3 if f == Mux2 => vec!["a".into(), "b".into(), "s".into()],
                3 => vec!["a".into(), "b".into(), "c".into()],
                _ => vec![],
            };
            let caps = vec![cap; names.len()];
            CellType {
                name: name.into(),
                class: if f.is_sequential() {
                    CellClass::Sequential
                } else if name.starts_with("CLKBUF") {
                    CellClass::ClockBuffer
                } else {
                    CellClass::Combinational
                },
                function: f,
                width: w(sites),
                height: h,
                input_names: names,
                input_caps: caps,
                output_name: if f.is_sequential() { "q" } else { "y" }.into(),
                drive_res: res,
                intrinsic_delay: intr,
                internal_energy: energy,
                leakage: leak,
            }
        };
        // name, function, sites, in-cap fF, drive kΩ, intrinsic ps, energy fJ, leak µW
        lib.add(gate("INV_X1", Inv, 2, 1.0, 6.0, 8.0, 0.6, 0.02));
        lib.add(gate("INV_X2", Inv, 3, 2.0, 3.0, 8.0, 1.0, 0.04));
        lib.add(gate("INV_X4", Inv, 5, 4.0, 1.5, 8.0, 1.8, 0.08));
        lib.add(gate("BUF_X1", Buf, 3, 1.0, 6.0, 16.0, 1.0, 0.03));
        lib.add(gate("BUF_X2", Buf, 4, 2.0, 3.0, 16.0, 1.6, 0.05));
        lib.add(gate("BUF_X4", Buf, 6, 4.0, 1.5, 16.0, 2.8, 0.10));
        lib.add(gate("NAND2_X1", Nand2, 3, 1.2, 6.5, 10.0, 0.9, 0.03));
        lib.add(gate("NAND2_X2", Nand2, 4, 2.4, 3.2, 10.0, 1.5, 0.06));
        lib.add(gate("NOR2_X1", Nor2, 3, 1.2, 7.5, 11.0, 0.9, 0.03));
        lib.add(gate("AND2_X1", And2, 4, 1.2, 6.5, 18.0, 1.2, 0.04));
        lib.add(gate("OR2_X1", Or2, 4, 1.2, 7.0, 19.0, 1.2, 0.04));
        lib.add(gate("XOR2_X1", Xor2, 5, 1.8, 7.5, 22.0, 1.8, 0.05));
        lib.add(gate("XNOR2_X1", Xnor2, 5, 1.8, 7.5, 22.0, 1.8, 0.05));
        lib.add(gate("MUX2_X1", Mux2, 6, 1.5, 7.0, 24.0, 1.9, 0.06));
        lib.add(gate("AOI21_X1", Aoi21, 4, 1.3, 7.0, 14.0, 1.1, 0.04));
        lib.add(gate("OAI21_X1", Oai21, 4, 1.3, 7.0, 14.0, 1.1, 0.04));
        lib.add(gate("MAJ3_X1", Maj3, 7, 1.5, 7.5, 26.0, 2.2, 0.07));
        lib.add(gate("XOR3_X1", Xor3, 8, 1.9, 8.0, 30.0, 2.6, 0.08));
        lib.add(gate("DFF_X1", Dff, 9, 1.4, 6.0, 55.0, 3.5, 0.15));
        lib.add(gate("DFF_X2", Dff, 11, 2.6, 3.0, 55.0, 5.0, 0.25));
        lib.add(gate("CLKBUF_X1", Buf, 3, 1.1, 6.0, 15.0, 1.2, 0.04));
        lib.add(gate("CLKBUF_X2", Buf, 4, 2.2, 3.0, 15.0, 2.0, 0.07));
        lib.add(gate("CLKBUF_X4", Buf, 6, 4.2, 1.5, 15.0, 3.4, 0.12));
        lib
    }

    /// Registers a macro master of the given footprint (used for cluster
    /// blocks in the clustered netlist). The name must be unique.
    pub fn add_macro(&mut self, name: impl Into<String>, width: f64, height: f64) -> CellTypeId {
        self.add(CellType {
            name: name.into(),
            class: CellClass::Macro,
            function: LogicFunction::Opaque,
            width,
            height,
            input_names: Vec::new(),
            input_caps: Vec::new(),
            output_name: String::new(),
            drive_res: 2.0,
            intrinsic_delay: 0.0,
            internal_energy: 0.0,
            leakage: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_match_eval() {
        use LogicFunction::*;
        for f in [
            Buf, Inv, And2, Nand2, Or2, Nor2, Xor2, Xnor2, Mux2, Aoi21, Oai21, Maj3, Xor3,
        ] {
            let table = f.truth_table().unwrap();
            let n = f.input_count();
            for m in 0..(1u16 << n) {
                let bits: Vec<bool> = (0..n).map(|j| (m >> j) & 1 == 1).collect();
                assert_eq!(
                    (table >> m) & 1 == 1,
                    f.eval(&bits).unwrap(),
                    "{f:?} minterm {m}"
                );
            }
        }
    }

    #[test]
    fn dff_has_no_table() {
        assert_eq!(LogicFunction::Dff.truth_table(), None);
        assert!(LogicFunction::Dff.is_sequential());
        assert_eq!(LogicFunction::Dff.eval(&[true, false]), None);
    }

    #[test]
    fn mux_semantics() {
        // inputs (a, b, s): s selects b.
        assert_eq!(LogicFunction::Mux2.eval(&[true, false, false]), Some(true));
        assert_eq!(LogicFunction::Mux2.eval(&[true, false, true]), Some(false));
    }

    #[test]
    fn nangate45ish_is_well_formed() {
        let lib = Library::nangate45ish();
        assert!(lib.len() >= 20);
        for ct in lib.cells() {
            assert!(ct.width > 0.0 && ct.height > 0.0, "{}", ct.name);
            assert_eq!(ct.input_caps.len(), ct.input_names.len());
            if ct.class != CellClass::Macro {
                assert_eq!(ct.input_count(), ct.function.input_count(), "{}", ct.name);
            }
        }
        // Higher drive ⇒ lower resistance, bigger area.
        let x1 = lib.cell(lib.find("INV_X1").unwrap());
        let x4 = lib.cell(lib.find("INV_X4").unwrap());
        assert!(x4.drive_res < x1.drive_res);
        assert!(x4.area() > x1.area());
    }

    #[test]
    fn dff_clock_pin() {
        let lib = Library::nangate45ish();
        let dff = lib.cell(lib.find("DFF_X1").unwrap());
        assert_eq!(dff.clock_pin(), Some(1));
        assert_eq!(dff.input_names[1], "ck");
        let inv = lib.cell(lib.find("INV_X1").unwrap());
        assert_eq!(inv.clock_pin(), None);
    }

    #[test]
    fn macro_registration() {
        let mut lib = Library::nangate45ish();
        let id = lib.add_macro("CLUST_0", 25.0, 20.0);
        let m = lib.cell(id);
        assert_eq!(m.class, CellClass::Macro);
        assert_eq!(m.area(), 500.0);
        assert_eq!(lib.find("CLUST_0"), Some(id));
    }

    #[test]
    #[should_panic(expected = "duplicate cell master")]
    fn duplicate_master_panics() {
        let mut lib = Library::nangate45ish();
        lib.add_macro("INV_X1", 1.0, 1.0);
    }
}
