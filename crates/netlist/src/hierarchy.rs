//! Logical hierarchy tree (module-instance tree).
//!
//! Every cell in a [`crate::Netlist`] belongs to exactly one tree node — the
//! deepest module instance containing it. Algorithm 2 of the paper builds a
//! dendrogram over this tree.

use crate::ids::HierNodeId;

/// One node of the hierarchy tree (a module instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierNode {
    /// Instance name (not the full path).
    pub name: String,
    /// Parent node (`None` for the root).
    pub parent: Option<HierNodeId>,
    /// Child module instances.
    pub children: Vec<HierNodeId>,
    /// Depth from the root (root = 0).
    pub depth: u32,
}

/// The logical hierarchy tree of a design.
///
/// # Examples
///
/// ```
/// use cp_netlist::HierTree;
///
/// let mut tree = HierTree::new("top");
/// let core = tree.add_child(HierTree::ROOT, "u_core");
/// let alu = tree.add_child(core, "u_alu");
/// assert_eq!(tree.path(alu), "top/u_core/u_alu");
/// assert_eq!(tree.node(alu).depth, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierTree {
    nodes: Vec<HierNode>,
}

impl HierTree {
    /// The root node id.
    pub const ROOT: HierNodeId = HierNodeId(0);

    /// Creates a tree holding only the root (the top module).
    pub fn new(top_name: impl Into<String>) -> Self {
        Self {
            nodes: vec![HierNode {
                name: top_name.into(),
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
        }
    }

    /// Adds a child module instance under `parent`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn add_child(&mut self, parent: HierNodeId, name: impl Into<String>) -> HierNodeId {
        let depth = self.nodes[parent.index()].depth + 1;
        let id = HierNodeId(self.nodes.len() as u32);
        self.nodes.push(HierNode {
            name: name.into(),
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// The node with the given id.
    pub fn node(&self, id: HierNodeId) -> &HierNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes, root included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false`: a tree always holds at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if the node has no child module instances.
    pub fn is_leaf(&self, id: HierNodeId) -> bool {
        self.nodes[id.index()].children.is_empty()
    }

    /// Full hierarchical path, `/`-separated from the root.
    pub fn path(&self, id: HierNodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            parts.push(self.nodes[c.index()].name.as_str());
            cur = self.nodes[c.index()].parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// The ancestor of `id` at the given depth (or `id` itself if its depth
    /// is already `<= depth`).
    pub fn ancestor_at_depth(&self, id: HierNodeId, depth: u32) -> HierNodeId {
        let mut cur = id;
        while self.nodes[cur.index()].depth > depth {
            // Only the root (depth 0) lacks a parent, and 0 is never > depth.
            let Some(p) = self.nodes[cur.index()].parent else {
                break;
            };
            cur = p;
        }
        cur
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// All node ids in creation (pre-order-compatible) order.
    pub fn ids(&self) -> impl Iterator<Item = HierNodeId> + '_ {
        (0..self.nodes.len() as u32).map(HierNodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (HierTree, HierNodeId, HierNodeId, HierNodeId) {
        let mut t = HierTree::new("top");
        let a = t.add_child(HierTree::ROOT, "a");
        let b = t.add_child(HierTree::ROOT, "b");
        let aa = t.add_child(a, "aa");
        (t, a, b, aa)
    }

    #[test]
    fn structure() {
        let (t, a, b, aa) = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.node(a).depth, 1);
        assert_eq!(t.node(aa).depth, 2);
        assert!(t.is_leaf(b));
        assert!(!t.is_leaf(a));
        assert_eq!(t.node(HierTree::ROOT).children, vec![a, b]);
        assert_eq!(t.max_depth(), 2);
    }

    #[test]
    fn paths() {
        let (t, _, b, aa) = sample();
        assert_eq!(t.path(HierTree::ROOT), "top");
        assert_eq!(t.path(b), "top/b");
        assert_eq!(t.path(aa), "top/a/aa");
    }

    #[test]
    fn ancestors() {
        let (t, a, _, aa) = sample();
        assert_eq!(t.ancestor_at_depth(aa, 1), a);
        assert_eq!(t.ancestor_at_depth(aa, 0), HierTree::ROOT);
        assert_eq!(t.ancestor_at_depth(aa, 5), aa);
    }
}
