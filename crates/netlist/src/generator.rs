//! Hierarchical synthetic design generation.
//!
//! The paper evaluates on six open testcases (aes, jpeg, ariane,
//! BlackParrot, MegaBoom, MemPool Group). Real RTL and a synthesis flow are
//! out of scope for a pure-Rust reproduction, so this module generates
//! gate-level netlists whose *clustering-relevant structure* matches those
//! designs:
//!
//! - a logical hierarchy tree of configurable depth/branching whose leaf
//!   modules hold the cells (Algorithm 2 clusters this tree);
//! - Rent-style connection locality: most wiring stays inside a module, and
//!   cross-module wiring prefers tree-proximal modules — the property that
//!   makes hierarchy-guided clustering effective;
//! - pipelined combinational cones between flip-flops of configurable depth,
//!   giving real timing paths for the PPA-aware timing costs;
//! - primary IO spread around the design and a single clock domain.
//!
//! Each benchmark has a [`DesignProfile`] capturing Table 1's statistics;
//! [`GeneratorConfig::scale`] shrinks a profile for laptop-scale runs while
//! preserving its shape.

use crate::hierarchy::HierTree;
use crate::ids::{CellId, CellTypeId, HierNodeId, PortId};
use crate::library::Library;
use crate::netlist::{Netlist, NetlistBuilder, PinRef, PortDir};
use crate::sdc::Constraints;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// The six benchmark profiles of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignProfile {
    /// AES cipher core (15 547 insts).
    Aes,
    /// JPEG encoder (53 042 insts).
    Jpeg,
    /// Ariane RISC-V core (119 256 insts).
    Ariane,
    /// BlackParrot multicore (768 851 insts).
    BlackParrot,
    /// MegaBoom OoO core (1 086 920 insts).
    MegaBoom,
    /// MemPool Group manycore (2 729 729 insts).
    MemPoolGroup,
}

impl DesignProfile {
    /// All six profiles in Table 1 order.
    pub const ALL: [Self; 6] = [
        Self::Aes,
        Self::Jpeg,
        Self::Ariane,
        Self::BlackParrot,
        Self::MegaBoom,
        Self::MemPoolGroup,
    ];

    /// Design name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Self::Aes => "aes",
            Self::Jpeg => "jpeg",
            Self::Ariane => "ariane",
            Self::BlackParrot => "BlackParrot",
            Self::MegaBoom => "MegaBoom",
            Self::MemPoolGroup => "MemPool Group",
        }
    }

    /// Instance count reported in Table 1.
    pub fn table1_insts(self) -> usize {
        match self {
            Self::Aes => 15_547,
            Self::Jpeg => 53_042,
            Self::Ariane => 119_256,
            Self::BlackParrot => 768_851,
            Self::MegaBoom => 1_086_920,
            Self::MemPoolGroup => 2_729_729,
        }
    }

    /// Net count reported in Table 1.
    pub fn table1_nets(self) -> usize {
        match self {
            Self::Aes => 16_338,
            Self::Jpeg => 58_898,
            Self::Ariane => 142_226,
            Self::BlackParrot => 998_716,
            Self::MegaBoom => 1_443_755,
            Self::MemPoolGroup => 3_087_191,
        }
    }

    /// OpenROAD-flow target clock period in ps (`TCP_OR`). Table 1 lists
    /// `NA` for MegaBoom and MemPool Group; we assign representative values
    /// so timing-driven experiments can still run on them.
    pub fn clock_period(self) -> f64 {
        match self {
            Self::Aes => 550.0,
            Self::Jpeg => 800.0,
            Self::Ariane => 1800.0,
            Self::BlackParrot => 2300.0,
            Self::MegaBoom => 2500.0,
            Self::MemPoolGroup => 3000.0,
        }
    }
}

/// Generator parameters; construct via [`GeneratorConfig::from_profile`] or
/// fill fields directly for custom designs.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Design name.
    pub name: String,
    /// Cell target before scaling.
    pub target_cells: usize,
    /// Multiplier applied to `target_cells` (see [`GeneratorConfig::scale`]).
    pub scale_factor: f64,
    /// Min/max cells per leaf module.
    pub leaf_cells: (usize, usize),
    /// Min/max children per internal module.
    pub branching: (usize, usize),
    /// Fraction of cells that are flip-flops.
    pub ff_fraction: f64,
    /// Combinational levels between flop stages (sets timing-path depth).
    pub logic_depth: usize,
    /// Rent exponent controlling module-external connectivity.
    pub rent_exponent: f64,
    /// Rent coefficient (external pins ≈ `k · n^p`).
    pub rent_k: f64,
    /// Per-tree-level probability that a cross-module connection climbs one
    /// more level (lower ⇒ more tree-local wiring).
    pub climb_probability: f64,
    /// Number of primary IO ports (clock excluded) before scaling.
    pub port_count: usize,
    /// Target clock period in ps.
    pub clock_period: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// The configuration reproducing a Table 1 benchmark at scale 1.0.
    pub fn from_profile(profile: DesignProfile) -> Self {
        use DesignProfile::*;
        let (leaf_cells, branching, ff, depth, rent, ports) = match profile {
            Aes => ((60, 160), (3, 5), 0.12, 9, 0.62, 390),
            Jpeg => ((60, 180), (3, 5), 0.10, 10, 0.60, 470),
            Ariane => ((60, 200), (2, 5), 0.18, 12, 0.65, 500),
            BlackParrot => ((80, 240), (3, 6), 0.20, 12, 0.68, 600),
            MegaBoom => ((80, 240), (3, 6), 0.22, 14, 0.70, 700),
            MemPoolGroup => ((80, 220), (4, 8), 0.25, 10, 0.66, 800),
        };
        Self {
            // Machine-friendly name (the interchange format tokenizes on
            // whitespace); `DesignProfile::name` keeps the display form.
            name: profile.name().replace(' ', "_"),
            target_cells: profile.table1_insts(),
            scale_factor: 1.0,
            leaf_cells,
            branching,
            ff_fraction: ff,
            logic_depth: depth,
            rent_exponent: rent,
            rent_k: 1.2,
            climb_probability: 0.35,
            port_count: ports,
            clock_period: profile.clock_period(),
            seed: 0xC1A5_7E12 ^ profile.table1_insts() as u64,
        }
    }

    /// Scales the cell and port targets by `f` (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `f > 0`.
    pub fn scale(mut self, f: f64) -> Self {
        assert!(f > 0.0, "scale must be positive");
        self.scale_factor = f;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Effective cell target after scaling (at least 40).
    pub fn effective_cells(&self) -> usize {
        ((self.target_cells as f64 * self.scale_factor) as usize).max(40)
    }

    /// Generates the netlist.
    pub fn generate(&self) -> Netlist {
        self.generate_with_constraints().0
    }

    /// Generates the netlist together with its constraints.
    pub fn generate_with_constraints(&self) -> (Netlist, Constraints) {
        Generator::new(self).run()
    }
}

/// Gate mix: (master name, relative weight).
const GATE_MIX: &[(&str, f64)] = &[
    ("NAND2_X1", 0.22),
    ("INV_X1", 0.13),
    ("NOR2_X1", 0.09),
    ("AND2_X1", 0.08),
    ("OR2_X1", 0.07),
    ("XOR2_X1", 0.06),
    ("XNOR2_X1", 0.03),
    ("MUX2_X1", 0.07),
    ("AOI21_X1", 0.08),
    ("OAI21_X1", 0.07),
    ("MAJ3_X1", 0.03),
    ("XOR3_X1", 0.02),
    ("BUF_X1", 0.05),
    ("INV_X2", 0.04),
    ("NAND2_X2", 0.03),
    ("BUF_X2", 0.03),
];

struct LeafModule {
    node: HierNodeId,
    size: usize,
    /// Cells by level: `levels[0]` = flop outputs, then combinational
    /// levels `1..=logic_depth`.
    levels: Vec<Vec<CellId>>,
    /// Input ports homed to this module (usable as level-0 sources).
    home_ports: Vec<PortId>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Source {
    Cell(CellId),
    Port(PortId),
}

struct Generator<'a> {
    cfg: &'a GeneratorConfig,
    rng: StdRng,
    builder: NetlistBuilder,
    /// Shadow of cell types, indexed by `CellId`.
    cell_types: Vec<CellTypeId>,
    gate_ids: Vec<(CellTypeId, f64)>,
    gate_weight_total: f64,
    dff_x1: CellTypeId,
    dff_x2: CellTypeId,
    leaves: Vec<LeafModule>,
    /// Leaf index of each hierarchy node (dense over node ids).
    leaf_of_node: Vec<Option<usize>>,
}

/// Looks up a master that the generator's own library is known to carry.
fn must_find(lib: &Library, name: &str) -> CellTypeId {
    match lib.find(name) {
        Some(id) => id,
        None => unreachable!("{name} is in the generator's library"),
    }
}

impl<'a> Generator<'a> {
    fn new(cfg: &'a GeneratorConfig) -> Self {
        let lib = Library::nangate45ish();
        let gate_ids: Vec<(CellTypeId, f64)> = GATE_MIX
            .iter()
            .map(|&(name, w)| (must_find(&lib, name), w))
            .collect();
        let gate_weight_total = gate_ids.iter().map(|&(_, w)| w).sum();
        let dff_x1 = must_find(&lib, "DFF_X1");
        let dff_x2 = must_find(&lib, "DFF_X2");
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            builder: NetlistBuilder::new(cfg.name.clone(), lib),
            cell_types: Vec::new(),
            gate_ids,
            gate_weight_total,
            dff_x1,
            dff_x2,
            leaves: Vec::new(),
            leaf_of_node: Vec::new(),
        }
    }

    fn run(mut self) -> (Netlist, Constraints) {
        let n = self.cfg.effective_cells();
        self.build_tree(HierTree::ROOT, n);
        let ports = self.make_ports();
        self.populate_leaves();
        self.wire(&ports.outputs);
        self.wire_clock(ports.clock);
        let constraints = Constraints::with_period(self.cfg.clock_period).clock_port(ports.clock);
        let netlist = match self.builder.finish() {
            Ok(n) => n,
            Err(e) => unreachable!("generated netlist is valid: {e}"),
        };
        (netlist, constraints)
    }

    fn new_cell(&mut self, name: String, ty: CellTypeId, node: HierNodeId) -> CellId {
        let id = self.builder.add_cell(name, ty, node);
        debug_assert_eq!(id.index(), self.cell_types.len());
        self.cell_types.push(ty);
        id
    }

    fn input_count_of(&self, cell: CellId) -> usize {
        self.builder
            .library()
            .cell(self.cell_types[cell.index()])
            .input_count()
    }

    /// Recursively splits `n` cells under `node` into a module tree.
    fn build_tree(&mut self, node: HierNodeId, n: usize) {
        while self.leaf_of_node.len() <= node.index() {
            self.leaf_of_node.push(None);
        }
        let (leaf_min, leaf_max) = self.cfg.leaf_cells;
        if n <= leaf_max || n <= 2 * leaf_min {
            let index = self.leaves.len();
            self.leaves.push(LeafModule {
                node,
                size: n.max(2),
                levels: Vec::new(),
                home_ports: Vec::new(),
            });
            self.leaf_of_node[node.index()] = Some(index);
            return;
        }
        let (bmin, bmax) = self.cfg.branching;
        let b = self
            .rng
            .random_range(bmin..=bmax)
            .min(n / leaf_min.max(1))
            .max(2);
        let weights: Vec<f64> = (0..b).map(|_| 0.5 + self.rng.random::<f64>()).collect();
        let total: f64 = weights.iter().sum();
        let mut remaining = n;
        for (i, w) in weights.iter().enumerate() {
            let share = if i + 1 == b {
                remaining
            } else {
                let later_min = (b - 1 - i) * leaf_min;
                let hi = remaining.saturating_sub(later_min).max(leaf_min);
                ((n as f64 * w / total) as usize)
                    .max(leaf_min)
                    .min(hi)
                    .min(remaining)
            };
            remaining -= share;
            if share == 0 {
                continue;
            }
            let child = self
                .builder
                .hierarchy_mut()
                .add_child(node, format!("u{i}"));
            self.build_tree(child, share);
        }
    }

    fn make_ports(&mut self) -> Ports {
        let total = ((self.cfg.port_count as f64 * self.cfg.scale_factor.sqrt()) as usize)
            .clamp(8, self.cfg.port_count.max(8));
        let inputs = total / 2;
        let outputs = total - inputs;
        let clock = self.builder.add_port("clk", PortDir::Input);
        let mut input_ids = Vec::with_capacity(inputs);
        for i in 0..inputs {
            input_ids.push(self.builder.add_port(format!("in{i}"), PortDir::Input));
        }
        let mut output_ids = Vec::with_capacity(outputs);
        for i in 0..outputs {
            output_ids.push(self.builder.add_port(format!("out{i}"), PortDir::Output));
        }
        let leaf_count = self.leaves.len();
        for (i, &p) in input_ids.iter().enumerate() {
            self.leaves[i % leaf_count].home_ports.push(p);
        }
        Ports {
            clock,
            outputs: output_ids,
        }
    }

    fn populate_leaves(&mut self) {
        let depth = self.cfg.logic_depth.max(1);
        for li in 0..self.leaves.len() {
            let size = self.leaves[li].size;
            let node = self.leaves[li].node;
            let n_ff = ((size as f64 * self.cfg.ff_fraction).round() as usize)
                .clamp(1, size.saturating_sub(1).max(1));
            let n_comb = size.saturating_sub(n_ff);
            let mut levels: Vec<Vec<CellId>> = vec![Vec::new(); depth + 1];
            for k in 0..n_ff {
                let ty = if self.rng.random_bool(0.1) {
                    self.dff_x2
                } else {
                    self.dff_x1
                };
                let id = self.new_cell(format!("m{li}_ff{k}"), ty, node);
                levels[0].push(id);
            }
            for k in 0..n_comb {
                let ty = self.sample_gate();
                let id = self.new_cell(format!("m{li}_g{k}"), ty, node);
                let lvl = 1 + self.rng.random_range(0..depth);
                levels[lvl].push(id);
            }
            if levels[1].is_empty() && n_comb > 0 {
                for l in 2..=depth {
                    if let Some(c) = levels[l].pop() {
                        levels[1].push(c);
                        break;
                    }
                }
            }
            self.leaves[li].levels = levels;
        }
    }

    fn sample_gate(&mut self) -> CellTypeId {
        let mut x = self.rng.random::<f64>() * self.gate_weight_total;
        for &(id, w) in &self.gate_ids {
            if x < w {
                return id;
            }
            x -= w;
        }
        self.gate_ids[self.gate_ids.len() - 1].0
    }

    /// Wires every input pin, accumulating sinks per source, then emits one
    /// net per driving source. Output ports get dedicated buffers so every
    /// net keeps a unique driver.
    fn wire(&mut self, outputs: &[PortId]) {
        let mut sinks_of: HashMap<Source, Vec<PinRef>> = HashMap::new();
        let depth = self.cfg.logic_depth.max(1);
        let (rent_k, rent_p) = (self.cfg.rent_k, self.cfg.rent_exponent);

        for li in 0..self.leaves.len() {
            let p_ext =
                (rent_k * (self.leaves[li].size as f64).powf(rent_p - 1.0)).clamp(0.02, 0.5);
            for lvl in 1..=depth {
                for ci in 0..self.leaves[li].levels[lvl].len() {
                    let cell = self.leaves[li].levels[lvl][ci];
                    let n_inputs = self.input_count_of(cell);
                    for pin in 0..n_inputs {
                        let src = if self.rng.random::<f64>() < p_ext {
                            self.pick_external_source(li, lvl)
                        } else {
                            self.pick_local_source(li, lvl)
                        };
                        sinks_of.entry(src).or_default().push(PinRef::Cell {
                            cell,
                            pin: pin as u8,
                        });
                    }
                }
            }
            // Flop D inputs come from the deepest logic (any level is safe).
            for fi in 0..self.leaves[li].levels[0].len() {
                let ff = self.leaves[li].levels[0][fi];
                let src = if self.rng.random::<f64>() < p_ext * 0.5 {
                    self.pick_external_source(li, depth + 1)
                } else {
                    self.pick_local_source(li, depth + 1)
                };
                sinks_of
                    .entry(src)
                    .or_default()
                    .push(PinRef::Cell { cell: ff, pin: 0 });
            }
        }

        // Output ports: buffer off a flop so each port net has a fresh driver.
        let buf = must_find(self.builder.library(), "BUF_X1");
        let mut port_nets = Vec::new();
        for (i, &p) in outputs.iter().enumerate() {
            let li = i % self.leaves.len();
            let flops = &self.leaves[li].levels[0];
            let src = flops[i / self.leaves.len() % flops.len()];
            let node = self.leaves[li].node;
            let b = self.new_cell(format!("obuf{i}"), buf, node);
            sinks_of
                .entry(Source::Cell(src))
                .or_default()
                .push(PinRef::Cell { cell: b, pin: 0 });
            port_nets.push((i, b, p));
        }

        // Emit nets in deterministic order.
        let mut cell_sources: Vec<(CellId, Vec<PinRef>)> = Vec::new();
        let mut port_sources: Vec<(PortId, Vec<PinRef>)> = Vec::new();
        for (src, sinks) in sinks_of {
            match src {
                Source::Cell(c) => cell_sources.push((c, sinks)),
                Source::Port(p) => port_sources.push((p, sinks)),
            }
        }
        cell_sources.sort_by_key(|&(c, _)| c);
        port_sources.sort_by_key(|&(p, _)| p);
        for (c, sinks) in cell_sources {
            self.builder.add_net(
                format!("n_{}", c.0),
                Some(PinRef::Cell { cell: c, pin: 0 }),
                sinks,
            );
        }
        for (p, sinks) in port_sources {
            self.builder
                .add_net(format!("n_in{}", p.0), Some(PinRef::Port(p)), sinks);
        }
        for (i, b, p) in port_nets {
            self.builder.add_net(
                format!("n_out{i}"),
                Some(PinRef::Cell { cell: b, pin: 0 }),
                vec![PinRef::Port(p)],
            );
        }
    }

    /// Picks a source within module `li` from a level strictly below `lvl`.
    /// Level 0 (the flops) is never empty, so this always succeeds.
    fn pick_local_source(&mut self, li: usize, lvl: usize) -> Source {
        let depth = self.cfg.logic_depth.max(1);
        let max_src = lvl.saturating_sub(1).min(depth);
        // Home ports occasionally stand in for level-0 sources.
        if max_src == 0 || self.rng.random_bool(0.05) {
            let hp = &self.leaves[li].home_ports;
            if !hp.is_empty() && self.rng.random_bool(0.5) {
                let k = self.rng.random_range(0..hp.len());
                return Source::Port(hp[k]);
            }
        }
        let mut pick = if max_src > 0 && !self.rng.random_bool(0.75) {
            self.rng.random_range(0..=max_src)
        } else {
            max_src
        };
        loop {
            let cells = &self.leaves[li].levels[pick];
            if !cells.is_empty() {
                let k = self.rng.random_range(0..cells.len());
                return Source::Cell(cells[k]);
            }
            debug_assert!(pick > 0, "level 0 holds at least one flop");
            pick -= 1;
        }
    }

    /// Picks a source in a tree-proximal foreign module, from a level
    /// strictly below `lvl` to preserve acyclicity.
    fn pick_external_source(&mut self, li: usize, lvl: usize) -> Source {
        let my_node = self.leaves[li].node;
        let mut depth = self.builder.hierarchy().node(my_node).depth;
        let mut anchor = my_node;
        while depth > 0 && self.rng.random::<f64>() < self.cfg.climb_probability {
            // depth > 0 guarantees a parent exists.
            let Some(p) = self.builder.hierarchy().node(anchor).parent else {
                break;
            };
            anchor = p;
            depth -= 1;
        }
        if anchor == my_node {
            if let Some(p) = self.builder.hierarchy().node(my_node).parent {
                anchor = p;
            }
        }
        let mut cur = anchor;
        loop {
            let children = &self.builder.hierarchy().node(cur).children;
            if children.is_empty() {
                break;
            }
            let k = self.rng.random_range(0..children.len());
            cur = children[k];
        }
        let target_li = self.leaf_of_node[cur.index()].unwrap_or(li);
        let leaf_levels = self.leaves[target_li].levels.len();
        let max_l = lvl.saturating_sub(1).min(leaf_levels - 1);
        for l in (0..=max_l).rev() {
            if !self.leaves[target_li].levels[l].is_empty() && (l == 0 || self.rng.random_bool(0.6))
            {
                let cells = &self.leaves[target_li].levels[l];
                let k = self.rng.random_range(0..cells.len());
                return Source::Cell(cells[k]);
            }
        }
        let flops = &self.leaves[target_li].levels[0];
        let k = self.rng.random_range(0..flops.len());
        Source::Cell(flops[k])
    }

    fn wire_clock(&mut self, clock: PortId) {
        let mut sinks = Vec::new();
        for leaf in &self.leaves {
            for &ff in &leaf.levels[0] {
                sinks.push(PinRef::Cell { cell: ff, pin: 1 });
            }
        }
        self.builder
            .add_clock_net("clk_net", Some(PinRef::Port(clock)), sinks);
    }
}

struct Ports {
    clock: PortId,
    outputs: Vec<PortId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellClass;

    #[test]
    fn generates_valid_netlist() {
        let (n, c) = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(1)
            .generate_with_constraints();
        assert!(n.cell_count() >= 200, "{}", n.cell_count());
        assert!(n.net_count() > n.cell_count() / 2);
        assert_eq!(c.clock_period, 550.0);
        assert!(c.clock_port.is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            GeneratorConfig::from_profile(DesignProfile::Jpeg)
                .scale(0.005)
                .seed(42)
                .generate()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.cell_count(), b.cell_count());
        assert_eq!(a.net_count(), b.net_count());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.nets().iter().map(|n| n.sinks.clone()).collect::<Vec<_>>(),
            b.nets().iter().map(|n| n.sinks.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(1)
            .generate();
        let b = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(2)
            .generate();
        assert_ne!(
            a.nets().iter().map(|n| n.sinks.len()).collect::<Vec<_>>(),
            b.nets().iter().map(|n| n.sinks.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn has_hierarchy_and_flops() {
        let n = GeneratorConfig::from_profile(DesignProfile::Ariane)
            .scale(0.005)
            .seed(5)
            .generate();
        assert!(n.hierarchy().max_depth() >= 1);
        let s = n.stats();
        assert!(s.flops > 0);
        let ff_frac = s.flops as f64 / s.cells as f64;
        assert!(ff_frac > 0.05 && ff_frac < 0.45, "ff fraction {ff_frac}");
    }

    #[test]
    fn clock_reaches_every_flop() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(9)
            .generate();
        let clock_net = n
            .nets()
            .iter()
            .find(|net| net.is_clock)
            .expect("clock net exists");
        let flops = n
            .cells()
            .iter()
            .filter(|c| n.library().cell(c.ty).class == CellClass::Sequential)
            .count();
        assert_eq!(clock_net.sinks.len(), flops);
    }

    #[test]
    fn combinational_logic_is_acyclic() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(11)
            .generate();
        let nc = n.cell_count();
        let mut state = vec![0u8; nc]; // 0 unvisited, 1 on stack, 2 done
        let is_comb =
            |c: usize| n.library().cell(n.cells()[c].ty).class == CellClass::Combinational;
        for start in 0..nc {
            if state[start] != 0 || !is_comb(start) {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&(u, ei)) = stack.last() {
                let succ: Vec<usize> = n
                    .output_net(crate::ids::CellId(u as u32))
                    .map(|net| {
                        n.net(net)
                            .sinks
                            .iter()
                            .filter_map(|s| match s {
                                PinRef::Cell { cell, .. } if is_comb(cell.index()) => {
                                    Some(cell.index())
                                }
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                if ei < succ.len() {
                    stack.last_mut().expect("stack non-empty").1 += 1;
                    let v = succ[ei];
                    assert_ne!(state[v], 1, "combinational cycle through cell {v}");
                    if state[v] == 0 {
                        state[v] = 1;
                        stack.push((v, 0));
                    }
                } else {
                    state[u] = 2;
                    stack.pop();
                }
            }
        }
    }

    #[test]
    fn scaling_tracks_target() {
        for &s in &[0.01, 0.05] {
            let n = GeneratorConfig::from_profile(DesignProfile::Jpeg)
                .scale(s)
                .seed(3)
                .generate();
            let target = (53_042.0 * s) as usize;
            let got = n.cell_count();
            assert!(
                got as f64 > target as f64 * 0.8 && (got as f64) < target as f64 * 1.5,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn wiring_is_tree_local() {
        // Most hyperedges should connect cells within one leaf module.
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(13)
            .generate();
        let mut local = 0usize;
        let mut cross = 0usize;
        for net in n.nets() {
            if net.is_clock {
                continue;
            }
            let mut modules: Vec<_> = net
                .sinks
                .iter()
                .chain(net.driver.iter())
                .filter_map(|p| match p {
                    PinRef::Cell { cell, .. } => Some(n.cell(*cell).hier),
                    PinRef::Port(_) => None,
                })
                .collect();
            modules.sort();
            modules.dedup();
            if modules.len() <= 1 {
                local += 1;
            } else {
                cross += 1;
            }
        }
        assert!(
            local > cross,
            "expected tree-local wiring to dominate: {local} local vs {cross} cross"
        );
    }
}
