//! The netlist database: cells, nets, ports and their connectivity.

use crate::hierarchy::HierTree;
use crate::ids::{CellId, CellTypeId, HierNodeId, NetId, PortId};
use crate::library::{CellClass, Library};
use cp_graph::Hypergraph;
use std::fmt;

/// A connection endpoint: either a pin of a cell instance or a top port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinRef {
    /// Pin `pin` of cell `cell`. For inputs `pin` indexes
    /// [`crate::CellType::input_names`]; the output pin is not indexed here —
    /// a cell drives through [`Net::driver`] only.
    Cell {
        /// The cell instance.
        cell: CellId,
        /// Input-pin index (ignored when this is a net's driver).
        pin: u8,
    },
    /// A top-level port.
    Port(PortId),
}

/// Direction of a top-level port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Primary input (drives a net).
    Input,
    /// Primary output (sinks a net).
    Output,
}

/// A top-level port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// The net bound to this port (filled by the builder).
    pub net: Option<NetId>,
}

/// A cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Master (library cell type).
    pub ty: CellTypeId,
    /// Deepest hierarchy node containing the instance.
    pub hier: HierNodeId,
}

/// A net: one driver, many sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// The driving endpoint (an input port or a cell output).
    pub driver: Option<PinRef>,
    /// Sink endpoints (cell input pins or output ports).
    pub sinks: Vec<PinRef>,
    /// `true` for the clock net (excluded from clustering/placement nets).
    pub is_clock: bool,
}

impl Net {
    /// Number of endpoints (driver + sinks).
    pub fn pin_count(&self) -> usize {
        self.sinks.len() + usize::from(self.driver.is_some())
    }
}

/// Summary statistics of a netlist (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistStats {
    /// Number of cell instances.
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of top ports.
    pub ports: usize,
    /// Number of sequential cells.
    pub flops: usize,
    /// Total standard-cell area in µm².
    pub cell_area: f64,
    /// Average net fanout (sinks per net).
    pub avg_fanout: f64,
    /// Depth of the hierarchy tree.
    pub hier_depth: u32,
}

/// Errors reported by [`NetlistBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildNetlistError {
    /// A net references a cell input pin that does not exist on the master.
    BadPinIndex {
        /// Offending net.
        net: String,
        /// Offending cell.
        cell: String,
        /// The out-of-range pin index.
        pin: u8,
    },
    /// Two nets drive the same cell output or input port.
    DriverConflict {
        /// The endpoint driven twice (cell or port name).
        endpoint: String,
    },
    /// Two nets sink into the same cell input pin.
    SinkConflict {
        /// The cell name.
        cell: String,
        /// The pin index bound twice.
        pin: u8,
    },
    /// A net lists an input port among its sinks or an output port as driver.
    PortDirectionMismatch {
        /// The port name.
        port: String,
    },
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadPinIndex { net, cell, pin } => {
                write!(
                    f,
                    "net {net} uses pin {pin} of cell {cell}, which does not exist"
                )
            }
            Self::DriverConflict { endpoint } => {
                write!(f, "endpoint {endpoint} is driven by more than one net")
            }
            Self::SinkConflict { cell, pin } => {
                write!(
                    f,
                    "input pin {pin} of cell {cell} is bound to more than one net"
                )
            }
            Self::PortDirectionMismatch { port } => {
                write!(f, "port {port} is used against its direction")
            }
        }
    }
}

impl std::error::Error for BuildNetlistError {}

/// The netlist database.
///
/// Construct with [`NetlistBuilder`]; connectivity indexes (per-cell pin →
/// net maps) are derived once at build time.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    library: Library,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    hierarchy: HierTree,
    // Derived: net on each input pin of each cell (dense, small pin counts).
    input_net: Vec<Vec<Option<NetId>>>,
    // Derived: net driven by each cell's output.
    output_net: Vec<Option<NetId>>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell library.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Mutable library access (used when registering cluster macros).
    pub fn library_mut(&mut self) -> &mut Library {
        &mut self.library
    }

    /// The logical hierarchy tree.
    pub fn hierarchy(&self) -> &HierTree {
        &self.hierarchy
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of top ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// A cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// A net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// A port by id.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// All cells in id order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets in id order.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All ports in id order.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// The master of a cell.
    pub fn master(&self, id: CellId) -> &crate::library::CellType {
        self.library.cell(self.cells[id.index()].ty)
    }

    /// The net bound to input pin `pin` of `cell`, if any.
    pub fn input_net(&self, cell: CellId, pin: u8) -> Option<NetId> {
        self.input_net[cell.index()]
            .get(pin as usize)
            .copied()
            .flatten()
    }

    /// All input nets of a cell (indexed by pin).
    pub fn input_nets(&self, cell: CellId) -> &[Option<NetId>] {
        &self.input_net[cell.index()]
    }

    /// The net driven by `cell`'s output, if any.
    pub fn output_net(&self, cell: CellId) -> Option<NetId> {
        self.output_net[cell.index()]
    }

    /// Total cell area in µm² (macros included).
    pub fn total_cell_area(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| self.library.cell(c.ty).area())
            .sum()
    }

    /// Summary statistics (Table 1).
    pub fn stats(&self) -> NetlistStats {
        let flops = self
            .cells
            .iter()
            .filter(|c| self.library.cell(c.ty).class == CellClass::Sequential)
            .count();
        let fanout_sum: usize = self.nets.iter().map(|n| n.sinks.len()).sum();
        NetlistStats {
            cells: self.cells.len(),
            nets: self.nets.len(),
            ports: self.ports.len(),
            flops,
            cell_area: self.total_cell_area(),
            avg_fanout: if self.nets.is_empty() {
                0.0
            } else {
                fanout_sum as f64 / self.nets.len() as f64
            },
            hier_depth: self.hierarchy.max_depth(),
        }
    }

    /// Hypergraph vertex id of a cell (cells come first).
    pub fn cell_vertex(&self, id: CellId) -> u32 {
        id.0
    }

    /// Hypergraph vertex id of a port (ports follow cells).
    pub fn port_vertex(&self, id: PortId) -> u32 {
        self.cells.len() as u32 + id.0
    }

    /// Inverse of [`Netlist::cell_vertex`]/[`Netlist::port_vertex`].
    pub fn vertex_to_pinref(&self, v: u32) -> PinRef {
        if (v as usize) < self.cells.len() {
            PinRef::Cell {
                cell: CellId(v),
                pin: 0,
            }
        } else {
            PinRef::Port(PortId(v - self.cells.len() as u32))
        }
    }

    /// Builds the hypergraph view used by clustering and placement.
    ///
    /// Vertices `0..cell_count` are cells; `cell_count..cell_count+ports`
    /// are top ports. One hyperedge per non-clock net with at least two
    /// endpoints; the driver is listed first. Hyperedge ids equal net ids
    /// only when no nets are skipped — use
    /// [`Netlist::to_hypergraph_with_map`] when the mapping matters.
    pub fn to_hypergraph(&self) -> Hypergraph {
        self.to_hypergraph_with_map().0
    }

    /// Like [`Netlist::to_hypergraph`] but also returns, per net, the
    /// hyperedge it maps to (`None` for skipped nets).
    pub fn to_hypergraph_with_map(&self) -> (Hypergraph, Vec<Option<u32>>) {
        let nv = self.cells.len() + self.ports.len();
        let mut edges = Vec::with_capacity(self.nets.len());
        let mut map = vec![None; self.nets.len()];
        for (nid, net) in self.nets.iter().enumerate() {
            if net.is_clock {
                continue;
            }
            let mut verts = Vec::with_capacity(net.pin_count());
            if let Some(d) = net.driver {
                verts.push(self.endpoint_vertex(d));
            }
            for &s in &net.sinks {
                verts.push(self.endpoint_vertex(s));
            }
            verts.dedup();
            if verts.len() >= 2 {
                map[nid] = Some(edges.len() as u32);
                edges.push((verts, 1.0));
            }
        }
        (Hypergraph::new(nv, edges), map)
    }

    fn endpoint_vertex(&self, p: PinRef) -> u32 {
        match p {
            PinRef::Cell { cell, .. } => self.cell_vertex(cell),
            PinRef::Port(port) => self.port_vertex(port),
        }
    }

    /// Decomposes the netlist into its parts (used by transformations that
    /// rebuild it).
    pub fn into_parts(self) -> (String, Library, Vec<Cell>, Vec<Net>, Vec<Port>, HierTree) {
        (
            self.name,
            self.library,
            self.cells,
            self.nets,
            self.ports,
            self.hierarchy,
        )
    }
}

/// Incremental netlist constructor; validates connectivity at
/// [`NetlistBuilder::finish`].
///
/// # Examples
///
/// ```
/// use cp_netlist::{Library, NetlistBuilder, PinRef, PortDir, HierTree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::nangate45ish();
/// let inv = lib.find("INV_X1").unwrap();
/// let mut b = NetlistBuilder::new("demo", lib);
/// let a = b.add_port("a", PortDir::Input);
/// let y = b.add_port("y", PortDir::Output);
/// let u0 = b.add_cell("u0", inv, HierTree::ROOT);
/// b.add_net("n_a", Some(PinRef::Port(a)), vec![PinRef::Cell { cell: u0, pin: 0 }]);
/// b.add_net("n_y", Some(PinRef::Cell { cell: u0, pin: 0 }), vec![PinRef::Port(y)]);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.cell_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    library: Library,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    hierarchy: HierTree,
}

impl NetlistBuilder {
    /// Starts a netlist named `name` over the given library, with a fresh
    /// hierarchy tree rooted at the same name.
    pub fn new(name: impl Into<String>, library: Library) -> Self {
        let name = name.into();
        let hierarchy = HierTree::new(name.clone());
        Self {
            name,
            library,
            cells: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            hierarchy,
        }
    }

    /// Replaces the hierarchy tree (cells added so far keep their node ids).
    pub fn set_hierarchy(&mut self, tree: HierTree) {
        self.hierarchy = tree;
    }

    /// Mutable hierarchy access for growing the module tree.
    pub fn hierarchy_mut(&mut self) -> &mut HierTree {
        &mut self.hierarchy
    }

    /// The hierarchy tree built so far.
    pub fn hierarchy(&self) -> &HierTree {
        &self.hierarchy
    }

    /// The library this builder instantiates from.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Mutable library access (e.g. to register macros).
    pub fn library_mut(&mut self) -> &mut Library {
        &mut self.library
    }

    /// Adds a cell instance, returning its id.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        ty: CellTypeId,
        hier: HierNodeId,
    ) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell {
            name: name.into(),
            ty,
            hier,
        });
        id
    }

    /// Adds a top-level port, returning its id.
    pub fn add_port(&mut self, name: impl Into<String>, dir: PortDir) -> PortId {
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port {
            name: name.into(),
            dir,
            net: None,
        });
        id
    }

    /// Adds a net, returning its id.
    pub fn add_net(
        &mut self,
        name: impl Into<String>,
        driver: Option<PinRef>,
        sinks: Vec<PinRef>,
    ) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.into(),
            driver,
            sinks,
            is_clock: false,
        });
        id
    }

    /// Adds the clock net (marked so clustering/placement skip it).
    pub fn add_clock_net(
        &mut self,
        name: impl Into<String>,
        driver: Option<PinRef>,
        sinks: Vec<PinRef>,
    ) -> NetId {
        let id = self.add_net(name, driver, sinks);
        self.nets[id.index()].is_clock = true;
        id
    }

    /// Number of cells added so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Validates connectivity and builds the netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildNetlistError`] when a pin index is out of range, an
    /// endpoint is driven or bound twice, or a port is used against its
    /// direction.
    pub fn finish(mut self) -> Result<Netlist, BuildNetlistError> {
        let mut input_net: Vec<Vec<Option<NetId>>> = self
            .cells
            .iter()
            .map(|c| vec![None; self.library.cell(c.ty).input_count()])
            .collect();
        let mut output_net: Vec<Option<NetId>> = vec![None; self.cells.len()];
        let mut port_net: Vec<Option<NetId>> = vec![None; self.ports.len()];

        for (nid, net) in self.nets.iter().enumerate() {
            let nid = NetId(nid as u32);
            if let Some(driver) = net.driver {
                match driver {
                    PinRef::Cell { cell, .. } => {
                        let slot = &mut output_net[cell.index()];
                        if slot.is_some() {
                            return Err(BuildNetlistError::DriverConflict {
                                endpoint: self.cells[cell.index()].name.clone(),
                            });
                        }
                        *slot = Some(nid);
                    }
                    PinRef::Port(p) => {
                        if self.ports[p.index()].dir != PortDir::Input {
                            return Err(BuildNetlistError::PortDirectionMismatch {
                                port: self.ports[p.index()].name.clone(),
                            });
                        }
                        if port_net[p.index()].is_some() {
                            return Err(BuildNetlistError::DriverConflict {
                                endpoint: self.ports[p.index()].name.clone(),
                            });
                        }
                        port_net[p.index()] = Some(nid);
                    }
                }
            }
            for &sink in &net.sinks {
                match sink {
                    PinRef::Cell { cell, pin } => {
                        let pins = &mut input_net[cell.index()];
                        let Some(slot) = pins.get_mut(pin as usize) else {
                            return Err(BuildNetlistError::BadPinIndex {
                                net: net.name.clone(),
                                cell: self.cells[cell.index()].name.clone(),
                                pin,
                            });
                        };
                        if slot.is_some() {
                            return Err(BuildNetlistError::SinkConflict {
                                cell: self.cells[cell.index()].name.clone(),
                                pin,
                            });
                        }
                        *slot = Some(nid);
                    }
                    PinRef::Port(p) => {
                        if self.ports[p.index()].dir != PortDir::Output {
                            return Err(BuildNetlistError::PortDirectionMismatch {
                                port: self.ports[p.index()].name.clone(),
                            });
                        }
                        if port_net[p.index()].is_some() {
                            return Err(BuildNetlistError::DriverConflict {
                                endpoint: self.ports[p.index()].name.clone(),
                            });
                        }
                        port_net[p.index()] = Some(nid);
                    }
                }
            }
        }
        for (port, net) in self.ports.iter_mut().zip(&port_net) {
            port.net = *net;
        }
        Ok(Netlist {
            name: self.name,
            library: self.library,
            cells: self.cells,
            nets: self.nets,
            ports: self.ports,
            hierarchy: self.hierarchy,
            input_net,
            output_net,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;

    fn tiny() -> Netlist {
        // a ──INV(u0)── n1 ──INV(u1)── y
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("tiny", lib);
        let a = b.add_port("a", PortDir::Input);
        let y = b.add_port("y", PortDir::Output);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        let u1 = b.add_cell("u1", inv, HierTree::ROOT);
        b.add_net(
            "na",
            Some(PinRef::Port(a)),
            vec![PinRef::Cell { cell: u0, pin: 0 }],
        );
        b.add_net(
            "n1",
            Some(PinRef::Cell { cell: u0, pin: 0 }),
            vec![PinRef::Cell { cell: u1, pin: 0 }],
        );
        b.add_net(
            "ny",
            Some(PinRef::Cell { cell: u1, pin: 0 }),
            vec![PinRef::Port(y)],
        );
        b.finish().unwrap()
    }

    #[test]
    fn derived_maps() {
        let n = tiny();
        assert_eq!(n.cell_count(), 2);
        assert_eq!(n.output_net(CellId(0)), Some(NetId(1)));
        assert_eq!(n.input_net(CellId(1), 0), Some(NetId(1)));
        assert_eq!(n.port(PortId(0)).net, Some(NetId(0)));
        assert_eq!(n.stats().avg_fanout, 1.0);
    }

    #[test]
    fn hypergraph_view() {
        let n = tiny();
        let hg = n.to_hypergraph();
        assert_eq!(hg.vertex_count(), 4); // 2 cells + 2 ports
        assert_eq!(hg.edge_count(), 3);
        // Driver listed first.
        let (hg2, map) = n.to_hypergraph_with_map();
        assert_eq!(hg2.edge(map[1].unwrap())[0], n.cell_vertex(CellId(0)));
    }

    #[test]
    fn clock_nets_are_skipped() {
        let lib = Library::nangate45ish();
        let dff = lib.find("DFF_X1").unwrap();
        let mut b = NetlistBuilder::new("clk", lib);
        let ck = b.add_port("ck", PortDir::Input);
        let f0 = b.add_cell("f0", dff, HierTree::ROOT);
        let f1 = b.add_cell("f1", dff, HierTree::ROOT);
        b.add_clock_net(
            "cknet",
            Some(PinRef::Port(ck)),
            vec![
                PinRef::Cell { cell: f0, pin: 1 },
                PinRef::Cell { cell: f1, pin: 1 },
            ],
        );
        b.add_net(
            "q0d1",
            Some(PinRef::Cell { cell: f0, pin: 0 }),
            vec![PinRef::Cell { cell: f1, pin: 0 }],
        );
        let n = b.finish().unwrap();
        assert_eq!(n.to_hypergraph().edge_count(), 1);
    }

    #[test]
    fn sink_conflict_detected() {
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("bad", lib);
        let a = b.add_port("a", PortDir::Input);
        let c = b.add_port("c", PortDir::Input);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        b.add_net(
            "na",
            Some(PinRef::Port(a)),
            vec![PinRef::Cell { cell: u0, pin: 0 }],
        );
        b.add_net(
            "nc",
            Some(PinRef::Port(c)),
            vec![PinRef::Cell { cell: u0, pin: 0 }],
        );
        assert!(matches!(
            b.finish(),
            Err(BuildNetlistError::SinkConflict { .. })
        ));
    }

    #[test]
    fn bad_pin_index_detected() {
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("bad", lib);
        let a = b.add_port("a", PortDir::Input);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        b.add_net(
            "na",
            Some(PinRef::Port(a)),
            vec![PinRef::Cell { cell: u0, pin: 3 }],
        );
        assert!(matches!(
            b.finish(),
            Err(BuildNetlistError::BadPinIndex { pin: 3, .. })
        ));
    }

    #[test]
    fn port_direction_enforced() {
        let lib = Library::nangate45ish();
        let mut b = NetlistBuilder::new("bad", lib);
        let y = b.add_port("y", PortDir::Output);
        b.add_net("n", Some(PinRef::Port(y)), vec![]);
        assert!(matches!(
            b.finish(),
            Err(BuildNetlistError::PortDirectionMismatch { .. })
        ));
    }

    #[test]
    fn output_driver_conflict_detected() {
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("bad", lib);
        let u0 = b.add_cell("u0", inv, HierTree::ROOT);
        b.add_net("n1", Some(PinRef::Cell { cell: u0, pin: 0 }), vec![]);
        b.add_net("n2", Some(PinRef::Cell { cell: u0, pin: 0 }), vec![]);
        assert!(matches!(
            b.finish(),
            Err(BuildNetlistError::DriverConflict { .. })
        ));
    }
}
