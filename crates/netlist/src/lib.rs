//! Gate-level netlist database for the clustered-placement toolkit.
//!
//! This crate plays the role OpenDB plays for OpenROAD: it owns the design
//! data every other crate reads. It provides:
//!
//! - [`library`]: a synthetic standard-cell library standing in for the
//!   NanGate45 enablement — ~20 combinational/sequential cells with
//!   area, pin capacitance, drive resistance, intrinsic delay, internal
//!   energy and leakage, plus truth tables for vectorless activity
//!   propagation.
//! - [`Netlist`]: cells, nets, pins, top-level ports and the logical
//!   hierarchy tree ([`hierarchy::HierTree`]), with a hypergraph view for
//!   clustering ([`Netlist::to_hypergraph`]).
//! - [`floorplan`]: die/core geometry, rows and IO pin placement — the
//!   `.def`-equivalent input of Algorithm 1.
//! - [`sdc`]: clock period and primary-input activity — the `.sdc`
//!   equivalent.
//! - [`shapes`]: cluster shape (aspect ratio × utilization) models — the
//!   cluster `.lef` equivalent.
//! - [`clustered`]: building the clustered netlist from a cluster
//!   assignment (Algorithm 1 line 10).
//! - [`generator`]: a hierarchical synthetic design generator with profiles
//!   matching the paper's six benchmarks (Table 1) at configurable scale.
//! - [`verilog`]: a minimal structural-netlist text format for interchange.
//!
//! # Examples
//!
//! ```
//! use cp_netlist::generator::{DesignProfile, GeneratorConfig};
//!
//! let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
//!     .scale(0.01)
//!     .seed(7)
//!     .generate();
//! assert!(netlist.cell_count() > 50);
//! let hg = netlist.to_hypergraph();
//! assert_eq!(hg.vertex_count(), netlist.cell_count() + netlist.port_count());
//! ```

pub mod bookshelf;
pub mod clustered;
pub mod floorplan;
pub mod generator;
pub mod hierarchy;
pub mod ids;
pub mod library;
pub mod netlist;
pub mod sdc;
pub mod shapes;
pub mod validate;
pub mod verilog;

pub use crate::floorplan::Floorplan;
pub use crate::hierarchy::HierTree;
pub use crate::ids::{CellId, CellTypeId, HierNodeId, NetId, PortId};
pub use crate::library::{CellClass, CellType, Library, LogicFunction};
pub use crate::netlist::{Net, Netlist, NetlistBuilder, PinRef, Port, PortDir};
pub use crate::sdc::Constraints;
pub use crate::shapes::ClusterShape;
pub use crate::validate::ValidationError;
