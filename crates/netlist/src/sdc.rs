//! Timing constraints — the `.sdc` equivalent.

use crate::ids::PortId;

/// Design constraints consumed by STA and the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraints {
    /// Target clock period in ps (`TCP` in Table 1).
    pub clock_period: f64,
    /// The clock port, if the design is sequential.
    pub clock_port: Option<PortId>,
    /// Input arrival time at primary inputs, ps after the clock edge.
    pub input_delay: f64,
    /// Required margin at primary outputs, ps before the next edge.
    pub output_delay: f64,
    /// Assumed switching activity at primary inputs, in toggles per cycle
    /// (vectorless analysis seed, OpenSTA-style default).
    pub input_activity: f64,
    /// Assumed static probability of logic 1 at primary inputs.
    pub input_probability: f64,
}

impl Constraints {
    /// Constraints with a clock period and library-default IO assumptions.
    pub fn with_period(clock_period: f64) -> Self {
        Self {
            clock_period,
            clock_port: None,
            input_delay: 0.0,
            output_delay: 0.0,
            input_activity: 0.2,
            input_probability: 0.5,
        }
    }

    /// Sets the clock port (builder style).
    pub fn clock_port(mut self, port: PortId) -> Self {
        self.clock_port = Some(port);
        self
    }

    /// Clock frequency in GHz (`1000 / period_ps`).
    ///
    /// # Panics
    ///
    /// Panics if the clock period is not positive.
    pub fn frequency_ghz(&self) -> f64 {
        assert!(self.clock_period > 0.0, "clock period must be positive");
        1000.0 / self.clock_period
    }
}

impl Default for Constraints {
    fn default() -> Self {
        Self::with_period(1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency() {
        let c = Constraints::with_period(500.0);
        assert!((c.frequency_ghz() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn builder() {
        let c = Constraints::with_period(800.0).clock_port(PortId(3));
        assert_eq!(c.clock_port, Some(PortId(3)));
        assert_eq!(c.clock_period, 800.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        Constraints::with_period(0.0).frequency_ghz();
    }
}
