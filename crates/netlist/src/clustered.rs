//! The clustered netlist (Algorithm 1, line 10).
//!
//! Given a cluster assignment over cells, this module collapses the flat
//! netlist into a netlist of soft macros: one placeable object per cluster,
//! with the original top ports kept as fixed terminals and intra-cluster
//! nets absorbed. The result is what the seed placement places.

use crate::ids::{CellId, NetId, PortId};
use crate::netlist::{Netlist, PinRef};
use crate::shapes::ClusterShape;
use cp_graph::Hypergraph;

/// A netlist of cluster macros plus the original top ports.
///
/// Hypergraph vertices `0..cluster_count` are clusters;
/// `cluster_count..cluster_count + port_count` are the top ports.
///
/// # Examples
///
/// ```
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
/// use cp_netlist::clustered::ClusteredNetlist;
///
/// let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.01)
///     .generate();
/// // Two clusters: first half of the cells vs second half.
/// let half = netlist.cell_count() / 2;
/// let assignment: Vec<u32> = (0..netlist.cell_count())
///     .map(|i| u32::from(i >= half))
///     .collect();
/// let clustered = ClusteredNetlist::from_assignment(&netlist, &assignment);
/// assert_eq!(clustered.cluster_count(), 2);
/// assert!(clustered.hypergraph().edge_count() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredNetlist {
    name: String,
    cluster_count: usize,
    port_count: usize,
    cluster_area: Vec<f64>,
    cluster_cells: Vec<Vec<CellId>>,
    cluster_of_cell: Vec<u32>,
    shapes: Vec<ClusterShape>,
    hypergraph: Hypergraph,
    net_weights: Vec<f64>,
    edge_is_io: Vec<bool>,
    original_net_of_edge: Vec<NetId>,
}

impl ClusteredNetlist {
    /// Collapses `netlist` according to `assignment` (one cluster id per
    /// cell; ids need not be dense — they are densified here).
    ///
    /// Nets whose endpoints all fall in one cluster are absorbed; the rest
    /// become hyperedges over clusters (and ports) with weight 1.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != netlist.cell_count()`.
    pub fn from_assignment(netlist: &Netlist, assignment: &[u32]) -> Self {
        assert_eq!(
            assignment.len(),
            netlist.cell_count(),
            "assignment must cover every cell"
        );
        let mut dense = assignment.to_vec();
        let cluster_count = cp_graph::community::compact_labels(&mut dense);
        let port_count = netlist.port_count();

        let mut cluster_area = vec![0.0; cluster_count];
        let mut cluster_cells: Vec<Vec<CellId>> = vec![Vec::new(); cluster_count];
        for (i, &c) in dense.iter().enumerate() {
            let id = CellId(i as u32);
            cluster_area[c as usize] += netlist.master(id).area();
            cluster_cells[c as usize].push(id);
        }

        let nv = cluster_count + port_count;
        let mut edges = Vec::new();
        let mut net_weights = Vec::new();
        let mut edge_is_io = Vec::new();
        let mut original_net_of_edge = Vec::new();
        for (nid, net) in netlist.nets().iter().enumerate() {
            if net.is_clock {
                continue;
            }
            let mut verts: Vec<u32> = Vec::with_capacity(net.pin_count());
            let mut is_io = false;
            for p in net.driver.iter().chain(net.sinks.iter()) {
                match *p {
                    PinRef::Cell { cell, .. } => verts.push(dense[cell.index()]),
                    PinRef::Port(port) => {
                        verts.push(cluster_count as u32 + port.0);
                        is_io = true;
                    }
                }
            }
            verts.sort_unstable();
            verts.dedup();
            if verts.len() >= 2 {
                edges.push((verts, 1.0));
                net_weights.push(1.0);
                edge_is_io.push(is_io);
                original_net_of_edge.push(NetId(nid as u32));
            }
        }
        let hypergraph = Hypergraph::new(nv, edges);
        Self {
            name: format!("{}_clustered", netlist.name()),
            cluster_count,
            port_count,
            cluster_area,
            cluster_cells,
            cluster_of_cell: dense,
            shapes: vec![ClusterShape::UNIFORM; cluster_count],
            hypergraph,
            net_weights,
            edge_is_io,
            original_net_of_edge,
        }
    }

    /// Name of the clustered design.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of clusters (placeable objects).
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Number of fixed top ports.
    pub fn port_count(&self) -> usize {
        self.port_count
    }

    /// Total cell area of cluster `c` in µm².
    pub fn area(&self, c: u32) -> f64 {
        self.cluster_area[c as usize]
    }

    /// The original cells of cluster `c`.
    pub fn cells(&self, c: u32) -> &[CellId] {
        &self.cluster_cells[c as usize]
    }

    /// The cluster each original cell belongs to.
    pub fn cluster_of_cell(&self) -> &[u32] {
        &self.cluster_of_cell
    }

    /// Number of original cells in cluster `c`.
    pub fn size(&self, c: u32) -> usize {
        self.cluster_cells[c as usize].len()
    }

    /// The shape assigned to cluster `c`.
    pub fn shape(&self, c: u32) -> ClusterShape {
        self.shapes[c as usize]
    }

    /// Overrides the shape of cluster `c` (from V-P&R, Algorithm 1 line 13).
    pub fn set_shape(&mut self, c: u32, shape: ClusterShape) {
        self.shapes[c as usize] = shape;
    }

    /// Macro footprint `(width, height)` of cluster `c` in µm.
    pub fn dims(&self, c: u32) -> (f64, f64) {
        self.shapes[c as usize].dims(self.cluster_area[c as usize])
    }

    /// The hypergraph over clusters (and ports as trailing vertices).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// Per-hyperedge weights (same order as the hypergraph edges).
    pub fn net_weights(&self) -> &[f64] {
        &self.net_weights
    }

    /// `true` for hyperedges that touch a top port.
    pub fn edge_is_io(&self) -> &[bool] {
        &self.edge_is_io
    }

    /// The original net behind each hyperedge.
    pub fn original_net_of_edge(&self) -> &[NetId] {
        &self.original_net_of_edge
    }

    /// Hypergraph vertex of a port.
    pub fn port_vertex(&self, p: PortId) -> u32 {
        self.cluster_count as u32 + p.0
    }

    /// Scales the weight of IO-touching hyperedges (the paper scales IO net
    /// weights by 4 in the OpenROAD flow, Algorithm 1 line 22, after [9]).
    pub fn scale_io_net_weights(&mut self, factor: f64) {
        for (w, &is_io) in self.net_weights.iter_mut().zip(&self.edge_is_io) {
            if is_io {
                *w *= factor;
            }
        }
    }

    /// Clusters larger than `min_instances`, the V-P&R shaping candidates
    /// (the paper shapes only clusters with more than 200 instances).
    pub fn shapeable_clusters(&self, min_instances: usize) -> Vec<u32> {
        (0..self.cluster_count as u32)
            .filter(|&c| self.size(c) > min_instances)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DesignProfile, GeneratorConfig};

    fn flat() -> Netlist {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(2)
            .generate()
    }

    fn halves(n: &Netlist) -> Vec<u32> {
        let half = n.cell_count() / 2;
        (0..n.cell_count()).map(|i| u32::from(i >= half)).collect()
    }

    #[test]
    fn areas_partition_total() {
        let n = flat();
        let c = ClusteredNetlist::from_assignment(&n, &halves(&n));
        let sum: f64 = (0..c.cluster_count() as u32).map(|i| c.area(i)).sum();
        assert!((sum - n.total_cell_area()).abs() < 1e-6);
        assert_eq!(c.cells(0).len() + c.cells(1).len(), n.cell_count());
    }

    #[test]
    fn intra_cluster_nets_absorbed() {
        let n = flat();
        // All cells in one cluster: only IO-touching nets survive.
        let c = ClusteredNetlist::from_assignment(&n, &vec![0; n.cell_count()]);
        assert_eq!(c.cluster_count(), 1);
        assert!(c.hypergraph().edge_count() > 0);
        assert!(c.edge_is_io().iter().all(|&b| b));
    }

    #[test]
    fn io_weight_scaling() {
        let n = flat();
        let mut c = ClusteredNetlist::from_assignment(&n, &halves(&n));
        let io_edges: Vec<usize> = c
            .edge_is_io()
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert!(!io_edges.is_empty());
        let before: Vec<f64> = io_edges.iter().map(|&i| c.net_weights()[i]).collect();
        c.scale_io_net_weights(4.0);
        for (k, &i) in io_edges.iter().enumerate() {
            assert!((c.net_weights()[i] - before[k] * 4.0).abs() < 1e-12);
        }
        // Non-IO edges untouched.
        if let Some(i) = c.edge_is_io().iter().position(|&b| !b) {
            assert!((c.net_weights()[i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shapes_default_to_uniform_and_override() {
        let n = flat();
        let mut c = ClusteredNetlist::from_assignment(&n, &halves(&n));
        assert_eq!(c.shape(0), ClusterShape::UNIFORM);
        let s = ClusterShape::new(1.5, 0.8);
        c.set_shape(0, s);
        assert_eq!(c.shape(0), s);
        let (w, h) = c.dims(0);
        assert!((w * h - c.area(0) / 0.8).abs() < 1e-6);
        assert!((h / w - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sparse_labels_are_densified() {
        let n = flat();
        let labels: Vec<u32> = (0..n.cell_count())
            .map(|i| if i % 3 == 0 { 10 } else { 77 })
            .collect();
        let c = ClusteredNetlist::from_assignment(&n, &labels);
        assert_eq!(c.cluster_count(), 2);
    }

    #[test]
    fn shapeable_threshold() {
        let n = flat();
        let c = ClusteredNetlist::from_assignment(&n, &halves(&n));
        assert_eq!(c.shapeable_clusters(0).len(), 2);
        assert_eq!(c.shapeable_clusters(n.cell_count()).len(), 0);
    }

    #[test]
    #[should_panic(expected = "assignment must cover every cell")]
    fn wrong_assignment_length_panics() {
        let n = flat();
        ClusteredNetlist::from_assignment(&n, &[0, 1]);
    }
}
