//! Bookshelf placement-format export (.nodes / .nets / .pl / .scl).
//!
//! The GSRC Bookshelf suite is the lingua franca of academic placement
//! tooling; exporting it lets the generated benchmarks and our placements
//! be fed to external placers for cross-checking.

use crate::floorplan::Floorplan;
use crate::netlist::{Netlist, PinRef};

/// The four Bookshelf files as strings (caller decides where they go).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookshelfExport {
    /// `.nodes` — objects and dimensions (ports are terminals).
    pub nodes: String,
    /// `.nets` — pin lists per net.
    pub nets: String,
    /// `.pl` — placement (cells movable, ports fixed).
    pub pl: String,
    /// `.scl` — core rows.
    pub scl: String,
}

/// Exports a placed netlist in Bookshelf format.
///
/// `positions` are hypergraph-vertex positions (cells then ports); pass
/// the concatenation used everywhere else in the toolkit.
///
/// # Panics
///
/// Panics if `positions` is shorter than `cells + ports`.
pub fn export(
    netlist: &Netlist,
    floorplan: &Floorplan,
    positions: &[(f64, f64)],
) -> BookshelfExport {
    let nc = netlist.cell_count();
    let np = netlist.port_count();
    assert!(
        positions.len() >= nc + np,
        "positions must cover cells and ports"
    );

    let mut nodes = String::new();
    nodes.push_str("UCLA nodes 1.0\n");
    nodes.push_str(&format!("NumNodes : {}\n", nc + np));
    nodes.push_str(&format!("NumTerminals : {np}\n"));
    for (i, c) in netlist.cells().iter().enumerate() {
        let m = netlist.library().cell(c.ty);
        nodes.push_str(&format!("  c{i} {:.4} {:.4}\n", m.width, m.height));
    }
    for (i, p) in netlist.ports().iter().enumerate() {
        let _ = p;
        nodes.push_str(&format!("  p{i} 1.0000 1.0000 terminal\n"));
    }

    let mut nets = String::new();
    nets.push_str("UCLA nets 1.0\n");
    let routable: Vec<&crate::netlist::Net> = netlist
        .nets()
        .iter()
        .filter(|n| !n.is_clock && n.pin_count() >= 2)
        .collect();
    let total_pins: usize = routable.iter().map(|n| n.pin_count()).sum();
    nets.push_str(&format!("NumNets : {}\n", routable.len()));
    nets.push_str(&format!("NumPins : {total_pins}\n"));
    for net in routable {
        nets.push_str(&format!("NetDegree : {} {}\n", net.pin_count(), net.name));
        for (p, dir) in net
            .driver
            .iter()
            .map(|p| (p, 'O'))
            .chain(net.sinks.iter().map(|p| (p, 'I')))
        {
            match *p {
                PinRef::Cell { cell, .. } => {
                    nets.push_str(&format!("  c{} {dir}\n", cell.0));
                }
                PinRef::Port(port) => {
                    nets.push_str(&format!("  p{} {dir}\n", port.0));
                }
            }
        }
    }

    let mut pl = String::new();
    pl.push_str("UCLA pl 1.0\n");
    for (i, &(x, y)) in positions.iter().take(nc).enumerate() {
        pl.push_str(&format!("c{i} {x:.4} {y:.4} : N\n"));
    }
    for (i, &(x, y)) in positions.iter().skip(nc).take(np).enumerate() {
        pl.push_str(&format!("p{i} {x:.4} {y:.4} : N /FIXED\n"));
    }

    let mut scl = String::new();
    scl.push_str("UCLA scl 1.0\n");
    scl.push_str(&format!("NumRows : {}\n", floorplan.row_count()));
    for r in 0..floorplan.row_count() {
        scl.push_str(&format!(
            "CoreRow Horizontal\n  Coordinate : {:.4}\n  Height : {:.4}\n  Sitewidth : {:.4}\n  SubrowOrigin : {:.4} NumSites : {}\nEnd\n",
            floorplan.row_y(r),
            floorplan.row_height,
            floorplan.site_width,
            floorplan.core.llx,
            floorplan.sites_per_row(),
        ));
    }

    BookshelfExport {
        nodes,
        nets,
        pl,
        scl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn export_counts_are_consistent() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(12)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        let total = n.cell_count() + n.port_count();
        let pos: Vec<(f64, f64)> = (0..total).map(|i| (i as f64, i as f64)).collect();
        let bs = export(&n, &fp, &pos);
        assert!(bs.nodes.contains(&format!("NumNodes : {total}")));
        assert!(bs
            .nodes
            .contains(&format!("NumTerminals : {}", n.port_count())));
        // One `.pl` line per object plus header.
        assert_eq!(bs.pl.lines().count(), 1 + total);
        // Net count matches the routable (non-clock, ≥2 pin) nets.
        let routable = n
            .nets()
            .iter()
            .filter(|x| !x.is_clock && x.pin_count() >= 2)
            .count();
        assert!(bs.nets.contains(&format!("NumNets : {routable}")));
        assert!(bs.scl.contains(&format!("NumRows : {}", fp.row_count())));
    }

    #[test]
    fn terminals_are_marked_fixed() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(12)
            .generate();
        let fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        let total = n.cell_count() + n.port_count();
        let pos = vec![(0.0, 0.0); total];
        let bs = export(&n, &fp, &pos);
        assert_eq!(bs.pl.matches("/FIXED").count(), n.port_count());
    }
}
