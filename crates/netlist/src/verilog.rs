//! Minimal structural-netlist text format (writer and parser).
//!
//! Not real Verilog — a line-oriented interchange format that round-trips a
//! [`Netlist`] for examples, golden files and debugging:
//!
//! ```text
//! design tiny
//! port input a
//! port output y
//! cell u0 INV_X1 tiny/core
//! net na a : u0.0
//! net n1 u0 : y
//! clocknet ck clkport : u1.1
//! ```
//!
//! A net line is `net <name> <driver> : <sink>...`; drivers and sinks are
//! either a port name or `<cell>.<pin>` (a bare cell name as driver means
//! its output pin). Cell lines carry the full hierarchy path.

use crate::hierarchy::HierTree;
use crate::ids::{CellId, PortId};
use crate::library::Library;
use crate::netlist::{Netlist, NetlistBuilder, PinRef, PortDir};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetlistError {
    /// A line did not match any known directive.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A referenced name (cell, port or master) is unknown.
    UnknownName {
        /// 1-based line number.
        line: usize,
        /// The unknown identifier.
        name: String,
    },
    /// The netlist failed connectivity validation.
    Invalid(String),
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadLine { line, text } => write!(f, "line {line}: unrecognized `{text}`"),
            Self::UnknownName { line, name } => write!(f, "line {line}: unknown name `{name}`"),
            Self::Invalid(msg) => write!(f, "invalid netlist: {msg}"),
        }
    }
}

impl std::error::Error for ParseNetlistError {}

/// Serializes a netlist to the interchange format.
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("design {}\n", netlist.name()));
    for p in netlist.ports() {
        let dir = match p.dir {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        out.push_str(&format!("port {dir} {}\n", p.name));
    }
    let tree = netlist.hierarchy();
    for c in netlist.cells() {
        out.push_str(&format!(
            "cell {} {} {}\n",
            c.name,
            netlist.library().cell(c.ty).name,
            tree.path(c.hier)
        ));
    }
    for net in netlist.nets() {
        let kw = if net.is_clock { "clocknet" } else { "net" };
        let driver = match net.driver {
            Some(PinRef::Cell { cell, .. }) => netlist.cell(cell).name.clone(),
            Some(PinRef::Port(p)) => netlist.port(p).name.clone(),
            None => "-".to_string(),
        };
        let sinks: Vec<String> = net
            .sinks
            .iter()
            .map(|s| match *s {
                PinRef::Cell { cell, pin } => format!("{}.{pin}", netlist.cell(cell).name),
                PinRef::Port(p) => netlist.port(p).name.clone(),
            })
            .collect();
        out.push_str(&format!(
            "{kw} {} {driver} : {}\n",
            net.name,
            sinks.join(" ")
        ));
    }
    out
}

/// Parses the interchange format against a library.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on malformed lines, unknown names, or
/// connectivity violations.
pub fn parse(text: &str, library: Library) -> Result<Netlist, ParseNetlistError> {
    let mut name = "design".to_string();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("design ") {
            name = rest.trim().to_string();
            break;
        }
    }
    let mut builder = NetlistBuilder::new(name.clone(), library);
    let mut cells: HashMap<String, CellId> = HashMap::new();
    let mut ports: HashMap<String, PortId> = HashMap::new();
    let mut hier_nodes: HashMap<String, crate::ids::HierNodeId> = HashMap::new();
    hier_nodes.insert(name.clone(), HierTree::ROOT);

    for (lno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lno = lno + 1;
        if line.is_empty() || line.starts_with('#') || line.starts_with("design ") {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("port") => {
                let dir = match tok.next() {
                    Some("input") => PortDir::Input,
                    Some("output") => PortDir::Output,
                    _ => {
                        return Err(ParseNetlistError::BadLine {
                            line: lno,
                            text: raw.to_string(),
                        })
                    }
                };
                let pname = tok.next().ok_or_else(|| ParseNetlistError::BadLine {
                    line: lno,
                    text: raw.to_string(),
                })?;
                let id = builder.add_port(pname, dir);
                ports.insert(pname.to_string(), id);
            }
            Some("cell") => {
                let (cname, master, path) = match (tok.next(), tok.next(), tok.next()) {
                    (Some(a), Some(b), Some(c)) => (a, b, c),
                    _ => {
                        return Err(ParseNetlistError::BadLine {
                            line: lno,
                            text: raw.to_string(),
                        })
                    }
                };
                let ty = builder.library().find(master).ok_or_else(|| {
                    ParseNetlistError::UnknownName {
                        line: lno,
                        name: master.to_string(),
                    }
                })?;
                // Materialize the hierarchy path.
                let mut node = HierTree::ROOT;
                let mut prefix = String::new();
                for (i, part) in path.split('/').enumerate() {
                    if i == 0 {
                        prefix = part.to_string();
                        continue; // root
                    }
                    prefix = format!("{prefix}/{part}");
                    node = *hier_nodes
                        .entry(prefix.clone())
                        .or_insert_with(|| builder.hierarchy_mut().add_child(node, part));
                }
                let id = builder.add_cell(cname, ty, node);
                cells.insert(cname.to_string(), id);
            }
            Some(kw @ ("net" | "clocknet")) => {
                let nname = tok.next().ok_or_else(|| ParseNetlistError::BadLine {
                    line: lno,
                    text: raw.to_string(),
                })?;
                let driver_tok = tok.next().ok_or_else(|| ParseNetlistError::BadLine {
                    line: lno,
                    text: raw.to_string(),
                })?;
                let driver = if driver_tok == "-" {
                    None
                } else if let Some(&c) = cells.get(driver_tok) {
                    Some(PinRef::Cell { cell: c, pin: 0 })
                } else if let Some(&p) = ports.get(driver_tok) {
                    Some(PinRef::Port(p))
                } else {
                    return Err(ParseNetlistError::UnknownName {
                        line: lno,
                        name: driver_tok.to_string(),
                    });
                };
                let mut sinks = Vec::new();
                let mut seen_colon = false;
                for t in tok {
                    if t == ":" {
                        seen_colon = true;
                        continue;
                    }
                    if !seen_colon {
                        return Err(ParseNetlistError::BadLine {
                            line: lno,
                            text: raw.to_string(),
                        });
                    }
                    if let Some((cname, pin)) = t.rsplit_once('.') {
                        let &c =
                            cells
                                .get(cname)
                                .ok_or_else(|| ParseNetlistError::UnknownName {
                                    line: lno,
                                    name: cname.to_string(),
                                })?;
                        let pin: u8 = pin.parse().map_err(|_| ParseNetlistError::BadLine {
                            line: lno,
                            text: raw.to_string(),
                        })?;
                        sinks.push(PinRef::Cell { cell: c, pin });
                    } else if let Some(&p) = ports.get(t) {
                        sinks.push(PinRef::Port(p));
                    } else {
                        return Err(ParseNetlistError::UnknownName {
                            line: lno,
                            name: t.to_string(),
                        });
                    }
                }
                if kw == "clocknet" {
                    builder.add_clock_net(nname, driver, sinks);
                } else {
                    builder.add_net(nname, driver, sinks);
                }
            }
            _ => {
                return Err(ParseNetlistError::BadLine {
                    line: lno,
                    text: raw.to_string(),
                })
            }
        }
    }
    builder
        .finish()
        .map_err(|e| ParseNetlistError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn roundtrip_generated_design() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.005)
            .seed(4)
            .generate();
        let text = write(&n);
        let back = parse(&text, Library::nangate45ish()).expect("parses");
        assert_eq!(back.cell_count(), n.cell_count());
        assert_eq!(back.net_count(), n.net_count());
        assert_eq!(back.port_count(), n.port_count());
        assert_eq!(back.stats().flops, n.stats().flops);
        assert_eq!(back.hierarchy().len(), n.hierarchy().len());
    }

    #[test]
    fn parse_small_design() {
        let text = "\
design tiny
port input a
port output y
cell u0 INV_X1 tiny/core
cell u1 INV_X1 tiny/core
net na a : u0.0
net n1 u0 : u1.0
net ny u1 : y
";
        let n = parse(text, Library::nangate45ish()).expect("parses");
        assert_eq!(n.cell_count(), 2);
        assert_eq!(n.net_count(), 3);
        assert_eq!(n.hierarchy().max_depth(), 1);
    }

    #[test]
    fn unknown_master_is_reported() {
        let text = "design t\ncell u0 NOPE_X9 t\n";
        let err = parse(text, Library::nangate45ish()).unwrap_err();
        assert!(matches!(err, ParseNetlistError::UnknownName { .. }));
    }

    #[test]
    fn bad_line_is_reported() {
        let text = "design t\nfrobnicate\n";
        let err = parse(text, Library::nangate45ish()).unwrap_err();
        assert!(matches!(err, ParseNetlistError::BadLine { line: 2, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "design t\n\n# a comment\nport input a\n";
        let n = parse(text, Library::nangate45ish()).expect("parses");
        assert_eq!(n.port_count(), 1);
    }
}
