//! Cluster shape models — the cluster `.lef` equivalent.
//!
//! A cluster shape is an (aspect ratio, utilization) pair. The paper sweeps
//! aspect ratio over `[0.75, 1.75]` step `0.25` and utilization over
//! `[0.75, 0.90]` step `0.05`, i.e. 20 candidates (Section 3.2); more
//! extreme aspect ratios "generally result in poor PPA" (footnote 5).

/// An (aspect ratio, utilization) pair describing a soft-macro footprint.
///
/// Aspect ratio is `height / width`. Utilization is the fraction of the
/// footprint occupied by cell area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterShape {
    /// `height / width` of the macro.
    pub aspect_ratio: f64,
    /// Cell-area / footprint-area.
    pub utilization: f64,
}

impl ClusterShape {
    /// The paper's *Uniform* baseline: utilization 0.9, aspect ratio 1.0
    /// (Table 6).
    pub const UNIFORM: Self = Self {
        aspect_ratio: 1.0,
        utilization: 0.90,
    };

    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics unless `aspect_ratio > 0` and `utilization ∈ (0, 1]`.
    pub fn new(aspect_ratio: f64, utilization: f64) -> Self {
        assert!(aspect_ratio > 0.0, "aspect ratio must be positive");
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization {utilization} out of (0, 1]"
        );
        Self {
            aspect_ratio,
            utilization,
        }
    }

    /// Footprint `(width, height)` in µm for a cluster of the given total
    /// cell area (µm²).
    pub fn dims(&self, cell_area: f64) -> (f64, f64) {
        let footprint = cell_area / self.utilization;
        let width = (footprint / self.aspect_ratio).sqrt();
        (width, footprint / width)
    }

    /// The paper's 20 shape candidates: 5 aspect ratios × 4 utilizations.
    pub fn candidates() -> Vec<Self> {
        let mut out = Vec::with_capacity(20);
        for i in 0..5 {
            let ar = 0.75 + 0.25 * i as f64;
            for j in 0..4 {
                let util = 0.75 + 0.05 * j as f64;
                out.push(Self::new(ar, util));
            }
        }
        out
    }
}

impl Default for ClusterShape {
    fn default() -> Self {
        Self::UNIFORM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_grid_matches_paper() {
        let c = ClusterShape::candidates();
        assert_eq!(c.len(), 20);
        let min_ar = c.iter().map(|s| s.aspect_ratio).fold(f64::MAX, f64::min);
        let max_ar = c.iter().map(|s| s.aspect_ratio).fold(f64::MIN, f64::max);
        assert_eq!((min_ar, max_ar), (0.75, 1.75));
        let min_u = c.iter().map(|s| s.utilization).fold(f64::MAX, f64::min);
        let max_u = c.iter().map(|s| s.utilization).fold(f64::MIN, f64::max);
        assert!((min_u - 0.75).abs() < 1e-12 && (max_u - 0.90).abs() < 1e-12);
    }

    #[test]
    fn dims_preserve_area_and_ratio() {
        let s = ClusterShape::new(1.5, 0.8);
        let (w, h) = s.dims(1200.0);
        assert!((w * h - 1500.0).abs() < 1e-9);
        assert!((h / w - 1.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_shape() {
        let (w, h) = ClusterShape::UNIFORM.dims(90.0);
        assert!((w - h).abs() < 1e-12);
        assert!((w * h - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_panics() {
        ClusterShape::new(1.0, 1.5);
    }
}
