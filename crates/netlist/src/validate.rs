//! Pre-flight input validation for the placement flow.
//!
//! [`ValidationError`] is the typed diagnostic every flow entry point
//! returns when handed a degenerate netlist, floorplan or constraint set —
//! the alternative to panicking five stages later inside the solver.

use crate::floorplan::Floorplan;
use crate::netlist::{Netlist, PinRef};
use crate::sdc::Constraints;
use std::fmt;

/// A rejected input, with enough detail to point at the offender.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The netlist has no cells at all.
    EmptyNetlist,
    /// The netlist has cells but no (non-clock) nets to drive placement.
    NoNets,
    /// A net with zero pins (no driver and no sinks).
    NetWithoutPins {
        /// The offending net's name.
        net: String,
    },
    /// A pin reference past its master's pin list.
    DanglingPin {
        /// The offending net's name.
        net: String,
        /// The cell whose pin index is out of range.
        cell: String,
        /// The referenced pin index.
        pin: u8,
    },
    /// A cell master with a non-finite or non-positive footprint.
    NonFiniteCellDims {
        /// The offending master's name.
        master: String,
    },
    /// Core utilization outside `(0, 1]`.
    UtilizationOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// Aspect ratio that is not a finite positive number.
    AspectRatioOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// Macro-blockage area fraction outside `[0, 0.5)`.
    BlockageFractionOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// Total cell area exceeds the core's free capacity.
    CoreOverflow {
        /// Total movable cell area, µm².
        cell_area: f64,
        /// Free core area after blockages, µm².
        free_area: f64,
    },
    /// Clock period that is not a finite positive number.
    NonPositiveClockPeriod {
        /// The rejected value.
        value: f64,
    },
    /// IO delay or activity figure that is not finite.
    NonFiniteConstraint {
        /// Which constraint field was rejected.
        field: &'static str,
    },
    /// A cluster assignment whose length differs from the cell count.
    AssignmentLengthMismatch {
        /// Length of the supplied assignment.
        assignment: usize,
        /// Cells in the netlist.
        cells: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyNetlist => write!(f, "netlist has no cells"),
            Self::NoNets => write!(f, "netlist has no placeable nets"),
            Self::NetWithoutPins { net } => {
                write!(f, "net `{net}` has no pins")
            }
            Self::DanglingPin { net, cell, pin } => write!(
                f,
                "net `{net}` references pin {pin} of cell `{cell}`, \
                 past its master's pin list"
            ),
            Self::NonFiniteCellDims { master } => write!(
                f,
                "cell master `{master}` has a non-finite or non-positive footprint"
            ),
            Self::UtilizationOutOfRange { value } => {
                write!(f, "core utilization {value} out of (0, 1]")
            }
            Self::AspectRatioOutOfRange { value } => {
                write!(f, "aspect ratio {value} is not a finite positive number")
            }
            Self::BlockageFractionOutOfRange { value } => {
                write!(f, "macro blockage fraction {value} out of [0, 0.5)")
            }
            Self::CoreOverflow {
                cell_area,
                free_area,
            } => write!(
                f,
                "total cell area {cell_area:.1} µm² exceeds the core's free \
                 capacity {free_area:.1} µm²"
            ),
            Self::NonPositiveClockPeriod { value } => {
                write!(f, "clock period {value} is not a finite positive number")
            }
            Self::NonFiniteConstraint { field } => {
                write!(f, "constraint `{field}` is not finite")
            }
            Self::AssignmentLengthMismatch { assignment, cells } => write!(
                f,
                "cluster assignment covers {assignment} cells but the netlist \
                 has {cells}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Netlist {
    /// Structural pre-flight check: rejects empty netlists, nets without
    /// pins, dangling pin references and degenerate master footprints.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let _span = cp_trace::span("netlist.validate");
        if self.cell_count() == 0 {
            return Err(ValidationError::EmptyNetlist);
        }
        for master in self.library().cells() {
            let ok = master.width.is_finite()
                && master.height.is_finite()
                && master.width > 0.0
                && master.height > 0.0;
            if !ok {
                return Err(ValidationError::NonFiniteCellDims {
                    master: master.name.clone(),
                });
            }
        }
        let mut placeable = 0usize;
        for net in self.nets() {
            if net.pin_count() == 0 {
                return Err(ValidationError::NetWithoutPins {
                    net: net.name.clone(),
                });
            }
            if !net.is_clock {
                placeable += 1;
            }
            for sink in &net.sinks {
                if let PinRef::Cell { cell, pin } = *sink {
                    if pin as usize >= self.master(cell).input_count() {
                        return Err(ValidationError::DanglingPin {
                            net: net.name.clone(),
                            cell: self.cell(cell).name.clone(),
                            pin,
                        });
                    }
                }
            }
        }
        if placeable == 0 {
            return Err(ValidationError::NoNets);
        }
        Ok(())
    }
}

impl Constraints {
    /// Rejects non-finite or non-positive clock periods and non-finite IO
    /// delay / activity figures.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if !(self.clock_period.is_finite() && self.clock_period > 0.0) {
            return Err(ValidationError::NonPositiveClockPeriod {
                value: self.clock_period,
            });
        }
        for (field, value) in [
            ("input_delay", self.input_delay),
            ("output_delay", self.output_delay),
            ("input_activity", self.input_activity),
            ("input_probability", self.input_probability),
        ] {
            if !value.is_finite() {
                return Err(ValidationError::NonFiniteConstraint { field });
            }
        }
        Ok(())
    }
}

impl Floorplan {
    /// Fallible twin of [`Floorplan::for_netlist`]: rejects utilization
    /// outside `(0, 1]` and non-finite or non-positive aspect ratios
    /// instead of panicking.
    pub fn try_for_netlist(
        netlist: &Netlist,
        utilization: f64,
        aspect_ratio: f64,
    ) -> Result<Self, ValidationError> {
        if !(utilization > 0.0 && utilization <= 1.0) {
            return Err(ValidationError::UtilizationOutOfRange { value: utilization });
        }
        if !(aspect_ratio.is_finite() && aspect_ratio > 0.0) {
            return Err(ValidationError::AspectRatioOutOfRange {
                value: aspect_ratio,
            });
        }
        Ok(Self::for_netlist(netlist, utilization, aspect_ratio))
    }

    /// Fallible twin of [`Floorplan::with_macro_blockages`]: rejects area
    /// fractions outside `[0, 0.5)` instead of panicking.
    pub fn try_with_macro_blockages(
        self,
        count: usize,
        area_fraction: f64,
    ) -> Result<Self, ValidationError> {
        if !(0.0..0.5).contains(&area_fraction) {
            return Err(ValidationError::BlockageFractionOutOfRange {
                value: area_fraction,
            });
        }
        Ok(self.with_macro_blockages(count, area_fraction))
    }

    /// Checks that the netlist's movable area fits the core's free
    /// capacity (a floorplan built by [`Floorplan::for_netlist`] always
    /// fits; hand-built or blockage-mutated ones may not).
    pub fn validate_capacity(&self, netlist: &Netlist) -> Result<(), ValidationError> {
        let cell_area = netlist.total_cell_area();
        let free_area = self.free_area_in(&self.core);
        if cell_area > free_area {
            return Err(ValidationError::CoreOverflow {
                cell_area,
                free_area,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DesignProfile, GeneratorConfig};
    use crate::netlist::NetlistBuilder;
    use crate::{HierTree, Library};

    fn design() -> (Netlist, Constraints) {
        GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .seed(5)
            .generate_with_constraints()
    }

    #[test]
    fn generated_designs_validate() {
        let (n, c) = design();
        assert_eq!(n.validate(), Ok(()));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn empty_netlist_is_rejected() {
        let n = NetlistBuilder::new("empty", Library::nangate45ish())
            .finish()
            .unwrap();
        assert_eq!(n.validate(), Err(ValidationError::EmptyNetlist));
    }

    #[test]
    fn netless_netlist_is_rejected() {
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("lonely", lib);
        b.add_cell("u0", inv, HierTree::ROOT);
        let n = b.finish().unwrap();
        assert_eq!(n.validate(), Err(ValidationError::NoNets));
    }

    #[test]
    fn pinless_net_is_rejected() {
        let lib = Library::nangate45ish();
        let inv = lib.find("INV_X1").unwrap();
        let mut b = NetlistBuilder::new("floating", lib);
        b.add_cell("u0", inv, HierTree::ROOT);
        b.add_net("n0", None, vec![]);
        let n = b.finish().unwrap();
        assert!(matches!(
            n.validate(),
            Err(ValidationError::NetWithoutPins { .. })
        ));
    }

    #[test]
    fn bad_constraints_are_rejected() {
        let (_, good) = design();
        for period in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = Constraints {
                clock_period: period,
                ..good.clone()
            };
            assert!(matches!(
                c.validate(),
                Err(ValidationError::NonPositiveClockPeriod { .. })
            ));
        }
        let c = Constraints {
            input_delay: f64::NAN,
            ..good
        };
        assert_eq!(
            c.validate(),
            Err(ValidationError::NonFiniteConstraint {
                field: "input_delay"
            })
        );
    }

    #[test]
    fn try_for_netlist_rejects_bad_geometry() {
        let (n, _) = design();
        assert!(matches!(
            Floorplan::try_for_netlist(&n, 0.0, 1.0),
            Err(ValidationError::UtilizationOutOfRange { .. })
        ));
        assert!(matches!(
            Floorplan::try_for_netlist(&n, 1.5, 1.0),
            Err(ValidationError::UtilizationOutOfRange { .. })
        ));
        assert!(matches!(
            Floorplan::try_for_netlist(&n, 0.6, f64::NAN),
            Err(ValidationError::AspectRatioOutOfRange { .. })
        ));
        assert!(Floorplan::try_for_netlist(&n, 0.6, 1.0).is_ok());
        assert!(matches!(
            Floorplan::for_netlist(&n, 0.6, 1.0).try_with_macro_blockages(2, 0.6),
            Err(ValidationError::BlockageFractionOutOfRange { .. })
        ));
    }

    #[test]
    fn capacity_check_catches_overfull_cores() {
        let (n, _) = design();
        let mut fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        assert_eq!(fp.validate_capacity(&n), Ok(()));
        // Shrink the core below the cell area.
        fp.core.urx = fp.core.llx + 1.0;
        fp.core.ury = fp.core.lly + 1.0;
        assert!(matches!(
            fp.validate_capacity(&n),
            Err(ValidationError::CoreOverflow { .. })
        ));
    }
}
