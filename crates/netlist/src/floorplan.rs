//! Die/core geometry, rows and IO pin placement — the `.def` equivalent.

use crate::netlist::Netlist;

/// An axis-aligned rectangle in µm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left x.
    pub llx: f64,
    /// Lower-left y.
    pub lly: f64,
    /// Upper-right x.
    pub urx: f64,
    /// Upper-right y.
    pub ury: f64,
}

impl Rect {
    /// A rectangle from corner and size.
    pub fn new(llx: f64, lly: f64, width: f64, height: f64) -> Self {
        Self {
            llx,
            lly,
            urx: llx + width,
            ury: lly + height,
        }
    }

    /// Width (x extent).
    pub fn width(&self) -> f64 {
        self.urx - self.llx
    }

    /// Height (y extent).
    pub fn height(&self) -> f64 {
        self.ury - self.lly
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> (f64, f64) {
        ((self.llx + self.urx) / 2.0, (self.lly + self.ury) / 2.0)
    }

    /// `true` if `(x, y)` lies inside or on the boundary.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.llx && x <= self.urx && y >= self.lly && y <= self.ury
    }

    /// Clamps a point into the rectangle.
    pub fn clamp(&self, x: f64, y: f64) -> (f64, f64) {
        (x.clamp(self.llx, self.urx), y.clamp(self.lly, self.ury))
    }
}

/// The floorplan: die and core boxes, row geometry and fixed IO positions.
///
/// # Examples
///
/// ```
/// use cp_netlist::generator::{DesignProfile, GeneratorConfig};
/// use cp_netlist::Floorplan;
///
/// let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
///     .scale(0.01)
///     .generate();
/// let fp = Floorplan::for_netlist(&netlist, 0.6, 1.0);
/// assert!(fp.core.area() * 0.6 >= netlist.total_cell_area() * 0.99);
/// assert_eq!(fp.port_positions.len(), netlist.port_count());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Die boundary.
    pub die: Rect,
    /// Core (placeable) area.
    pub core: Rect,
    /// Standard-cell row height in µm.
    pub row_height: f64,
    /// Placement site width in µm.
    pub site_width: f64,
    /// Target core utilization used to size the core.
    pub utilization: f64,
    /// Fixed position of each top port, indexed by port id, on the core
    /// boundary.
    pub port_positions: Vec<(f64, f64)>,
    /// Preplaced macro obstructions inside the core (the `.def` macro
    /// preplacements of the paper's larger testcases).
    pub blockages: Vec<Rect>,
}

impl Floorplan {
    /// Margin between core and die, in row heights.
    const CORE_MARGIN_ROWS: f64 = 2.0;

    /// Sizes a floorplan for `netlist` at the given core `utilization` and
    /// aspect ratio (`height / width`), and spreads the ports evenly around
    /// the core boundary (counter-clockwise from the lower-left corner).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or `aspect_ratio <= 0`.
    pub fn for_netlist(netlist: &Netlist, utilization: f64, aspect_ratio: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization {utilization} out of (0, 1]"
        );
        assert!(aspect_ratio > 0.0, "aspect ratio must be positive");
        let lib = netlist.library();
        let area = (netlist.total_cell_area() / utilization).max(lib.row_height * lib.site_width);
        // aspect_ratio = height / width; snap height to rows, width to sites.
        let raw_height = (area * aspect_ratio).sqrt();
        let rows = (raw_height / lib.row_height).ceil().max(1.0);
        let height = rows * lib.row_height;
        let width = ((area / height) / lib.site_width).ceil().max(1.0) * lib.site_width;
        let margin = Self::CORE_MARGIN_ROWS * lib.row_height;
        let core = Rect::new(margin, margin, width, height);
        let die = Rect::new(0.0, 0.0, width + 2.0 * margin, height + 2.0 * margin);
        let port_positions = perimeter_points(&core, netlist.port_count());
        Self {
            die,
            core,
            row_height: lib.row_height,
            site_width: lib.site_width,
            utilization,
            port_positions,
            blockages: Vec::new(),
        }
    }

    /// Adds `count` preplaced macro blockages totalling `area_fraction` of
    /// the core, grown accordingly so standard-cell capacity is preserved.
    /// Macros line up along the top edge with one-row gaps, as macro
    /// placers commonly do.
    ///
    /// # Panics
    ///
    /// Panics unless `area_fraction ∈ [0, 0.5)`.
    pub fn with_macro_blockages(mut self, count: usize, area_fraction: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&area_fraction),
            "blockage fraction out of [0, 0.5)"
        );
        if count == 0 || area_fraction == 0.0 {
            return self;
        }
        // Grow the core so free capacity stays constant.
        let grow = 1.0 / (1.0 - area_fraction);
        let extra_h = self.core.height() * (grow - 1.0);
        let rows = (extra_h / self.row_height).ceil();
        self.core.ury += rows * self.row_height;
        self.die.ury += rows * self.row_height;
        let margin = self.row_height;
        let block_area = self.core.area() * area_fraction / count as f64;
        let avail_w = self.core.width() - (count as f64 + 1.0) * margin;
        let bw = (avail_w / count as f64)
            .min(block_area.sqrt() * 1.5)
            .max(1.0);
        let bh = (block_area / bw).min(self.core.height() * 0.45);
        for k in 0..count {
            let llx = self.core.llx + margin + k as f64 * (bw + margin);
            let lly = self.core.ury - margin - bh;
            self.blockages.push(Rect::new(llx, lly, bw, bh));
        }
        // Re-spread ports along the (taller) boundary.
        self.port_positions = perimeter_points(&self.core, self.port_positions.len());
        self
    }

    /// Area of `rect` not covered by blockages, µm² (blockages assumed
    /// disjoint, as produced by [`Floorplan::with_macro_blockages`]).
    pub fn free_area_in(&self, rect: &Rect) -> f64 {
        let mut blocked = 0.0;
        for b in &self.blockages {
            let w = (rect.urx.min(b.urx) - rect.llx.max(b.llx)).max(0.0);
            let h = (rect.ury.min(b.ury) - rect.lly.max(b.lly)).max(0.0);
            blocked += w * h;
        }
        (rect.area() - blocked).max(0.0)
    }

    /// Number of standard-cell rows in the core.
    pub fn row_count(&self) -> usize {
        (self.core.height() / self.row_height).round() as usize
    }

    /// Number of sites per row.
    pub fn sites_per_row(&self) -> usize {
        (self.core.width() / self.site_width).floor() as usize
    }

    /// The y coordinate of row `r`'s bottom edge.
    pub fn row_y(&self, r: usize) -> f64 {
        self.core.lly + r as f64 * self.row_height
    }
}

/// `n` points evenly spaced along the boundary of `rect`, starting at the
/// lower-left corner and walking counter-clockwise.
fn perimeter_points(rect: &Rect, n: usize) -> Vec<(f64, f64)> {
    let (w, h) = (rect.width(), rect.height());
    let perimeter = 2.0 * (w + h);
    (0..n)
        .map(|i| {
            let mut t = perimeter * i as f64 / n.max(1) as f64;
            if t < w {
                return (rect.llx + t, rect.lly);
            }
            t -= w;
            if t < h {
                return (rect.urx, rect.lly + t);
            }
            t -= h;
            if t < w {
                return (rect.urx - t, rect.ury);
            }
            t -= w;
            (rect.llx, rect.ury - t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn rect_basics() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
        assert!(r.contains(1.0, 2.0));
        assert!(!r.contains(0.9, 2.0));
        assert_eq!(r.clamp(100.0, -5.0), (4.0, 2.0));
    }

    #[test]
    fn perimeter_points_lie_on_boundary() {
        let r = Rect::new(0.0, 0.0, 10.0, 6.0);
        for &(x, y) in &perimeter_points(&r, 17) {
            let on_edge = (x - r.llx).abs() < 1e-9
                || (x - r.urx).abs() < 1e-9
                || (y - r.lly).abs() < 1e-9
                || (y - r.ury).abs() < 1e-9;
            assert!(on_edge, "({x}, {y}) not on boundary");
            assert!(r.contains(x, y));
        }
    }

    #[test]
    fn floorplan_respects_utilization_and_ar() {
        let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(3)
            .generate();
        for &(util, ar) in &[(0.5, 1.0), (0.8, 1.5), (0.9, 0.75)] {
            let fp = Floorplan::for_netlist(&netlist, util, ar);
            assert!(fp.core.area() * util >= netlist.total_cell_area() * 0.999);
            let measured_ar = fp.core.height() / fp.core.width();
            assert!(
                (measured_ar - ar).abs() / ar < 0.25,
                "ar {measured_ar} too far from {ar}"
            );
            assert!(fp.row_count() > 0);
            assert!(fp.die.area() > fp.core.area());
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_panics() {
        let netlist = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .generate();
        Floorplan::for_netlist(&netlist, 0.0, 1.0);
    }
}

#[cfg(test)]
mod blockage_tests {
    use super::*;
    use crate::generator::{DesignProfile, GeneratorConfig};

    #[test]
    fn blockages_preserve_free_capacity() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.02)
            .seed(3)
            .generate();
        let plain = Floorplan::for_netlist(&n, 0.6, 1.0);
        let blocked = Floorplan::for_netlist(&n, 0.6, 1.0).with_macro_blockages(3, 0.2);
        assert_eq!(blocked.blockages.len(), 3);
        let free = blocked.free_area_in(&blocked.core);
        // Free capacity should be at least the unobstructed core's area.
        assert!(
            free >= plain.core.area() * 0.95,
            "free {free} vs plain {}",
            plain.core.area()
        );
        // Blockages are inside the core and disjoint.
        for (i, b) in blocked.blockages.iter().enumerate() {
            assert!(b.llx >= blocked.core.llx - 1e-9);
            assert!(b.urx <= blocked.core.urx + 1e-9);
            assert!(b.ury <= blocked.core.ury + 1e-9);
            for b2 in &blocked.blockages[i + 1..] {
                let overlap_w = (b.urx.min(b2.urx) - b.llx.max(b2.llx)).max(0.0);
                let overlap_h = (b.ury.min(b2.ury) - b.lly.max(b2.lly)).max(0.0);
                assert_eq!(overlap_w * overlap_h, 0.0, "blockages overlap");
            }
        }
    }

    #[test]
    fn free_area_math() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .generate();
        let mut fp = Floorplan::for_netlist(&n, 0.6, 1.0);
        fp.blockages
            .push(Rect::new(fp.core.llx, fp.core.lly, 5.0, 4.0));
        let probe = Rect::new(fp.core.llx, fp.core.lly, 10.0, 4.0);
        assert!((fp.free_area_in(&probe) - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "blockage fraction")]
    fn excessive_blockage_fraction_panics() {
        let n = GeneratorConfig::from_profile(DesignProfile::Aes)
            .scale(0.01)
            .generate();
        let _ = Floorplan::for_netlist(&n, 0.6, 1.0).with_macro_blockages(2, 0.6);
    }
}
