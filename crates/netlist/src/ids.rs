//! Typed indices into the netlist database.
//!
//! Newtypes keep cell/net/port indices from being confused with one another
//! (and with plain `usize` loop counters) at zero runtime cost.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The index as a `usize`, for container access.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> Self {
                v.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a cell instance in a [`crate::Netlist`].
    CellId
);
id_type!(
    /// Index of a net in a [`crate::Netlist`].
    NetId
);
id_type!(
    /// Index of a top-level port in a [`crate::Netlist`].
    PortId
);
id_type!(
    /// Index of a cell type (master) in a [`crate::Library`].
    CellTypeId
);
id_type!(
    /// Index of a node in a [`crate::HierTree`] (a module instance).
    HierNodeId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_index() {
        let c = CellId::from(7u32);
        assert_eq!(c.index(), 7);
        assert_eq!(u32::from(c), 7);
        assert_eq!(c, CellId(7));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NetId(1));
        s.insert(NetId(1));
        assert_eq!(s.len(), 1);
        assert!(NetId(1) < NetId(2));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(PortId(3).to_string(), "PortId(3)");
    }
}
