//! Property tests for [`ProgressSink`]: across *arbitrary* event
//! sequences — spans opening and closing in any order, with any
//! timestamps, interleaved with series points, instants and metric
//! updates — the reported completion `fraction` is monotone
//! non-decreasing and stays in `[0, 1]`, and the ETA (when history is
//! supplied) is never negative and never grows.
//!
//! Monotonicity holds by construction: `Done` is absorbing per stage,
//! `last_event_ns` is a running max, a running stage's credit is capped
//! at its historical weight, and float addition/subtraction are monotone
//! in each operand — these tests pin that reasoning against regressions.

use cp_trace::sink::{ProgressSink, SinkEvent, TraceSink};
use proptest::prelude::*;

/// Stage/span name pool: the three tracked stages, the V-P&R span and
/// one untracked bystander (`SinkEvent` names are `&'static str`).
const SPAN_NAMES: [&str; 5] = ["clustering", "shaping", "ppa", "vpr.cluster", "misc"];
const SERIES_NAMES: [&str; 2] = ["place.outer", "other.series"];
const INSTANT_NAMES: [&str; 2] = ["recovery.checkpoint", "tick"];

/// One generated event as raw integers: `(kind, name index, span/slot
/// id, timestamp a, timestamp b)`. Kinds map to the `SinkEvent`
/// variants; both timestamps are arbitrary, so close-before-open,
/// end-before-start and duplicate lifecycles are all reachable.
type RawEvent = (usize, usize, u64, u64, u64);

fn event_from(raw: RawEvent) -> SinkEvent {
    let (kind, name, id, ts_a, ts_b) = raw;
    match kind % 6 {
        0 => SinkEvent::SpanOpen {
            id: id % 16,
            parent: 0,
            name: SPAN_NAMES[name % SPAN_NAMES.len()],
            thread: (id % 4) as u32,
            start_ns: ts_a,
        },
        1 => SinkEvent::SpanClose {
            id: id % 16,
            parent: 0,
            name: SPAN_NAMES[name % SPAN_NAMES.len()],
            thread: (id % 4) as u32,
            start_ns: ts_a,
            end_ns: ts_b,
        },
        2 => SinkEvent::SeriesPoint {
            name: SERIES_NAMES[name % SERIES_NAMES.len()],
            span: id,
            iter: ts_b % 64,
            values: vec![("hpwl", ts_a as f64)],
        },
        3 => SinkEvent::Instant {
            name: INSTANT_NAMES[name % INSTANT_NAMES.len()],
            span: id,
            thread: (id % 4) as u32,
            ts_ns: ts_a,
            args: vec![],
        },
        4 => SinkEvent::Counter {
            name: "events",
            slot: (id % 8) as u32,
            total: ts_b,
        },
        _ => SinkEvent::Gauge {
            name: "qor.hpwl",
            value: ts_a as f64,
        },
    }
}

fn raw_events() -> impl Strategy<Value = Vec<RawEvent>> {
    proptest::collection::vec(
        (
            0usize..6,
            0usize..SPAN_NAMES.len(),
            0u64..32,
            0u64..10_000_000_000,
            0u64..10_000_000_000,
        ),
        0..80,
    )
}

proptest! {
    /// Count-based progress (no history): the fraction only ever moves
    /// forward, stays in the unit interval, and no ETA is invented.
    #[test]
    fn fraction_monotone_without_history(raw in raw_events()) {
        let mut sink = ProgressSink::new(&["clustering", "shaping", "ppa"])
            .expect_vpr_clusters(4);
        let mut prev = sink.snapshot();
        prop_assert_eq!(prev.fraction, 0.0);
        for r in raw {
            sink.on_event(&event_from(r));
            let snap = sink.snapshot();
            prop_assert!(snap.fraction >= prev.fraction,
                "fraction regressed: {} -> {}", prev.fraction, snap.fraction);
            prop_assert!((0.0..=1.0).contains(&snap.fraction));
            prop_assert_eq!(snap.eta_s, None);
            prop_assert!(snap.last_event_ns >= prev.last_event_ns);
            prop_assert!(snap.done_stages >= prev.done_stages);
            if let Some(v) = snap.vpr_fraction {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            prev = snap;
        }
    }

    /// History-weighted progress: same monotonicity, plus an ETA that is
    /// never negative and never grows — even with a stage missing from
    /// the history (it falls back to the mean weight) and with running
    /// stages earning partial credit from the event clock.
    #[test]
    fn eta_never_negative_with_history(raw in raw_events()) {
        let mut sink = ProgressSink::new(&["clustering", "shaping", "ppa"])
            .with_history(&[("clustering", 2.0), ("shaping", 6.0)]);
        let mut prev = sink.snapshot();
        for r in raw {
            sink.on_event(&event_from(r));
            let snap = sink.snapshot();
            prop_assert!(snap.fraction >= prev.fraction,
                "fraction regressed: {} -> {}", prev.fraction, snap.fraction);
            prop_assert!((0.0..=1.0).contains(&snap.fraction));
            let eta = snap.eta_s.expect("history must yield an ETA");
            prop_assert!(eta >= 0.0 && eta.is_finite(), "bad eta: {eta}");
            if let Some(prev_eta) = prev.eta_s {
                prop_assert!(eta <= prev_eta, "eta grew: {prev_eta} -> {eta}");
            }
            prev = snap;
        }
    }
}
