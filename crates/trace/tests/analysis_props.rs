//! Property tests for the trace analysis layer: self-time telescopes to
//! the root wall on arbitrary span trees, the critical path is monotone
//! under child insertion, and a report diffed against itself is empty at
//! any tolerance.

use cp_trace::{Analysis, DiffOptions, LedgerEntry, SpanRecord, TraceDiff, TraceReport};
use proptest::prelude::*;

/// Fixed name pool: `SpanRecord::name` is `&'static str`.
const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];

/// One generated non-root span: `(parent index, name index, thread,
/// start offset ns, duration ns)`. Parent indices are taken modulo the
/// number of spans generated so far, so every tree shape is reachable.
type RawSpan = (usize, usize, u32, u64, u64);

fn report_from(raw: &[RawSpan], root_dur_ns: u64) -> TraceReport {
    let mut spans = vec![SpanRecord {
        id: 1,
        parent: 0,
        name: "root",
        thread: 0,
        start_ns: 0,
        end_ns: root_dur_ns,
        args: vec![],
    }];
    for (i, &(parent, name, thread, start, dur)) in raw.iter().enumerate() {
        let id = i as u64 + 2;
        spans.push(SpanRecord {
            id,
            parent: (parent % spans.len()) as u64 + 1,
            name: NAMES[name % NAMES.len()],
            thread,
            start_ns: start,
            end_ns: start.saturating_add(dur),
            args: vec![],
        });
    }
    TraceReport {
        root: 1,
        spans,
        instants: vec![],
        series: vec![],
        metrics: vec![],
        dropped_events: 0,
    }
}

fn raw_spans() -> impl Strategy<Value = Vec<RawSpan>> {
    proptest::collection::vec(
        (
            0usize..64,
            0usize..NAMES.len(),
            0u32..4,
            0u64..1_000_000_000,
            0u64..1_000_000_000,
        ),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `self(s) = wall(s) − Σ wall(children)` telescopes: summed over any
    /// tree — balanced, degenerate, with overlapping parallel children —
    /// it equals the root's wall time exactly.
    #[test]
    fn self_time_sums_to_root_wall(raw in raw_spans(), root_dur in 0u64..10_000_000_000) {
        let a = Analysis::from_report(&report_from(&raw, root_dur)).expect("analyzes");
        prop_assert_eq!(a.total_self_seconds(), a.duration_seconds());
        // The per-name aggregation partitions the same total.
        let by_name: f64 = a.self_time_by_name().iter().map(|r| r.self_s).sum();
        prop_assert!((by_name - a.duration_seconds()).abs() < 1e-6);
    }

    /// Inserting one more child anywhere in the tree either leaves the
    /// critical path unchanged, or the two paths share the prefix up to
    /// the insertion point and the newly selected child's wall time is
    /// at least the previously selected one's.
    #[test]
    fn critical_path_is_monotone_under_child_insertion(
        raw in raw_spans(),
        root_dur in 1u64..10_000_000_000,
        parent_pick in 0usize..64,
        start in 0u64..1_000_000_000,
        dur in 0u64..2_000_000_000,
    ) {
        let before_report = report_from(&raw, root_dur);
        let before = Analysis::from_report(&before_report).expect("analyzes");
        let mut after_report = before_report.clone();
        let parent_id = (parent_pick % after_report.spans.len()) as u64 + 1;
        after_report.spans.push(SpanRecord {
            id: after_report.spans.len() as u64 + 1,
            parent: parent_id,
            name: "inserted",
            thread: 3,
            start_ns: start,
            end_ns: start.saturating_add(dur),
            args: vec![],
        });
        let after = Analysis::from_report(&after_report).expect("analyzes");
        let p_before = before.critical_path();
        let p_after = after.critical_path();
        // Walk the shared prefix; at the first divergence the new pick
        // must be at least as heavy as the old one.
        let mut diverged = false;
        for (b, a) in p_before.iter().zip(p_after.iter()) {
            if b.name == a.name && b.start_s == a.start_s && b.wall_s == a.wall_s {
                continue;
            }
            diverged = true;
            prop_assert!(
                a.wall_s >= b.wall_s,
                "divergence replaced wall {} with lighter {}",
                b.wall_s,
                a.wall_s
            );
            break;
        }
        if !diverged {
            // One path is a prefix of the other: only the new span can
            // extend it (insertion never removes path steps).
            prop_assert!(p_after.len() >= p_before.len());
        }
    }

    /// The run-ledger view of any span tree obeys the same partition the
    /// self-time property pins: the integer-ns stage rows plus the signed
    /// `other` row sum to the root wall exactly, the rows mirror
    /// `TraceReport::stage_seconds` bitwise (seconds = ns × 1e-9), and
    /// the JSONL line format round-trips the entry losslessly.
    #[test]
    fn ledger_entry_partitions_and_roundtrips(
        raw in raw_spans(),
        root_dur in 0u64..10_000_000_000,
    ) {
        let report = report_from(&raw, root_dur);
        let entry = LedgerEntry::new(0x1234_5678_9abc_def0, "prop", "flow")
            .capture_trace(&report);
        let sum: i64 = entry.stages.iter().map(|&(_, ns)| ns).sum();
        prop_assert_eq!(sum, entry.root_wall_ns as i64);
        prop_assert_eq!(
            entry.stages.last().map(|(n, _)| n.as_str()),
            Some("other")
        );
        let secs = report.stage_seconds();
        prop_assert_eq!(entry.stages.len(), secs.len() + 1);
        for ((en, ens), &(sn, ss)) in entry.stages.iter().zip(secs.iter()) {
            prop_assert_eq!(en.as_str(), sn);
            prop_assert_eq!((*ens as f64 * 1e-9).to_bits(), ss.to_bits());
        }
        let back = LedgerEntry::parse_line(&entry.to_json_line()).expect("line parses");
        prop_assert_eq!(&back, &entry);
    }

    /// A report diffed against itself is empty at every tolerance —
    /// including zero — for spans and metrics alike.
    #[test]
    fn diff_against_self_is_empty_at_any_tolerance(
        raw in raw_spans(),
        root_dur in 0u64..10_000_000_000,
        rel in 0.0f64..10.0,
        abs in 0.0f64..10.0,
        metric_rel in 0.0f64..10.0,
    ) {
        let a = Analysis::from_report(&report_from(&raw, root_dur)).expect("analyzes");
        let opts = DiffOptions {
            time_rel_tol: rel,
            time_abs_tol_s: abs,
            metric_rel_tol: metric_rel,
        };
        let d = TraceDiff::between(&a, &a, &opts);
        prop_assert!(d.is_empty(), "self-diff produced {:?}", d.entries);
    }
}
