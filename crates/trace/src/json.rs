//! Minimal dependency-free JSON support: writer helpers for the trace
//! exporters, a recursive-descent parser, and a small schema-subset
//! validator used by the `flowtrace` bin to check its own artifact
//! against `schemas/trace_report.schema.json` in CI.
//!
//! The validator understands the subset of JSON Schema the checked-in
//! schema uses: `type` (including `"integer"` = number with zero
//! fractional part), `required`, `properties`, `items`, `minItems` and
//! `enum` (strings only). Unknown keywords are ignored, matching JSON
//! Schema's open-world convention.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number: finite values via the shortest
/// round-trip `{}` formatting (with a `.0` appended to integral values so
/// they stay floats on re-read), non-finite values as `null` (JSON has no
/// NaN/Infinity).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced by [`fmt_f64`] for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is normalized.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value's elements, when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// JSON Schema type name of this value ("integer" is reported as
    /// "number"; the validator special-cases it).
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses a JSON document, requiring it to be fully consumed.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // Safe: we only stopped on ASCII delimiters, so the run is
            // valid UTF-8 (the input already was).
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "invalid \\u escape".to_string())?;
                            // Surrogate pairs aren't needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
                _ => unreachable!("scan stops only on '\"' or '\\\\'"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

/// Validates `value` against a JSON-Schema-subset `schema`, returning the
/// list of violations (empty = valid). Paths in messages use `/`-joined
/// pointers rooted at `$`.
pub fn validate(value: &Json, schema: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    validate_at(value, schema, "$", &mut errors);
    errors
}

fn validate_at(value: &Json, schema: &Json, path: &str, errors: &mut Vec<String>) {
    let Some(Json::Str(ty)) = schema.get("type") else {
        // No (or non-string) "type": only structural keywords apply.
        validate_keywords(value, schema, path, errors);
        return;
    };
    let ok = match ty.as_str() {
        "integer" => matches!(value, Json::Num(n) if n.fract() == 0.0),
        t => value.type_name() == t,
    };
    if !ok {
        errors.push(format!(
            "{path}: expected {ty}, found {}",
            value.type_name()
        ));
        return;
    }
    validate_keywords(value, schema, path, errors);
}

fn validate_keywords(value: &Json, schema: &Json, path: &str, errors: &mut Vec<String>) {
    if let (Some(Json::Arr(req)), Json::Obj(obj)) = (schema.get("required"), value) {
        for r in req {
            if let Json::Str(key) = r {
                if !obj.contains_key(key) {
                    errors.push(format!("{path}: missing required field \"{key}\""));
                }
            }
        }
    }
    if let (Some(Json::Obj(props)), Json::Obj(obj)) = (schema.get("properties"), value) {
        for (key, sub) in props {
            if let Some(v) = obj.get(key) {
                validate_at(v, sub, &format!("{path}/{key}"), errors);
            }
        }
    }
    if let Json::Arr(items) = value {
        if let Some(Json::Num(min)) = schema.get("minItems") {
            if (items.len() as f64) < *min {
                errors.push(format!(
                    "{path}: expected at least {min} items, found {}",
                    items.len()
                ));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate_at(item, item_schema, &format!("{path}/{i}"), errors);
            }
        }
    }
    if let Some(Json::Arr(allowed)) = schema.get("enum") {
        if !allowed.contains(value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_of_writer_output() {
        let doc = parse(
            "{\"a\":1,\"b\":[true,false,null],\"c\":{\"nested\":\"q\\\"uote\"},\"d\":-1.5e3}",
        )
        .expect("parses");
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("b").and_then(Json::as_array).map(Vec::len), Some(3));
        assert_eq!(
            doc.get("c")
                .and_then(|c| c.get("nested"))
                .and_then(Json::as_str),
            Some("q\"uote")
        );
        assert_eq!(doc.get("d").and_then(Json::as_f64), Some(-1500.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let parsed = parse(&format!("\"{}\"", escape("tab\there"))).expect("parses");
        assert_eq!(parsed.as_str(), Some("tab\there"));
    }

    #[test]
    fn fmt_f64_keeps_floats_floats() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "null");
        let round = parse(&fmt_f64(1e300)).expect("parses");
        assert_eq!(round.as_f64(), Some(1e300));
    }

    #[test]
    fn validator_checks_types_required_and_items() {
        let schema = parse(
            "{\"type\":\"object\",\"required\":[\"version\",\"spans\"],\"properties\":{\
             \"version\":{\"type\":\"integer\"},\
             \"spans\":{\"type\":\"array\",\"minItems\":1,\"items\":{\
               \"type\":\"object\",\"required\":[\"name\"],\"properties\":{\
                 \"name\":{\"type\":\"string\"}}}}}}",
        )
        .expect("schema parses");
        let good = parse("{\"version\":1,\"spans\":[{\"name\":\"flow\"}]}").expect("parses");
        assert!(validate(&good, &schema).is_empty());

        let bad = parse("{\"version\":1.5,\"spans\":[]}").expect("parses");
        let errs = validate(&bad, &schema);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("expected integer")));
        assert!(errs.iter().any(|e| e.contains("at least 1")));

        let missing = parse("{\"spans\":[{\"nom\":true}]}").expect("parses");
        let errs = validate(&missing, &schema);
        assert!(errs
            .iter()
            .any(|e| e.contains("missing required field \"version\"")));
        assert!(errs
            .iter()
            .any(|e| e.contains("missing required field \"name\"")));
    }
}
