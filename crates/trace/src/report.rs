//! The structured trace report and its two export formats.
//!
//! [`TraceReport`] is one root span's subtree (see
//! [`crate::take_report`]): the spans, instant events and series rows
//! that ran under it, plus a snapshot of the metrics registry.
//! [`TraceReport::to_json`] writes the structured report (validated
//! against `schemas/trace_report.schema.json` in CI) and [`chrome_trace`]
//! writes Chrome `trace_event` JSON that loads directly in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).

use crate::json::{escape, fmt_f64};
use crate::{ArgValue, InstantRecord, SeriesRow, SpanRecord};
use std::fmt::Write as _;

/// One metric's state at report time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Static metric name.
    pub name: &'static str,
    /// Slot for per-instance metrics (e.g. pool worker index).
    pub slot: Option<u32>,
    /// The metric's value.
    pub value: MetricValue,
}

/// A snapshot of one counter, gauge or histogram.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Latest-value gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Smallest observation (0 when empty).
        min: f64,
        /// Largest observation (0 when empty).
        max: f64,
        /// `(upper_bound, count)` per bucket; the last bound is +∞.
        buckets: Vec<(f64, u64)>,
    },
}

/// One captured subtree: the flow run's spans, telemetry and metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Id of the subtree's root span.
    pub root: u64,
    /// Spans in start order; the first is the root.
    pub spans: Vec<SpanRecord>,
    /// Instant events under the root.
    pub instants: Vec<InstantRecord>,
    /// Convergence-series rows under the root.
    pub series: Vec<SeriesRow>,
    /// Snapshot of the process metrics registry at capture time.
    pub metrics: Vec<MetricSnapshot>,
    /// Events lost to the buffer cap since the last
    /// [`crate::clear`] (process-cumulative).
    pub dropped_events: u64,
}

impl TraceReport {
    /// The root span record, when captured.
    pub fn root_span(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == self.root)
    }

    /// Wall-clock seconds covered by the root span.
    pub fn duration_seconds(&self) -> f64 {
        self.root_span().map_or(0.0, SpanRecord::seconds)
    }

    /// `(name, seconds)` of the flow's stage spans in start order,
    /// measured by the stage spans themselves.
    ///
    /// These are the root's *direct* children — except that a direct
    /// child that is itself a flow root (a `flow.*`-named span, i.e. a
    /// clustered/flat flow whose root got captured under an outer span)
    /// is transparent: its own direct children are surfaced in its
    /// place. That keeps the flat and clustered paths exposing the same
    /// stage set whether the flow ran at top level or nested one level
    /// below the captured root.
    pub fn stage_seconds(&self) -> Vec<(&'static str, f64)> {
        // `seconds()` is `wall_ns as f64 * 1e-9`, so the two views are
        // the same partition in different units — pinned by the
        // analysis_props ledger-roundtrip proptest.
        self.stage_nanos()
            .into_iter()
            .map(|(name, ns)| (name, ns as f64 * 1e-9))
            .collect()
    }

    /// [`stage_seconds`](Self::stage_seconds) in integer nanoseconds —
    /// the exact wall times the run ledger persists, sharing the same
    /// stage-selection logic (direct children, `flow.*` transparency).
    pub fn stage_nanos(&self) -> Vec<(&'static str, u64)> {
        let is_flow_root = |s: &SpanRecord| s.name.starts_with("flow.");
        let nested: Vec<u64> = self
            .spans
            .iter()
            .filter(|s| s.parent == self.root && is_flow_root(s))
            .map(|s| s.id)
            .collect();
        self.spans
            .iter()
            .filter(|s| (s.parent == self.root && !is_flow_root(s)) || nested.contains(&s.parent))
            .map(|s| (s.name, s.end_ns.saturating_sub(s.start_ns)))
            .collect()
    }

    /// All spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Structured JSON export (compact, schema-stable; see
    /// `schemas/trace_report.schema.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.spans.len() * 128);
        out.push_str("{\"version\":1,");
        let _ = write!(out, "\"root\":{},", self.root);
        let _ = write!(out, "\"duration_s\":{},", fmt_f64(self.duration_seconds()));
        let _ = write!(out, "\"dropped_events\":{},", self.dropped_events);
        out.push_str("\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\"start_us\":{},\"dur_us\":{}",
                s.id,
                s.parent,
                escape(s.name),
                s.thread,
                fmt_f64(s.start_ns as f64 / 1e3),
                fmt_f64((s.end_ns.saturating_sub(s.start_ns)) as f64 / 1e3),
            );
            if !s.args.is_empty() {
                out.push_str(",\"args\":");
                write_args(&mut out, &s.args);
            }
            out.push('}');
        }
        out.push_str("],\"instants\":[");
        for (i, e) in self.instants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"span\":{},\"thread\":{},\"ts_us\":{}",
                escape(e.name),
                e.span,
                e.thread,
                fmt_f64(e.ts_ns as f64 / 1e3),
            );
            if !e.args.is_empty() {
                out.push_str(",\"args\":");
                write_args(&mut out, &e.args);
            }
            out.push('}');
        }
        out.push_str("],\"series\":[");
        // Group rows by (name, span) so each series reads as one object.
        let mut groups: Vec<(&'static str, u64)> = Vec::new();
        for r in &self.series {
            if !groups.contains(&(r.name, r.span)) {
                groups.push((r.name, r.span));
            }
        }
        for (gi, &(name, span)) in groups.iter().enumerate() {
            if gi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"span\":{span},\"rows\":[",
                escape(name)
            );
            let mut first = true;
            for r in self
                .series
                .iter()
                .filter(|r| r.name == name && r.span == span)
            {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{{\"i\":{}", r.iter);
                for &(k, v) in &r.values {
                    let _ = write!(out, ",\"{}\":{}", escape(k), fmt_f64(v));
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("],\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\"", escape(m.name));
            if let Some(slot) = m.slot {
                let _ = write!(out, ",\"slot\":{slot}");
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{}", fmt_f64(*v));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                } => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"histogram\",\"count\":{count},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        fmt_f64(*sum),
                        fmt_f64(*min),
                        fmt_f64(*max),
                    );
                    for (bi, &(ub, c)) in buckets.iter().enumerate() {
                        if bi > 0 {
                            out.push(',');
                        }
                        let ub_str = if ub.is_infinite() {
                            "\"+inf\"".to_string()
                        } else {
                            fmt_f64(ub)
                        };
                        let _ = write!(out, "[{ub_str},{c}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Chrome `trace_event` export of this report alone (see
    /// [`chrome_trace`] to merge several reports into one timeline).
    pub fn to_chrome_json(&self) -> String {
        chrome_trace(&[self])
    }
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, &(k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(k));
        match v {
            ArgValue::U(u) => {
                let _ = write!(out, "{u}");
            }
            ArgValue::F(f) => {
                let _ = write!(out, "{}", fmt_f64(f));
            }
            ArgValue::S(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
        }
    }
    out.push('}');
}

/// Merges one or more reports into a single Chrome `trace_event` JSON
/// document (`{"traceEvents":[...]}`), loadable in `chrome://tracing` and
/// Perfetto. Spans become `"ph":"X"` complete events (timestamps in µs),
/// instants become `"ph":"i"` thread-scoped instant events.
pub fn chrome_trace(reports: &[&TraceReport]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for r in reports {
        for s in &r.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
                escape(s.name),
                s.thread,
                fmt_f64(s.start_ns as f64 / 1e3),
                fmt_f64((s.end_ns.saturating_sub(s.start_ns)) as f64 / 1e3),
            );
            if !s.args.is_empty() {
                out.push_str(",\"args\":");
                write_args(&mut out, &s.args);
            }
            out.push('}');
        }
        for e in &r.instants {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
                escape(e.name),
                e.thread,
                fmt_f64(e.ts_ns as f64 / 1e3),
            );
            if !e.args.is_empty() {
                out.push_str(",\"args\":");
                write_args(&mut out, &e.args);
            }
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_report() -> TraceReport {
        TraceReport {
            root: 1,
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    name: "flow",
                    thread: 0,
                    start_ns: 0,
                    end_ns: 3_000_000,
                    args: vec![],
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "shaping",
                    thread: 0,
                    start_ns: 100_000,
                    end_ns: 1_100_000,
                    args: vec![
                        ("cluster", ArgValue::U(3)),
                        ("verdict", ArgValue::S("exact")),
                    ],
                },
                SpanRecord {
                    id: 3,
                    parent: 1,
                    name: "ppa",
                    thread: 1,
                    start_ns: 1_200_000,
                    end_ns: 2_900_000,
                    args: vec![],
                },
            ],
            instants: vec![InstantRecord {
                name: "place.revert",
                span: 2,
                thread: 0,
                ts_ns: 500_000,
                args: vec![("iteration", ArgValue::U(4))],
            }],
            series: vec![
                SeriesRow {
                    name: "place.outer",
                    span: 2,
                    iter: 0,
                    values: vec![("hpwl", 10.0), ("overflow", 0.9)],
                },
                SeriesRow {
                    name: "place.outer",
                    span: 2,
                    iter: 1,
                    values: vec![("hpwl", 8.0), ("overflow", 0.5)],
                },
            ],
            metrics: vec![
                MetricSnapshot {
                    name: "place.cg.solves",
                    slot: None,
                    value: MetricValue::Counter(12),
                },
                MetricSnapshot {
                    name: "pool.worker.tasks",
                    slot: Some(1),
                    value: MetricValue::Counter(40),
                },
                MetricSnapshot {
                    name: "place.cg.iterations",
                    slot: None,
                    value: MetricValue::Histogram {
                        count: 2,
                        sum: 30.0,
                        min: 10.0,
                        max: 20.0,
                        buckets: vec![(10.0, 1), (100.0, 1), (f64::INFINITY, 0)],
                    },
                },
            ],
            dropped_events: 0,
        }
    }

    #[test]
    fn stage_seconds_lists_direct_children_in_order() {
        let r = sample_report();
        let stages = r.stage_seconds();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "shaping");
        assert!((stages[0].1 - 1e-3).abs() < 1e-12);
        assert_eq!(stages[1].0, "ppa");
        assert!((r.duration_seconds() - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn stage_seconds_expands_nested_flow_roots() {
        // An outer capture (e.g. a bench harness span) with a clustered
        // flow nested under it: the stages sit one level below the root
        // but must still be surfaced, exactly as on the flat path.
        let span = |id, parent, name: &'static str, start_ns, end_ns| SpanRecord {
            id,
            parent,
            name,
            thread: 0,
            start_ns,
            end_ns,
            args: vec![],
        };
        let r = TraceReport {
            root: 1,
            spans: vec![
                span(1, 0, "harness", 0, 4_000_000),
                span(2, 1, "setup", 0, 500_000),
                span(3, 1, "flow.clustered", 500_000, 3_800_000),
                span(4, 3, "clustering", 500_000, 1_500_000),
                span(5, 3, "shaping", 1_500_000, 3_700_000),
                span(6, 5, "vpr.cluster", 1_600_000, 2_000_000),
            ],
            instants: vec![],
            series: vec![],
            metrics: vec![],
            dropped_events: 0,
        };
        let names: Vec<&str> = r.stage_seconds().iter().map(|&(n, _)| n).collect();
        // The flow root itself is transparent; its stages appear next to
        // the outer root's other direct children, grandchildren stay out.
        assert_eq!(names, ["setup", "clustering", "shaping"]);
    }

    #[test]
    fn structured_json_parses_back() {
        let r = sample_report();
        let doc = parse(&r.to_json()).expect("report JSON parses");
        let spans = doc.get("spans").and_then(|v| v.as_array()).expect("spans");
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans[1].get("name").and_then(|v| v.as_str()),
            Some("shaping")
        );
        assert_eq!(
            spans[1]
                .get("args")
                .and_then(|a| a.get("verdict"))
                .and_then(|v| v.as_str()),
            Some("exact")
        );
        let series = doc
            .get("series")
            .and_then(|v| v.as_array())
            .expect("series");
        assert_eq!(series.len(), 1, "rows grouped by (name, span)");
        let rows = series[0]
            .get("rows")
            .and_then(|v| v.as_array())
            .expect("rows");
        assert_eq!(rows.len(), 2);
        let metrics = doc
            .get("metrics")
            .and_then(|v| v.as_array())
            .expect("metrics");
        assert_eq!(metrics.len(), 3);
        assert_eq!(
            metrics[1].get("slot").and_then(|v| v.as_f64()),
            Some(1.0),
            "slotted metric keeps its slot"
        );
    }

    #[test]
    fn chrome_export_is_well_formed() {
        let r = sample_report();
        let doc = parse(&r.to_chrome_json()).expect("chrome JSON parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents");
        // 3 spans + 1 instant.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(events[3].get("ph").and_then(|v| v.as_str()), Some("i"));
        assert_eq!(
            events[1].get("ts").and_then(|v| v.as_f64()),
            Some(100.0),
            "timestamps are microseconds"
        );
        // Merging two reports concatenates their events.
        let merged = parse(&chrome_trace(&[&r, &r])).expect("merged parses");
        assert_eq!(
            merged
                .get("traceEvents")
                .and_then(|v| v.as_array())
                .map(Vec::len),
            Some(8)
        );
    }
}
